"""The cascaded 1 kHz flight controller for the planar quadrotor.

Mirrors the structure of PX4-class firmware (Sec. II-D): an outer
velocity loop produces a pitch setpoint, an altitude loop produces a
collective-thrust setpoint, and a fast inner attitude loop converts
the pitch error into differential thrust.  All three loops run at the
flight controller's ``loop_rate_hz`` (typically 1 kHz).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dynamics.quadrotor import PlanarQuadrotor
from ..units import deg_to_rad, require_positive
from .pid import PID


@dataclass(frozen=True)
class ControllerGains:
    """Loop gains and limits for the cascaded controller."""

    vel_kp: float = 0.35  # m/s error -> pitch (rad)
    vel_ki: float = 0.1  # integral removes the drag-induced droop
    max_pitch_deg: float = 20.0
    att_kp: float = 120.0  # rad error -> per-pair differential (g)
    att_kd: float = 35.0
    alt_kp: float = 4.0  # m error -> thrust delta (g per gram of mass)
    alt_kd: float = 3.0


class CascadedFlightController:
    """Velocity + altitude + attitude cascade for :class:`PlanarQuadrotor`."""

    def __init__(
        self,
        quad: PlanarQuadrotor,
        gains: ControllerGains | None = None,
        loop_rate_hz: float = 1000.0,
    ) -> None:
        require_positive("loop_rate_hz", loop_rate_hz)
        self.quad = quad
        self.gains = gains or ControllerGains()
        self.loop_rate_hz = loop_rate_hz
        self.velocity_setpoint = 0.0
        self.altitude_setpoint = quad.state.z
        limit = deg_to_rad(self.gains.max_pitch_deg)
        self._vel_pid = PID(
            kp=self.gains.vel_kp,
            ki=self.gains.vel_ki,
            out_min=-limit,
            out_max=limit,
        )

    def set_velocity(self, vx_setpoint: float) -> None:
        """Command a forward velocity (m/s)."""
        self.velocity_setpoint = vx_setpoint

    def set_altitude(self, z_setpoint: float) -> None:
        """Command an altitude (m)."""
        self.altitude_setpoint = z_setpoint

    def update(self) -> None:
        """One 1 kHz control cycle: read state, write motor commands."""
        gains = self.gains
        quad = self.quad
        state = quad.state
        params = quad.params

        # Outer velocity loop -> pitch setpoint (limited, anti-windup).
        vel_error = self.velocity_setpoint - state.vx
        pitch_sp = self._vel_pid.step(vel_error, 1.0 / self.loop_rate_hz)

        # Altitude loop -> collective thrust around hover.
        alt_error = self.altitude_setpoint - state.z
        climb_damping = -state.vz
        collective = params.hover_thrust_per_pair_g * (
            1.0 + gains.alt_kp * alt_error + gains.alt_kd * climb_damping
        ) / max(math.cos(state.theta), 0.5)

        # Inner attitude loop -> differential thrust.
        att_error = pitch_sp - state.theta
        differential = gains.att_kp * att_error - gains.att_kd * state.q

        quad.command(
            front_pair_g=collective - differential,
            rear_pair_g=collective + differential,
        )

    def run(self, duration_s: float, dt: float | None = None) -> None:
        """Run the closed loop for ``duration_s`` of simulated time."""
        require_positive("duration_s", duration_s)
        step = dt if dt is not None else 1.0 / self.loop_rate_hz
        steps = int(round(duration_s / step))
        for _ in range(steps):
            self.update()
            self.quad.step(step)
