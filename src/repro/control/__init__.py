"""Flight control substrate: PID loops, the cascaded flight
controller, and the MAVROS-like offboard command interface."""

from .flight_controller import CascadedFlightController, ControllerGains
from .offboard import OffboardInterface
from .pid import PID

__all__ = [
    "CascadedFlightController",
    "ControllerGains",
    "OffboardInterface",
    "PID",
]
