"""MAVROS-like offboard command interface for the longitudinal model.

The paper's validation algorithm is "a custom controller based on
MAVROS" that precisely commands position, velocity and acceleration.
:class:`OffboardInterface` reproduces that API surface for the 1-D
body: the autonomy loop posts velocity setpoints (or an emergency
brake), and the interface converts them into acceleration commands at
the flight-controller rate.
"""

from __future__ import annotations

from enum import Enum

from ..dynamics.body import LongitudinalBody
from ..errors import ConfigurationError
from ..units import require_positive


class OffboardMode(Enum):
    """Current setpoint type, mirroring MAVROS setpoint topics."""

    IDLE = "idle"
    VELOCITY = "velocity"
    BRAKE = "brake"


class OffboardInterface:
    """Velocity-setpoint tracking with an emergency-brake override."""

    def __init__(
        self,
        body: LongitudinalBody,
        velocity_kp: float = 4.0,
    ) -> None:
        require_positive("velocity_kp", velocity_kp)
        self.body = body
        self.velocity_kp = velocity_kp
        self.mode = OffboardMode.IDLE
        self._velocity_setpoint = 0.0

    def set_velocity(self, setpoint: float) -> None:
        """Track a forward velocity (m/s)."""
        if setpoint < 0:
            raise ConfigurationError(
                f"setpoint must be >= 0 for forward flight, got "
                f"{setpoint!r}"
            )
        self._velocity_setpoint = setpoint
        self.mode = OffboardMode.VELOCITY

    def brake(self) -> None:
        """Maximum-deceleration stop (the obstacle response)."""
        self.mode = OffboardMode.BRAKE

    @property
    def velocity_setpoint(self) -> float:
        return self._velocity_setpoint

    def update(self) -> None:
        """One flight-controller cycle: setpoint -> acceleration command."""
        if self.mode is OffboardMode.IDLE:
            self.body.command_acceleration(0.0)
        elif self.mode is OffboardMode.VELOCITY:
            error = self._velocity_setpoint - self.body.v
            self.body.command_acceleration(self.velocity_kp * error)
        else:  # BRAKE
            self.body.command_acceleration(-self.body.a_limit)
