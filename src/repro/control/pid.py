"""A PID controller with output clamping and anti-windup.

The building block of the flight-controller stack (Sec. II-D: "the
flight controller is realized using PID controllers").  Integral
anti-windup uses conditional integration: the integrator freezes while
the output is saturated in the direction that would deepen saturation.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..units import require_nonnegative, require_positive


class PID:
    """Proportional-integral-derivative controller."""

    def __init__(
        self,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        out_min: float = -math.inf,
        out_max: float = math.inf,
    ) -> None:
        require_nonnegative("kp", kp)
        require_nonnegative("ki", ki)
        require_nonnegative("kd", kd)
        if out_min >= out_max:
            raise ConfigurationError(
                f"out_min must be < out_max, got out_min={out_min!r}, "
                f"out_max={out_max!r}"
            )
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.out_min = out_min
        self.out_max = out_max
        self._integral = 0.0
        self._prev_error: float | None = None

    def reset(self) -> None:
        """Clear integral and derivative history."""
        self._integral = 0.0
        self._prev_error = None

    def step(self, error: float, dt: float) -> float:
        """One controller update for the given error and timestep."""
        require_positive("dt", dt)
        derivative = 0.0
        if self._prev_error is not None:
            derivative = (error - self._prev_error) / dt
        self._prev_error = error

        unclamped = (
            self.kp * error
            + self.ki * (self._integral + error * dt)
            + self.kd * derivative
        )
        output = min(max(unclamped, self.out_min), self.out_max)
        saturated_high = unclamped > self.out_max and error > 0
        saturated_low = unclamped < self.out_min and error < 0
        if self.ki > 0.0 and not (saturated_high or saturated_low):
            self._integral += error * dt
        return output
