"""Longitudinal (1-D) UAV body model for the obstacle-stop experiment.

The validation flights are straight-line accelerate-cruise-brake
maneuvers, so a longitudinal point mass captures the relevant physics:

* commanded acceleration tracked through a first-order *pitch lag*
  (the airframe must rotate before thrust tilts), the dominant
  unmodeled effect the paper lists as an error source;
* saturation at the vehicle's ``a_limit`` (from the Eq. 5 model,
  optionally derated for in-flight vs static thrust);
* quadratic aerodynamic drag, the paper's second listed error source.

Velocity is non-negative: the experiment ends at a full stop, the
vehicle never reverses.
"""

from __future__ import annotations

from typing import Optional

from ..core.physics import QuadraticDrag
from ..units import require_nonnegative, require_positive


class LongitudinalBody:
    """Point-mass longitudinal dynamics with pitch lag and drag."""

    def __init__(
        self,
        total_mass_g: float,
        a_limit: float,
        drag: Optional[QuadraticDrag] = None,
        pitch_lag_s: float = 0.25,
    ) -> None:
        require_positive("total_mass_g", total_mass_g)
        require_positive("a_limit", a_limit)
        require_nonnegative("pitch_lag_s", pitch_lag_s)
        self.total_mass_g = total_mass_g
        self.a_limit = a_limit
        self.drag = drag
        self.pitch_lag_s = pitch_lag_s
        self.t = 0.0
        self.x = 0.0
        self.v = 0.0
        self._a_command = 0.0
        self._a_tracked = 0.0

    def command_acceleration(self, a_cmd: float) -> None:
        """Set the commanded acceleration, clamped to +-``a_limit``."""
        self._a_command = min(max(a_cmd, -self.a_limit), self.a_limit)

    @property
    def commanded_acceleration(self) -> float:
        return self._a_command

    @property
    def tracked_acceleration(self) -> float:
        """Acceleration currently realized through the pitch lag."""
        return self._a_tracked

    def step(self, dt: float, wind_ms: float = 0.0) -> None:
        """Advance the body by ``dt`` seconds (semi-implicit Euler).

        ``wind_ms`` is the along-track wind (+ = tailwind): drag acts
        on the *airspeed* ``v - wind``, so a tailwind reduces the drag
        assisting a brake.
        """
        require_positive("dt", dt)
        if self.pitch_lag_s == 0.0:
            self._a_tracked = self._a_command
        else:
            alpha = dt / (self.pitch_lag_s + dt)
            self._a_tracked += alpha * (self._a_command - self._a_tracked)

        a_net = self._a_tracked
        if self.drag is not None:
            airspeed = self.v - wind_ms
            a_net -= self.drag.deceleration(airspeed, self.total_mass_g)

        new_v = self.v + a_net * dt
        if new_v < 0.0:
            # Stop exactly at v = 0: find the sub-step where v crosses
            # zero and freeze there (the vehicle hovers, not reverses).
            new_v = 0.0
        self.x += 0.5 * (self.v + new_v) * dt  # trapezoidal position
        self.v = new_v
        self.t += dt

    @property
    def stopped(self) -> bool:
        """True once the vehicle has (re)come to rest while braking."""
        return self.v == 0.0 and self._a_command <= 0.0
