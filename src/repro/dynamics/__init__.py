"""UAV body-dynamics models for the flight simulator."""

from .body import LongitudinalBody
from .integrator import euler_step, rk4_step
from .motor import FirstOrderMotor
from .quadrotor import PlanarQuadrotor, QuadrotorParams, QuadrotorState

__all__ = [
    "LongitudinalBody",
    "euler_step",
    "rk4_step",
    "FirstOrderMotor",
    "PlanarQuadrotor",
    "QuadrotorParams",
    "QuadrotorState",
]
