"""Planar (x-z) quadrotor rigid-body model.

A 6-state planar quadrotor — position (x, z), velocity (vx, vz), pitch
``theta`` and pitch rate ``q`` — driven by the *front* and *rear* rotor
pair thrusts.  This is the substrate beneath the cascaded flight
controller (Sec. II-D): the 1 kHz inner loop stabilizes ``theta``
while outer loops track velocity and altitude.

Conventions: ``theta > 0`` pitches the nose down, accelerating the
vehicle in +x.  Thrust commands are gram-force per rotor *pair* (two
motors each), matching the component spec sheets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.physics import QuadraticDrag
from ..units import GRAVITY, gram_force_to_newtons, require_positive
from .integrator import rk4_step
from .motor import FirstOrderMotor


@dataclass(frozen=True)
class QuadrotorParams:
    """Physical parameters of the planar quadrotor."""

    total_mass_g: float
    arm_length_m: float
    max_thrust_per_pair_g: float
    inertia_kgm2: float | None = None  # default: slender-rod estimate
    cd_area_m2: float = 0.05
    motor_tau_s: float = 0.05

    def __post_init__(self) -> None:
        require_positive("total_mass_g", self.total_mass_g)
        require_positive("arm_length_m", self.arm_length_m)
        require_positive("max_thrust_per_pair_g", self.max_thrust_per_pair_g)

    @property
    def mass_kg(self) -> float:
        return self.total_mass_g / 1000.0

    @property
    def inertia(self) -> float:
        """Pitch inertia (kg m^2); defaults to m * L^2 / 6."""
        if self.inertia_kgm2 is not None:
            return self.inertia_kgm2
        return self.mass_kg * (2.0 * self.arm_length_m) ** 2 / 12.0

    @property
    def hover_thrust_per_pair_g(self) -> float:
        """Per-pair thrust that exactly balances weight."""
        return self.total_mass_g / 2.0


@dataclass
class QuadrotorState:
    """Mutable planar state: positions, velocities, attitude."""

    x: float = 0.0
    z: float = 0.0
    vx: float = 0.0
    vz: float = 0.0
    theta: float = 0.0  # pitch, rad (positive = nose down)
    q: float = 0.0  # pitch rate, rad/s

    def as_array(self) -> np.ndarray:
        return np.array(
            [self.x, self.z, self.vx, self.vz, self.theta, self.q]
        )

    @classmethod
    def from_array(cls, y: np.ndarray) -> "QuadrotorState":
        return cls(
            x=float(y[0]),
            z=float(y[1]),
            vx=float(y[2]),
            vz=float(y[3]),
            theta=float(y[4]),
            q=float(y[5]),
        )


class PlanarQuadrotor:
    """The planar quadrotor with lagged motors and quadratic drag."""

    def __init__(
        self, params: QuadrotorParams, state: QuadrotorState | None = None
    ) -> None:
        self.params = params
        self.state = state or QuadrotorState()
        self.t = 0.0
        hover = params.hover_thrust_per_pair_g
        self._front = FirstOrderMotor(
            params.max_thrust_per_pair_g,
            tau_s=params.motor_tau_s,
            initial_thrust_g=hover,
        )
        self._rear = FirstOrderMotor(
            params.max_thrust_per_pair_g,
            tau_s=params.motor_tau_s,
            initial_thrust_g=hover,
        )
        self._drag = QuadraticDrag(cd_area_m2=params.cd_area_m2)

    def command(self, front_pair_g: float, rear_pair_g: float) -> None:
        """Set per-pair thrust setpoints (gram-force)."""
        self._front.command(front_pair_g)
        self._rear.command(rear_pair_g)

    @property
    def thrust_total_n(self) -> float:
        """Instantaneous total thrust (N)."""
        return gram_force_to_newtons(
            self._front.thrust_g + self._rear.thrust_g
        )

    def _dynamics(self, _t: float, y: np.ndarray) -> np.ndarray:
        params = self.params
        _, _, vx, vz, theta, q = y
        thrust_n = self.thrust_total_n
        # Pitch torque from differential thrust (rear pushes nose down).
        torque = (
            gram_force_to_newtons(self._rear.thrust_g - self._front.thrust_g)
            * params.arm_length_m
        )
        drag_x = self._drag.force_n(vx) / params.mass_kg
        drag_z = self._drag.force_n(vz) / params.mass_kg
        ax = thrust_n * np.sin(theta) / params.mass_kg - drag_x
        az = thrust_n * np.cos(theta) / params.mass_kg - GRAVITY - drag_z
        return np.array([vx, vz, ax, az, q, torque / params.inertia])

    def step(self, dt: float) -> QuadrotorState:
        """Advance motors and rigid body by ``dt`` (RK4)."""
        require_positive("dt", dt)
        self._front.step(dt)
        self._rear.step(dt)
        y = rk4_step(self._dynamics, self.t, self.state.as_array(), dt)
        self.state = QuadrotorState.from_array(y)
        self.t += dt
        return self.state
