"""Fixed-step ODE integrators for the flight simulator.

Both integrators advance a state vector ``y`` by ``dt`` under the
dynamics ``f(t, y) -> dy/dt``.  RK4 is used by the planar quadrotor
(whose attitude dynamics are stiff relative to the 1 ms step); the
longitudinal model integrates analytically-friendly terms with
semi-implicit Euler inside the body class itself.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

Dynamics = Callable[[float, np.ndarray], np.ndarray]


def euler_step(f: Dynamics, t: float, y: np.ndarray, dt: float) -> np.ndarray:
    """One explicit-Euler step."""
    return y + dt * f(t, y)


def rk4_step(f: Dynamics, t: float, y: np.ndarray, dt: float) -> np.ndarray:
    """One classic Runge-Kutta 4 step."""
    k1 = f(t, y)
    k2 = f(t + dt / 2.0, y + dt / 2.0 * k1)
    k3 = f(t + dt / 2.0, y + dt / 2.0 * k2)
    k4 = f(t + dt, y + dt * k3)
    return y + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
