"""First-order motor/propeller thrust response.

Spec-sheet pull is static; a real motor+ESC reaches a commanded thrust
with a lag of tens of milliseconds.  The simulator models this as a
first-order system with time constant ``tau_s`` and saturation at the
rated pull.
"""

from __future__ import annotations

from ..units import require_nonnegative, require_positive


class FirstOrderMotor:
    """One motor tracking thrust commands with a first-order lag."""

    def __init__(
        self,
        max_thrust_g: float,
        tau_s: float = 0.05,
        initial_thrust_g: float = 0.0,
    ) -> None:
        require_positive("max_thrust_g", max_thrust_g)
        require_nonnegative("tau_s", tau_s)
        require_nonnegative("initial_thrust_g", initial_thrust_g)
        self.max_thrust_g = max_thrust_g
        self.tau_s = tau_s
        self._thrust_g = min(initial_thrust_g, max_thrust_g)
        self._command_g = self._thrust_g

    @property
    def thrust_g(self) -> float:
        """Currently produced thrust (gram-force)."""
        return self._thrust_g

    def command(self, thrust_g: float) -> None:
        """Set the thrust setpoint, clamped to [0, rated pull]."""
        self._command_g = min(max(thrust_g, 0.0), self.max_thrust_g)

    def step(self, dt: float) -> float:
        """Advance the lag by ``dt`` and return the produced thrust."""
        require_positive("dt", dt)
        if self.tau_s == 0.0:
            self._thrust_g = self._command_g
        else:
            alpha = dt / (self.tau_s + dt)  # semi-implicit, unconditionally stable
            self._thrust_g += alpha * (self._command_g - self._thrust_g)
        return self._thrust_g
