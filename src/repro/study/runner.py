"""Execute compiled study plans through the shared batch engine.

:func:`run_study` is the single execution path every analysis surface
now funnels through: it evaluates the plan's design matrix with
:func:`~repro.batch.engine.evaluate_matrix` (sharing the process-wide
:data:`~repro.batch.engine.DEFAULT_CACHE` unless the caller scopes
their own), applies the spec's ``filters`` and ``rank`` clauses, and
wraps everything in a serializable
:class:`~repro.study.result.StudyResult`.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..batch.cache import BatchCache
from ..batch.engine import DEFAULT_CACHE, evaluate_matrix
from ..batch.result import BatchResult
from ..io.serialization import BOUND_NAME_TO_CODE, STATUS_NAME_TO_CODE
from .planner import StudyPlan, compile_spec
from .result import StudyResult
from .spec import (
    EXTRA_NUMERIC_COLUMNS,
    FilterClause,
    NUMERIC_RESULT_COLUMNS,
    StudySpec,
    spec_error,
)

_OPS: Dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


def _numeric_column(
    plan: StudyPlan, batch: BatchResult, name: str
) -> np.ndarray:
    if name in NUMERIC_RESULT_COLUMNS:
        return getattr(batch, name)
    assert name in EXTRA_NUMERIC_COLUMNS  # spec validation guarantees
    return getattr(plan, name)


def _filter_mask(
    plan: StudyPlan,
    batch: BatchResult,
    index: int,
    clause: FilterClause,
) -> np.ndarray:
    op = _OPS[clause.op]
    if clause.column == "bound":
        codes = BOUND_NAME_TO_CODE
        column: np.ndarray = batch.bound_codes
    elif clause.column == "status":
        codes = STATUS_NAME_TO_CODE
        column = batch.status_codes
    else:
        return op(
            _numeric_column(plan, batch, clause.column),
            float(clause.value),
        )
    if clause.value not in codes:
        raise spec_error(
            f"filters[{index}].value",
            f"unknown {clause.column} name {clause.value!r}; known: "
            f"{', '.join(sorted(codes))}",
        )
    return op(column, codes[clause.value])


def _select(plan: StudyPlan, batch: BatchResult) -> np.ndarray:
    """Apply the spec's filters and rank; indices in final order."""
    spec = plan.spec
    mask = np.ones(len(batch), dtype=bool)
    for i, clause in enumerate(spec.filters):
        mask &= _filter_mask(plan, batch, i, clause)
    indices = np.flatnonzero(mask)
    if spec.rank is not None:
        keys = _numeric_column(plan, batch, spec.rank.by)[indices]
        if spec.rank.descending:
            keys = -keys
        # Stable, like BatchResult.argsort: tied rows keep their
        # original (enumeration) order in both directions.
        indices = indices[np.argsort(keys, kind="stable")]
        if spec.rank.top_k is not None:
            indices = indices[: spec.rank.top_k]
    return indices


def run_study(
    study: Union[StudySpec, StudyPlan],
    cache: Optional[BatchCache] = DEFAULT_CACHE,
) -> StudyResult:
    """Compile (if needed) and execute a study.

    ``cache`` scopes result memoization exactly as in
    :func:`~repro.batch.engine.evaluate_matrix`: the process-wide
    default is shared with every other analysis surface, so a study
    re-covering a grid a sweep already evaluated is free.
    """
    plan = study if isinstance(study, StudyPlan) else compile_spec(study)
    spec = plan.spec
    batch = evaluate_matrix(
        plan.matrix,
        knee_fraction=spec.knee_fraction,
        tolerance=spec.tolerance,
        cache=cache,
    )
    return StudyResult(
        spec=spec,
        axes=plan.axes,
        batch=batch,
        selected_indices=_select(plan, batch),
        total_mass_g=plan.total_mass_g,
        compute_tdp_w=plan.compute_tdp_w,
    )
