"""Execute compiled study plans through the shared batch engine.

:func:`run_study` is the single execution path every analysis surface
now funnels through: it evaluates the plan's design matrix with
:func:`~repro.batch.engine.evaluate_matrix` (sharing the process-wide
:data:`~repro.batch.engine.DEFAULT_CACHE` unless the caller scopes
their own), applies the spec's ``filters`` and ``rank`` clauses, and
wraps everything in a serializable
:class:`~repro.study.result.StudyResult`.

Passing ``executor=`` / ``chunk_rows=`` / ``checkpoint=`` runs the
study through the sharded layer instead
(:mod:`repro.batch.executor`): the grid is evaluated in row-range
chunks — serially, across threads, or across worker processes that
rebuild only their own rows — and merged back into a result that is
bitwise identical to the single-pass path.  With ``checkpoint`` set,
every completed shard persists as one JSONL record, and a re-run (or
``resume=True``, the CLI's ``--resume``) picks up from the completed
shards instead of starting over.
"""

from __future__ import annotations

import operator
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Optional, Union

import numpy as np

from ..batch.cache import BatchCache
from ..batch.engine import DEFAULT_CACHE, evaluate_matrix
from ..batch.result import BatchResult
from ..io.serialization import BOUND_NAME_TO_CODE, STATUS_NAME_TO_CODE
from ..obs.tracer import maybe_span
from .planner import StudyPlan, compile_spec, study_axes
from .result import StudyResult
from .spec import (
    EXTRA_NUMERIC_COLUMNS,
    FilterClause,
    NUMERIC_RESULT_COLUMNS,
    StudySpec,
    spec_error,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..batch.executor import ParallelExecutor
    from ..obs.progress import ProgressCallback
    from ..obs.tracer import Tracer

_OPS: Dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


def _numeric_column(
    extras: Dict[str, np.ndarray], batch: BatchResult, name: str
) -> np.ndarray:
    if name in NUMERIC_RESULT_COLUMNS:
        return getattr(batch, name)
    assert name in EXTRA_NUMERIC_COLUMNS  # spec validation guarantees
    return extras[name]


def _filter_mask(
    extras: Dict[str, np.ndarray],
    batch: BatchResult,
    index: int,
    clause: FilterClause,
) -> np.ndarray:
    op = _OPS[clause.op]
    if clause.column == "bound":
        codes = BOUND_NAME_TO_CODE
        column: np.ndarray = batch.bound_codes
    elif clause.column == "status":
        codes = STATUS_NAME_TO_CODE
        column = batch.status_codes
    else:
        return op(
            _numeric_column(extras, batch, clause.column),
            float(clause.value),
        )
    if clause.value not in codes:
        raise spec_error(
            f"filters[{index}].value",
            f"unknown {clause.column} name {clause.value!r}; known: "
            f"{', '.join(sorted(codes))}",
        )
    return op(column, codes[clause.value])


def _select(
    spec: StudySpec,
    batch: BatchResult,
    extras: Dict[str, np.ndarray],
) -> np.ndarray:
    """Apply the spec's filters and rank; indices in final order."""
    mask = np.ones(len(batch), dtype=bool)
    for i, clause in enumerate(spec.filters):
        mask &= _filter_mask(extras, batch, i, clause)
    indices = np.flatnonzero(mask)
    if spec.rank is not None:
        keys = _numeric_column(extras, batch, spec.rank.by)[indices]
        if spec.rank.descending:
            keys = -keys
        # Stable, like BatchResult.argsort: tied rows keep their
        # original (enumeration) order in both directions.
        indices = indices[np.argsort(keys, kind="stable")]
        if spec.rank.top_k is not None:
            indices = indices[: spec.rank.top_k]
    return indices


def run_study(
    study: Union[StudySpec, StudyPlan],
    cache: Optional[BatchCache] = DEFAULT_CACHE,
    executor: Optional["ParallelExecutor"] = None,
    chunk_rows: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    tracer: Optional["Tracer"] = None,
    progress: Optional["ProgressCallback"] = None,
) -> StudyResult:
    """Compile (if needed) and execute a study.

    ``cache`` scopes result memoization exactly as in
    :func:`~repro.batch.engine.evaluate_matrix`: the process-wide
    default is shared with every other analysis surface, so a study
    re-covering a grid a sweep already evaluated is free.

    ``executor`` / ``chunk_rows`` opt into sharded execution (see the
    module docstring); ``checkpoint`` names a directory that receives
    one JSONL record per completed shard, and ``resume=True``
    additionally *requires* that directory to hold a matching run's
    manifest (the ``--resume`` contract: resuming a checkpoint that
    does not exist is an error, not a silent fresh start).

    ``tracer`` opts into observability (:mod:`repro.obs`): the run
    records ``study.compile`` / ``shard.evaluate`` / ``study.merge`` /
    ``study.select`` phase spans (plus engine- and executor-level
    detail), and the finished result carries the whole payload in
    :attr:`StudyResult.telemetry`.  ``progress`` fires once per
    completed shard on the sharded paths.  Both default to ``None``
    and cost only a null-check when unset.
    """

    sharded = (
        executor is not None or chunk_rows is not None
        or checkpoint is not None or resume
    )
    if sharded and isinstance(study, StudySpec):
        from ..batch.executor import evaluate_spec_sharded

        spec = study
        batch, extras = evaluate_spec_sharded(
            spec,
            executor=executor,
            chunk_rows=chunk_rows,
            checkpoint_dir=checkpoint,
            resume=resume,
            tracer=tracer,
            progress=progress,
        )
        # A spec-sharded run cannot consult the cache up front — the
        # cache is keyed by the full matrix's content hash and the full
        # matrix deliberately never exists here — but it seeds the
        # cache on the way out, so later single-pass runs over the
        # same grid are free.
        if cache is not None:
            key = (
                batch.matrix.content_hash(),
                batch.knee_fraction,
                batch.tolerance,
            )
            cache.put(key, batch)
        axes = study_axes(spec)
    else:
        if isinstance(study, StudyPlan):
            plan = study
        else:
            with maybe_span(tracer, "study.compile") as span:
                plan = compile_spec(study)
                span.set(rows=len(plan.matrix))
        spec = plan.spec
        batch = evaluate_matrix(
            plan.matrix,
            knee_fraction=spec.knee_fraction,
            tolerance=spec.tolerance,
            cache=cache,
            executor=executor if sharded else None,
            chunk_rows=chunk_rows if sharded else None,
            checkpoint_dir=checkpoint if sharded else None,
            resume=resume,
            tracer=tracer,
            progress=progress,
        )
        extras = {
            "total_mass_g": plan.total_mass_g,
            "compute_tdp_w": plan.compute_tdp_w,
        }
        axes = plan.axes
    with maybe_span(tracer, "study.select", rows=len(batch)) as span:
        selected = _select(spec, batch, extras)
        span.set(selected=len(selected))
    return StudyResult(
        spec=spec,
        axes=axes,
        batch=batch,
        selected_indices=selected,
        total_mass_g=extras["total_mass_g"],
        compute_tdp_w=extras["compute_tdp_w"],
        telemetry=tracer.to_telemetry() if tracer is not None else None,
    )
