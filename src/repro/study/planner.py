"""Compile a :class:`~repro.study.spec.StudySpec` into a batch plan.

The planner turns a declarative spec into exactly the vectorized
:mod:`repro.batch` execution the legacy entry points performed —
knob-axes designs go through :class:`~repro.batch.assembly.KnobMatrix`
(identical to ``sweep_knob``/``sweep_grid``), preset and fleet designs
through :func:`~repro.batch.assembly.assemble_configurations`
(identical to ``dse.explore``) — so studies are numerically
indistinguishable from the call stacks they replace.  Scenario axes
expand design rows design-major (scenario varies fastest) and stay
columnar throughout.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..batch.assembly import KnobMatrix, assemble_configurations
from ..batch.grid import cartesian_product
from ..batch.matrix import DesignMatrix
from ..errors import ConfigurationError
from ..uav.configuration import UAVConfiguration
from .spec import (
    DesignSpec,
    ScenarioSpec,
    StudySpec,
    spec_error,
)


@dataclass(frozen=True)
class StudyAxis:
    """One named axis of the study's logical grid.

    ``values`` are knob floats, scenario values, or registry names —
    whatever the axis enumerates; ``size`` of all axes multiplies to
    the evaluated point count, so every result column reshapes onto
    the axes.
    """

    name: str
    values: Tuple[Any, ...]

    @property
    def size(self) -> int:
        return len(self.values)


# eq=False: ndarray fields; identity semantics, like the batch types.
@dataclass(frozen=True, eq=False)
class StudyPlan:
    """A compiled, ready-to-evaluate study.

    ``matrix`` feeds :func:`~repro.batch.engine.evaluate_matrix`
    directly; ``total_mass_g`` / ``compute_tdp_w`` carry the assembly
    layer's accounting columns so mass/TDP filters and metrics need no
    per-point Python.
    """

    spec: StudySpec
    matrix: DesignMatrix
    axes: Tuple[StudyAxis, ...]
    total_mass_g: np.ndarray
    compute_tdp_w: np.ndarray

    def __len__(self) -> int:
        return len(self.matrix)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Points per axis; multiplies to ``len(self)``."""
        return tuple(axis.size for axis in self.axes)


def _scenario_rows(
    scenarios: Optional[ScenarioSpec],
) -> Tuple[Dict[str, Tuple[float, ...]], int]:
    """The provided scenario axes and their Cartesian row count."""
    if scenarios is None:
        return {}, 1
    axes = scenarios.axes()
    count = 1
    for values in axes.values():
        count *= len(values)
    return axes, count


def _scenario_columns(
    axes: Dict[str, Tuple[float, ...]]
) -> Dict[str, np.ndarray]:
    """Row-major Cartesian columns of the scenario axes (last fastest)."""
    if not axes:
        return {}
    return cartesian_product(
        {name: np.asarray(values, dtype=np.float64) for name, values in axes.items()}
    )


def _with_scaled_a_max(
    matrix: DesignMatrix, scale: np.ndarray
) -> DesignMatrix:
    """A copy of ``matrix`` with its acceleration column derated."""
    return DesignMatrix.from_arrays(
        sensing_range_m=matrix.sensing_range_m,
        a_max=matrix.a_max * scale,
        f_sensor_hz=matrix.f_sensor_hz,
        f_compute_hz=matrix.f_compute_hz,
        f_control_hz=matrix.f_control_hz,
        labels=matrix.labels,
        knee_fraction=matrix.knee_fraction,
    )


# ---------------------------------------------------------------------------
# Knob-axes designs (the sweep_knob / sweep_grid shape)
# ---------------------------------------------------------------------------
def _compile_knobs(spec: StudySpec) -> StudyPlan:
    design = spec.design
    base = design.base
    axes_mapping = {name: np.asarray(values, dtype=np.float64)
                    for name, values in design.axes}
    columns = cartesian_product(axes_mapping)
    scenario_axes, n_scenarios = _scenario_rows(spec.scenarios)
    if "compute_redundancy" in scenario_axes:
        raise spec_error(
            "scenarios.compute_redundancy",
            "not applicable to a knobs design (knob-built UAVs fly one "
            "compute module); use a presets or fleet design",
        )

    if not scenario_axes:
        # The exact legacy path: same KnobMatrix call, same labels.
        labels = None
        if len(design.axes) == 1:
            knob, values = design.axes[0]
            labels = [f"{knob}={value:g}" for value in values]
        knob_matrix = KnobMatrix.from_base(base, labels=labels, **columns)
        matrix = knob_matrix.assemble()
        scale = None
    else:
        n_designs = len(next(iter(columns.values())))
        scenario_columns = _scenario_columns(scenario_axes)
        expanded = {
            name: np.repeat(column, n_scenarios)
            for name, column in columns.items()
        }
        if "extra_payload_g" in scenario_columns:
            delta = np.tile(
                scenario_columns["extra_payload_g"], n_designs
            )
            payload = expanded.get("payload_weight_g")
            if payload is None:
                payload = np.full(
                    n_designs * n_scenarios, base.payload_weight_g
                )
            payload = payload + delta
            if np.any(payload < 0.0):
                worst = float(payload.min())
                raise spec_error(
                    "scenarios.extra_payload_g",
                    f"payload goes negative ({worst:g} g); deltas cannot "
                    "shed more than the payload knob carries",
                )
            expanded["payload_weight_g"] = payload
        knob_matrix = KnobMatrix.from_base(base, **expanded)
        matrix = knob_matrix.assemble()
        scale = None
        if "a_max_scale" in scenario_columns:
            scale = np.tile(scenario_columns["a_max_scale"], n_designs)

    if scale is not None:
        matrix = _with_scaled_a_max(matrix, scale)

    study_axes = tuple(
        itertools.chain(
            (StudyAxis(name, values) for name, values in design.axes),
            (
                StudyAxis(name, values)
                for name, values in scenario_axes.items()
            ),
        )
    )
    return StudyPlan(
        spec=spec,
        matrix=matrix,
        axes=study_axes,
        total_mass_g=knob_matrix.total_mass_g,
        compute_tdp_w=knob_matrix.compute_tdp_w,
    )


# ---------------------------------------------------------------------------
# Preset / fleet designs (the dse.explore shape)
# ---------------------------------------------------------------------------
def _materialize_designs(
    design: DesignSpec,
) -> Tuple[
    List[UAVConfiguration],
    List[float],
    Optional[List[str]],
    Tuple[StudyAxis, ...],
]:
    if design.kind == "presets":
        # Enumerate through DesignSpace so ordering and labels match
        # dse.explore exactly.  Imported lazily: repro.dse imports this
        # package at module level.
        from ..dse.space import DesignSpace

        space = DesignSpace(
            uav_names=design.uav_names,
            compute_names=design.compute_names,
            algorithm_names=design.algorithm_names,
        )
        candidates = list(space.candidates())
        uavs = [c.uav for c in candidates]
        rates = [c.f_compute_hz for c in candidates]
        labels = [
            f"{c.uav_name}+{c.compute_name}+{c.algorithm_name}"
            for c in candidates
        ]
        axes = (
            StudyAxis("uav", design.uav_names),
            StudyAxis("compute", design.compute_names),
            StudyAxis("algorithm", design.algorithm_names),
        )
        return uavs, rates, labels, axes
    uavs = list(design.uavs)
    rates = list(design.f_compute_hz)
    labels = list(design.labels) if design.labels is not None else None
    names = (
        design.labels
        if design.labels is not None
        else tuple(u.name for u in uavs)
    )
    return uavs, rates, labels, (StudyAxis("design", tuple(names)),)


def _apply_scenario(
    uav: UAVConfiguration, values: Dict[str, float]
) -> UAVConfiguration:
    changes: Dict[str, Any] = {}
    if "extra_payload_g" in values:
        extra = uav.extra_payload_g + values["extra_payload_g"]
        if extra < 0.0:
            raise spec_error(
                "scenarios.extra_payload_g",
                f"payload goes negative on configuration {uav.name!r} "
                f"({extra:g} g)",
            )
        changes["extra_payload_g"] = extra
    if "compute_redundancy" in values:
        changes["compute_redundancy"] = int(values["compute_redundancy"])
    return replace(uav, **changes) if changes else uav


def _compile_fleet(spec: StudySpec) -> StudyPlan:
    uavs, rates, labels, design_axes = _materialize_designs(spec.design)
    scenario_axes, n_scenarios = _scenario_rows(spec.scenarios)

    scale: Optional[np.ndarray] = None
    if scenario_axes:
        rows = list(itertools.product(*scenario_axes.values()))
        names = list(scenario_axes)
        expanded_uavs: List[UAVConfiguration] = []
        expanded_labels: Optional[List[str]] = (
            [] if labels is not None else None
        )
        for i, uav in enumerate(uavs):
            for row in rows:
                values = dict(zip(names, row))
                expanded_uavs.append(_apply_scenario(uav, values))
                if expanded_labels is not None:
                    suffix = ",".join(
                        f"{name}={value:g}"
                        for name, value in values.items()
                    )
                    expanded_labels.append(f"{labels[i]} [{suffix}]")
        rates = list(np.repeat(np.asarray(rates, dtype=np.float64),
                               n_scenarios))
        uavs, labels = expanded_uavs, expanded_labels
        if "a_max_scale" in scenario_axes:
            per_row = np.asarray(
                [dict(zip(names, row))["a_max_scale"] for row in rows],
                dtype=np.float64,
            )
            scale = np.tile(per_row, len(uavs) // n_scenarios)

    fleet = assemble_configurations(uavs, rates, labels=labels)
    matrix = fleet.matrix
    if scale is not None:
        matrix = _with_scaled_a_max(matrix, scale)

    study_axes = design_axes + tuple(
        StudyAxis(name, values) for name, values in scenario_axes.items()
    )
    return StudyPlan(
        spec=spec,
        matrix=matrix,
        axes=study_axes,
        total_mass_g=fleet.total_mass_g,
        compute_tdp_w=fleet.compute_tdp_w,
    )


def compile_spec(spec: StudySpec) -> StudyPlan:
    """Compile a spec into the vectorized plan that will execute it."""
    if not isinstance(spec, StudySpec):
        raise ConfigurationError(
            f"compile_spec takes a StudySpec, got {type(spec).__name__}"
        )
    if spec.design.kind == "knobs":
        plan = _compile_knobs(spec)
    else:
        plan = _compile_fleet(spec)
    expected = 1
    for axis in plan.axes:
        expected *= axis.size
    if expected != len(plan):  # pragma: no cover - internal invariant
        raise ConfigurationError(
            f"planner produced {len(plan)} rows for axes shape "
            f"{plan.shape}"
        )
    return plan
