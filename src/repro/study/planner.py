"""Compile a :class:`~repro.study.spec.StudySpec` into a batch plan.

The planner turns a declarative spec into exactly the vectorized
:mod:`repro.batch` execution the legacy entry points performed —
knob-axes designs go through :class:`~repro.batch.assembly.KnobMatrix`
(identical to ``sweep_knob``/``sweep_grid``), preset and fleet designs
through :func:`~repro.batch.assembly.assemble_configurations`
(identical to ``dse.explore``) — so studies are numerically
indistinguishable from the call stacks they replace.  Scenario axes
expand design rows design-major (scenario varies fastest) and stay
columnar throughout.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..batch.assembly import KnobMatrix, assemble_configurations
from ..batch.grid import cartesian_product
from ..batch.matrix import DesignMatrix
from ..errors import ConfigurationError
from ..uav.configuration import UAVConfiguration
from .spec import (
    DesignSpec,
    ScenarioSpec,
    StudySpec,
    spec_error,
)


@dataclass(frozen=True)
class StudyAxis:
    """One named axis of the study's logical grid.

    ``values`` are knob floats, scenario values, or registry names —
    whatever the axis enumerates; ``size`` of all axes multiplies to
    the evaluated point count, so every result column reshapes onto
    the axes.
    """

    name: str
    values: Tuple[Any, ...]

    @property
    def size(self) -> int:
        return len(self.values)


# eq=False: ndarray fields; identity semantics, like the batch types.
@dataclass(frozen=True, eq=False)
class StudyPlan:
    """A compiled, ready-to-evaluate study.

    ``matrix`` feeds :func:`~repro.batch.engine.evaluate_matrix`
    directly; ``total_mass_g`` / ``compute_tdp_w`` carry the assembly
    layer's accounting columns so mass/TDP filters and metrics need no
    per-point Python.
    """

    spec: StudySpec
    matrix: DesignMatrix
    axes: Tuple[StudyAxis, ...]
    total_mass_g: np.ndarray
    compute_tdp_w: np.ndarray

    def __len__(self) -> int:
        return len(self.matrix)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Points per axis; multiplies to ``len(self)``."""
        return tuple(axis.size for axis in self.axes)


def _scenario_rows(
    scenarios: Optional[ScenarioSpec],
) -> Tuple[Dict[str, Tuple[float, ...]], int]:
    """The provided scenario axes and their Cartesian row count."""
    if scenarios is None:
        return {}, 1
    axes = scenarios.axes()
    count = 1
    for values in axes.values():
        count *= len(values)
    return axes, count


def _scenario_columns(
    axes: Dict[str, Tuple[float, ...]]
) -> Dict[str, np.ndarray]:
    """Row-major Cartesian columns of the scenario axes (last fastest)."""
    if not axes:
        return {}
    return cartesian_product(
        {name: np.asarray(values, dtype=np.float64) for name, values in axes.items()}
    )


def _with_scaled_a_max(
    matrix: DesignMatrix, scale: np.ndarray
) -> DesignMatrix:
    """A copy of ``matrix`` with its acceleration column derated."""
    return DesignMatrix.from_arrays(
        sensing_range_m=matrix.sensing_range_m,
        a_max=matrix.a_max * scale,
        f_sensor_hz=matrix.f_sensor_hz,
        f_compute_hz=matrix.f_compute_hz,
        f_control_hz=matrix.f_control_hz,
        labels=matrix.labels,
        knee_fraction=matrix.knee_fraction,
    )


# ---------------------------------------------------------------------------
# Knob-axes designs (the sweep_knob / sweep_grid shape)
# ---------------------------------------------------------------------------
def _compile_knobs(spec: StudySpec) -> StudyPlan:
    design = spec.design
    base = design.base
    axes_mapping = {name: np.asarray(values, dtype=np.float64)
                    for name, values in design.axes}
    columns = cartesian_product(axes_mapping)
    scenario_axes, n_scenarios = _scenario_rows(spec.scenarios)
    if "compute_redundancy" in scenario_axes:
        raise spec_error(
            "scenarios.compute_redundancy",
            "not applicable to a knobs design (knob-built UAVs fly one "
            "compute module); use a presets or fleet design",
        )

    if not scenario_axes:
        # The exact legacy path: same KnobMatrix call, same labels.
        labels = None
        if len(design.axes) == 1:
            knob, values = design.axes[0]
            labels = [f"{knob}={value:g}" for value in values]
        knob_matrix = KnobMatrix.from_base(base, labels=labels, **columns)
        matrix = knob_matrix.assemble()
        scale = None
    else:
        n_designs = len(next(iter(columns.values())))
        scenario_columns = _scenario_columns(scenario_axes)
        expanded = {
            name: np.repeat(column, n_scenarios)
            for name, column in columns.items()
        }
        if "extra_payload_g" in scenario_columns:
            delta = np.tile(
                scenario_columns["extra_payload_g"], n_designs
            )
            payload = expanded.get("payload_weight_g")
            if payload is None:
                payload = np.full(
                    n_designs * n_scenarios, base.payload_weight_g
                )
            payload = payload + delta
            if np.any(payload < 0.0):
                worst = float(payload.min())
                raise spec_error(
                    "scenarios.extra_payload_g",
                    f"payload goes negative ({worst:g} g); deltas cannot "
                    "shed more than the payload knob carries",
                )
            expanded["payload_weight_g"] = payload
        knob_matrix = KnobMatrix.from_base(base, **expanded)
        matrix = knob_matrix.assemble()
        scale = None
        if "a_max_scale" in scenario_columns:
            scale = np.tile(scenario_columns["a_max_scale"], n_designs)

    if scale is not None:
        matrix = _with_scaled_a_max(matrix, scale)

    study_axes = tuple(
        itertools.chain(
            (StudyAxis(name, values) for name, values in design.axes),
            (
                StudyAxis(name, values)
                for name, values in scenario_axes.items()
            ),
        )
    )
    return StudyPlan(
        spec=spec,
        matrix=matrix,
        axes=study_axes,
        total_mass_g=knob_matrix.total_mass_g,
        compute_tdp_w=knob_matrix.compute_tdp_w,
    )


# ---------------------------------------------------------------------------
# Preset / fleet designs (the dse.explore shape)
# ---------------------------------------------------------------------------
def _materialize_designs(
    design: DesignSpec,
) -> Tuple[
    List[UAVConfiguration],
    List[float],
    Optional[List[str]],
    Tuple[StudyAxis, ...],
]:
    if design.kind == "presets":
        # Enumerate through DesignSpace so ordering and labels match
        # dse.explore exactly.  Imported lazily: repro.dse imports this
        # package at module level.
        from ..dse.space import DesignSpace

        space = DesignSpace(
            uav_names=design.uav_names,
            compute_names=design.compute_names,
            algorithm_names=design.algorithm_names,
        )
        candidates = list(space.candidates())
        uavs = [c.uav for c in candidates]
        rates = [c.f_compute_hz for c in candidates]
        labels = [
            f"{c.uav_name}+{c.compute_name}+{c.algorithm_name}"
            for c in candidates
        ]
        axes = (
            StudyAxis("uav", design.uav_names),
            StudyAxis("compute", design.compute_names),
            StudyAxis("algorithm", design.algorithm_names),
        )
        return uavs, rates, labels, axes
    uavs = list(design.uavs)
    rates = list(design.f_compute_hz)
    labels = list(design.labels) if design.labels is not None else None
    names = (
        design.labels
        if design.labels is not None
        else tuple(u.name for u in uavs)
    )
    return uavs, rates, labels, (StudyAxis("design", tuple(names)),)


def _apply_scenario(
    uav: UAVConfiguration, values: Dict[str, float]
) -> UAVConfiguration:
    changes: Dict[str, Any] = {}
    if "extra_payload_g" in values:
        extra = uav.extra_payload_g + values["extra_payload_g"]
        if extra < 0.0:
            raise spec_error(
                "scenarios.extra_payload_g",
                f"payload goes negative on configuration {uav.name!r} "
                f"({extra:g} g)",
            )
        changes["extra_payload_g"] = extra
    if "compute_redundancy" in values:
        changes["compute_redundancy"] = int(values["compute_redundancy"])
    return replace(uav, **changes) if changes else uav


def _compile_fleet(spec: StudySpec) -> StudyPlan:
    uavs, rates, labels, design_axes = _materialize_designs(spec.design)
    scenario_axes, n_scenarios = _scenario_rows(spec.scenarios)

    scale: Optional[np.ndarray] = None
    if scenario_axes:
        rows = list(itertools.product(*scenario_axes.values()))
        names = list(scenario_axes)
        expanded_uavs: List[UAVConfiguration] = []
        expanded_labels: Optional[List[str]] = (
            [] if labels is not None else None
        )
        for i, uav in enumerate(uavs):
            for row in rows:
                values = dict(zip(names, row))
                expanded_uavs.append(_apply_scenario(uav, values))
                if expanded_labels is not None:
                    suffix = ",".join(
                        f"{name}={value:g}"
                        for name, value in values.items()
                    )
                    expanded_labels.append(f"{labels[i]} [{suffix}]")
        rates = list(np.repeat(np.asarray(rates, dtype=np.float64),
                               n_scenarios))
        uavs, labels = expanded_uavs, expanded_labels
        if "a_max_scale" in scenario_axes:
            per_row = np.asarray(
                [dict(zip(names, row))["a_max_scale"] for row in rows],
                dtype=np.float64,
            )
            scale = np.tile(per_row, len(uavs) // n_scenarios)

    fleet = assemble_configurations(uavs, rates, labels=labels)
    matrix = fleet.matrix
    if scale is not None:
        matrix = _with_scaled_a_max(matrix, scale)

    study_axes = design_axes + tuple(
        StudyAxis(name, values) for name, values in scenario_axes.items()
    )
    return StudyPlan(
        spec=spec,
        matrix=matrix,
        axes=study_axes,
        total_mass_g=fleet.total_mass_g,
        compute_tdp_w=fleet.compute_tdp_w,
    )


def compile_spec(spec: StudySpec) -> StudyPlan:
    """Compile a spec into the vectorized plan that will execute it."""
    if not isinstance(spec, StudySpec):
        raise ConfigurationError(
            f"compile_spec takes a StudySpec, got {type(spec).__name__}"
        )
    if spec.design.kind == "knobs":
        plan = _compile_knobs(spec)
    else:
        plan = _compile_fleet(spec)
    expected = 1
    for axis in plan.axes:
        expected *= axis.size
    if expected != len(plan):  # pragma: no cover - internal invariant
        raise ConfigurationError(
            f"planner produced {len(plan)} rows for axes shape "
            f"{plan.shape}"
        )
    return plan


# ---------------------------------------------------------------------------
# Chunked planning (the worker side of the sharded executor)
# ---------------------------------------------------------------------------
def _check_knob_scenarios(
    spec: StudySpec, scenario_axes: Dict[str, Tuple[float, ...]]
) -> None:
    if spec.design.kind == "knobs" and "compute_redundancy" in scenario_axes:
        raise spec_error(
            "scenarios.compute_redundancy",
            "not applicable to a knobs design (knob-built UAVs fly one "
            "compute module); use a presets or fleet design",
        )


def study_axes(spec: StudySpec) -> Tuple[StudyAxis, ...]:
    """The spec's logical axes, without materializing any design rows.

    Identical to ``compile_spec(spec).axes`` (by construction and by
    test), but O(axes) instead of O(grid): the sharded executor uses it
    to shape results for grids it never holds in one piece.
    """
    if not isinstance(spec, StudySpec):
        raise ConfigurationError(
            f"study_axes takes a StudySpec, got {type(spec).__name__}"
        )
    design = spec.design
    scenario_axes, _ = _scenario_rows(spec.scenarios)
    _check_knob_scenarios(spec, scenario_axes)
    if design.kind == "knobs":
        design_axes: Tuple[StudyAxis, ...] = tuple(
            StudyAxis(name, values) for name, values in design.axes
        )
    elif design.kind == "presets":
        design_axes = (
            StudyAxis("uav", design.uav_names),
            StudyAxis("compute", design.compute_names),
            StudyAxis("algorithm", design.algorithm_names),
        )
    else:
        names = (
            design.labels
            if design.labels is not None
            else tuple(u.name for u in design.uavs)
        )
        design_axes = (StudyAxis("design", tuple(names)),)
    return design_axes + tuple(
        StudyAxis(name, values) for name, values in scenario_axes.items()
    )


def study_size(spec: StudySpec) -> int:
    """How many design points the spec expands to, in O(axes) time."""
    size = 1
    for axis in study_axes(spec):
        size *= axis.size
    return size


# eq=False: ndarray fields; identity semantics, like the batch types.
@dataclass(frozen=True, eq=False)
class ShardPlan:
    """The ``[start, stop)`` rows of a compiled study.

    Concatenating shard plans in row order reproduces the full
    :class:`StudyPlan`'s matrix and accounting columns bitwise — the
    invariant the executor equivalence suite pins.
    """

    start: int
    stop: int
    matrix: DesignMatrix
    total_mass_g: np.ndarray
    compute_tdp_w: np.ndarray

    def __len__(self) -> int:
        return len(self.matrix)


def _compile_knob_chunk(spec: StudySpec, start: int, stop: int) -> ShardPlan:
    """Rows ``[start, stop)`` of a knobs design, by index arithmetic.

    The full planner expands ``cartesian_product(design axes)`` and
    repeats/tiles scenario columns; because the combined expansion is
    exactly the row-major Cartesian product of design axes followed by
    scenario axes (scenario varies fastest), a chunk is just
    :func:`~repro.batch.grid.cartesian_slice` of the combined axes —
    O(chunk) memory however large the grid.
    """
    from ..batch.grid import cartesian_slice

    design = spec.design
    base = design.base
    scenario_axes, _ = _scenario_rows(spec.scenarios)
    _check_knob_scenarios(spec, scenario_axes)
    combined: Dict[str, Any] = {
        name: np.asarray(values, dtype=np.float64)
        for name, values in design.axes
    }
    for name, values in scenario_axes.items():
        combined[name] = np.asarray(values, dtype=np.float64)
    columns = cartesian_slice(combined, start, stop)

    knob_columns = {name: columns[name] for name, _ in design.axes}
    labels = None
    if len(design.axes) == 1 and not scenario_axes:
        knob = design.axes[0][0]
        labels = [f"{knob}={value:g}" for value in knob_columns[knob]]
    if "extra_payload_g" in columns:
        payload = knob_columns.get("payload_weight_g")
        if payload is None:
            payload = np.full(stop - start, base.payload_weight_g)
        payload = payload + columns["extra_payload_g"]
        if np.any(payload < 0.0):
            worst = float(payload.min())
            raise spec_error(
                "scenarios.extra_payload_g",
                f"payload goes negative ({worst:g} g); deltas cannot "
                "shed more than the payload knob carries",
            )
        knob_columns["payload_weight_g"] = payload
    knob_matrix = KnobMatrix.from_base(base, labels=labels, **knob_columns)
    matrix = knob_matrix.assemble()
    if "a_max_scale" in columns:
        matrix = _with_scaled_a_max(matrix, columns["a_max_scale"])
    return ShardPlan(
        start=start,
        stop=stop,
        matrix=matrix,
        total_mass_g=knob_matrix.total_mass_g,
        compute_tdp_w=knob_matrix.compute_tdp_w,
    )


#: Per-process memo of fully compiled fleet/preset plans, keyed by the
#: spec's canonical JSON.  Fleet designs enumerate Python objects, so a
#: chunk cannot be built by index arithmetic; instead each worker
#: compiles the (inherently small, configuration-bounded) full plan
#: once and slices every subsequent chunk out of it.  The lock keeps
#: thread-backend workers from compiling N copies of the full plan at
#: once (or racing the eviction loop) — plans are immutable, so
#: serializing the compile is the cheap, correct choice.
_FLEET_PLAN_MEMO: Dict[str, StudyPlan] = {}
_FLEET_PLAN_MEMO_SIZE = 4
_FLEET_PLAN_LOCK = threading.Lock()


def _fleet_plan(spec: StudySpec) -> StudyPlan:
    key = spec.content_digest()
    with _FLEET_PLAN_LOCK:
        plan = _FLEET_PLAN_MEMO.get(key)
        if plan is None:
            plan = compile_spec(spec)
            while len(_FLEET_PLAN_MEMO) >= _FLEET_PLAN_MEMO_SIZE:
                _FLEET_PLAN_MEMO.pop(next(iter(_FLEET_PLAN_MEMO)))
            _FLEET_PLAN_MEMO[key] = plan
    return plan


def compile_chunk(spec: StudySpec, start: int, stop: int) -> ShardPlan:
    """Compile only rows ``[start, stop)`` of a spec.

    Knob-axes designs are rebuilt by Cartesian index arithmetic (O(chunk)
    memory); preset/fleet designs slice a per-process memoized full plan
    (their size is bounded by real configuration counts).  Chunks
    concatenate bitwise-identically to ``compile_spec(spec)``.
    """
    if not isinstance(spec, StudySpec):
        raise ConfigurationError(
            f"compile_chunk takes a StudySpec, got {type(spec).__name__}"
        )
    total = study_size(spec)
    if not 0 <= start < stop <= total:
        raise ConfigurationError(
            f"chunk [{start}, {stop}) out of range for a {total}-row study"
        )
    if spec.design.kind == "knobs":
        return _compile_knob_chunk(spec, start, stop)
    plan = _fleet_plan(spec)
    rows = np.arange(start, stop)
    return ShardPlan(
        start=start,
        stop=stop,
        matrix=plan.matrix.take(rows),
        total_mass_g=plan.total_mass_g[rows],
        compute_tdp_w=plan.compute_tdp_w[rows],
    )
