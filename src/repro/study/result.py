"""The uniform result every study produces.

A :class:`StudyResult` wraps the full
:class:`~repro.batch.result.BatchResult` with its spec provenance, the
logical axes the evaluated points lie on (so any result column
reshapes back onto the study's grid), the selection the spec's
``filters``/``rank`` clauses produced, and the assembly layer's
mass/TDP accounting columns.  Like the spec, it is plain data:
``to_dict``/``from_dict``/JSON round-trips are lossless, with bound
and verdict columns carried as stable names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..io.serialization import (
    BOUND_CODE_TO_NAME,
    STATUS_CODE_TO_NAME,
    batch_result_from_dict,
    batch_result_to_dict,
    batch_results_equal,
    telemetry_from_dict,
)
from ..batch.result import BatchResult
from .planner import StudyAxis
from .spec import (
    EXTRA_NUMERIC_COLUMNS,
    NUMERIC_RESULT_COLUMNS,
    StudySpec,
)

#: Serialization format version stamped on every result dict.
RESULT_VERSION = 1


# eq=False: ndarray fields; identity semantics — use :meth:`equals`.
@dataclass(frozen=True, eq=False)
class StudyResult:
    """Everything one executed study produced.

    ``batch`` holds every evaluated point (the full grid, pre-filter);
    ``selected_indices`` are the rows the spec's ``filters`` and
    ``rank`` clauses chose, in rank order.  ``total_mass_g`` and
    ``compute_tdp_w`` align with ``batch``.
    """

    spec: StudySpec
    axes: Tuple[StudyAxis, ...]
    batch: BatchResult
    selected_indices: np.ndarray
    total_mass_g: np.ndarray
    compute_tdp_w: np.ndarray
    #: Observability payload of the run that produced this result
    #: (:meth:`repro.obs.Tracer.to_telemetry`), or ``None`` for an
    #: untraced run.  Round-trips through ``to_dict``/``from_dict`` but
    #: is deliberately ignored by :meth:`equals` — two runs of the same
    #: study are the *same result* even though their timings differ.
    telemetry: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        indices = np.asarray(self.selected_indices, dtype=np.intp)
        object.__setattr__(self, "selected_indices", indices)
        for name in ("total_mass_g", "compute_tdp_w"):
            column = np.asarray(getattr(self, name), dtype=np.float64)
            if column.shape != (len(self.batch),):
                raise ConfigurationError(
                    f"{name} has shape {column.shape}, expected "
                    f"({len(self.batch)},)"
                )
            object.__setattr__(self, name, column)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Evaluated points (the full grid, before filters)."""
        return len(self.batch)

    @cached_property
    def nbytes(self) -> int:
        """Memory pinned by the result's columns (batch, matrix,
        accounting).

        The figure the scaling docs trade off against ``chunk_rows``:
        a sharded run's *peak* is bounded by chunk size while it
        streams, but a fully merged ``StudyResult`` still pins this
        much."""
        return (
            self.batch.nbytes
            + self.selected_indices.nbytes
            + self.total_mass_g.nbytes
            + self.compute_tdp_w.nbytes
        )

    @property
    def shape(self) -> Tuple[int, ...]:
        """Points per study axis; multiplies to ``len(self)``."""
        return tuple(axis.size for axis in self.axes)

    def axis(self, name: str) -> StudyAxis:
        """One study axis by name."""
        for axis in self.axes:
            if axis.name == name:
                return axis
        known = ", ".join(a.name for a in self.axes)
        raise ConfigurationError(
            f"{name!r} is not a study axis; axes: {known}"
        )

    @cached_property
    def selected(self) -> BatchResult:
        """The filtered/ranked rows as their own batch result."""
        return self.batch.take(self.selected_indices)

    def column(self, name: str) -> np.ndarray:
        """One numeric column over the *full* batch."""
        if name in NUMERIC_RESULT_COLUMNS:
            return getattr(self.batch, name)
        if name in EXTRA_NUMERIC_COLUMNS:
            return getattr(self, name)
        known = ", ".join(NUMERIC_RESULT_COLUMNS + EXTRA_NUMERIC_COLUMNS)
        raise ConfigurationError(
            f"unknown study column {name!r}; known columns: {known}"
        )

    def values(self, column: str = "safe_velocity") -> np.ndarray:
        """One numeric column reshaped onto the study's axes."""
        return self.column(column).reshape(self.shape)

    def bound_grid(self) -> np.ndarray:
        """Bound classification codes on the study's axes shape."""
        return self.batch.bound_codes.reshape(self.shape)

    def metrics(self) -> Dict[str, Union[np.ndarray, List[str]]]:
        """The spec's requested metrics over the *selected* rows.

        Numeric metrics come back as arrays; ``bound``/``status`` as
        name lists.  An empty ``metrics`` clause reports every numeric
        column.
        """
        names = self.spec.metrics or (
            NUMERIC_RESULT_COLUMNS + EXTRA_NUMERIC_COLUMNS
        )
        out: Dict[str, Union[np.ndarray, List[str]]] = {}
        indices = self.selected_indices
        for name in names:
            if name == "bound":
                out[name] = [
                    BOUND_CODE_TO_NAME[int(c)]
                    for c in self.batch.bound_codes[indices]
                ]
            elif name == "status":
                out[name] = [
                    STATUS_CODE_TO_NAME[int(c)]
                    for c in self.batch.status_codes[indices]
                ]
            else:
                out[name] = self.column(name)[indices]
        return out

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def table(self, limit: Optional[int] = 20) -> str:
        """An aligned text table of (up to ``limit``) selected rows."""
        return self.selected.table(limit=limit)

    def describe(self) -> str:
        """A one-paragraph summary: axes, selection, fleet statistics."""
        dims = " x ".join(
            f"{axis.name}[{axis.size}]" for axis in self.axes
        )
        summary = f"study {dims}: {self.batch.describe()}"
        if len(self.selected_indices) != len(self.batch):
            summary += f" | selected {len(self.selected_indices)}"
        return summary

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out = {
            "version": RESULT_VERSION,
            "spec": self.spec.to_dict(),
            "axes": [
                {"name": axis.name, "values": list(axis.values)}
                for axis in self.axes
            ],
            "batch": batch_result_to_dict(self.batch),
            "selected_indices": self.selected_indices.tolist(),
            "total_mass_g": self.total_mass_g.tolist(),
            "compute_tdp_w": self.compute_tdp_w.tolist(),
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "StudyResult":
        if not isinstance(data, dict):
            raise ConfigurationError(
                "result field '<root>': must be a mapping, got "
                f"{type(data).__name__}"
            )
        version = data.get("version", RESULT_VERSION)
        if version != RESULT_VERSION:
            raise ConfigurationError(
                f"result field 'version': unsupported version {version!r}; "
                f"this build reads version {RESULT_VERSION}"
            )
        for key in (
            "spec",
            "axes",
            "batch",
            "selected_indices",
            "total_mass_g",
            "compute_tdp_w",
        ):
            if key not in data:
                raise ConfigurationError(
                    f"result field {key!r}: missing"
                )
        axes = tuple(
            StudyAxis(name=entry["name"], values=tuple(entry["values"]))
            for entry in data["axes"]
        )
        return cls(
            spec=StudySpec.from_dict(data["spec"]),
            axes=axes,
            batch=batch_result_from_dict(data["batch"]),
            selected_indices=np.asarray(
                data["selected_indices"], dtype=np.intp
            ),
            total_mass_g=np.asarray(
                data["total_mass_g"], dtype=np.float64
            ),
            compute_tdp_w=np.asarray(
                data["compute_tdp_w"], dtype=np.float64
            ),
            telemetry=telemetry_from_dict(data.get("telemetry")),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StudyResult":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"result field '<root>': invalid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        """Write the result to ``path`` as indented JSON."""
        Path(path).write_text(self.to_json(indent=2) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "StudyResult":
        """Read a result previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    def equals(self, other: "StudyResult") -> bool:
        """Deep value equality (bitwise on every column).

        ``telemetry`` is excluded on purpose: span timings vary
        run-to-run, and two executions of the same study must still
        compare equal (the bitwise-identity contracts of the sharded
        paths depend on this).
        """
        return (
            isinstance(other, StudyResult)
            and self.spec == other.spec
            and self.axes == other.axes
            and batch_results_equal(self.batch, other.batch)
            and np.array_equal(
                self.selected_indices, other.selected_indices
            )
            and np.array_equal(self.total_mass_g, other.total_mass_g)
            and np.array_equal(self.compute_tdp_w, other.compute_tdp_w)
        )
