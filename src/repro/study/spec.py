"""Declarative study specifications: an analysis request as plain data.

A :class:`StudySpec` describes *everything* the repo's analysis entry
points used to take as heterogeneous Python arguments — which designs
to evaluate (:class:`DesignSpec`), which scenario variations to cross
them with (:class:`ScenarioSpec`), and how to post-process the result
(``metrics`` / ``filters`` / ``rank``) — as one frozen, comparable,
JSON-round-trippable value.  Specs are compiled by
:mod:`repro.study.planner` into a vectorized :mod:`repro.batch`
execution plan and executed by :func:`repro.study.runner.run_study`;
because a study is data rather than a call stack, it can be queued,
cached across processes, diffed and served.

Field-level validation errors always name the offending spec field
(``study spec field 'design.axes': ...``), mirroring the
:class:`~repro.errors.ConfigurationError` style of
:func:`repro.io.serialization.configuration_from_dict`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..batch.assembly import KNOB_COLUMNS
from ..batch.result import SORTABLE_COLUMNS
from ..errors import ConfigurationError
from ..io.serialization import configuration_from_dict, configuration_to_dict
from ..uav.configuration import UAVConfiguration
from ..units import require_fraction, require_nonnegative

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..batch.cache import BatchCache
    from ..skyline.knobs import Knobs
    from .planner import StudyPlan
    from .result import StudyResult

#: Serialization format version stamped on every spec dict.
SPEC_VERSION = 1

#: Recognized design kinds.
DESIGN_KINDS = ("knobs", "presets", "fleet")

#: Numeric result columns every study provides (per evaluated point).
NUMERIC_RESULT_COLUMNS = SORTABLE_COLUMNS

#: Numeric accounting columns the assembly layer contributes.
EXTRA_NUMERIC_COLUMNS = ("total_mass_g", "compute_tdp_w")

#: Categorical columns (filter with ``==`` / ``!=`` on the name).
CATEGORY_COLUMNS = ("bound", "status")

#: Every column a metrics / filter / rank clause may reference.
ALL_COLUMNS = (
    NUMERIC_RESULT_COLUMNS + EXTRA_NUMERIC_COLUMNS + CATEGORY_COLUMNS
)

#: Comparison operators a :class:`FilterClause` accepts.
FILTER_OPS = ("<", "<=", ">", ">=", "==", "!=")

#: Scenario axes, in their fixed expansion order (last varies fastest).
SCENARIO_AXES = ("extra_payload_g", "a_max_scale", "compute_redundancy")


def spec_error(field: str, message: str) -> ConfigurationError:
    """A validation error that names the offending spec field."""
    return ConfigurationError(f"study spec field {field!r}: {message}")


def _float_axis(field: str, values: Any) -> Tuple[float, ...]:
    """Normalize one axis of values to a tuple of finite floats."""
    try:
        axis = tuple(float(v) for v in values)
    except (TypeError, ValueError) as exc:
        raise spec_error(field, f"not a sequence of numbers: {exc}") from exc
    if not axis:
        raise spec_error(field, "axis needs at least one value")
    for v in axis:
        if v != v or v in (float("inf"), float("-inf")):
            raise spec_error(field, f"values must be finite, got {v!r}")
    return axis


def _name_tuple(field: str, values: Any) -> Tuple[str, ...]:
    if values is None or isinstance(values, str):
        raise spec_error(field, "needs a sequence of names")
    names = tuple(str(v) for v in values)
    if not names:
        raise spec_error(field, "needs at least one entry")
    return names


def _knobs_to_dict(base: "Knobs") -> Dict[str, Any]:
    return {
        f.name: getattr(base, f.name) for f in dataclasses.fields(base)
    }


def _knobs_from_dict(field: str, data: Any) -> "Knobs":
    from ..skyline.knobs import Knobs

    if not isinstance(data, dict):
        raise spec_error(
            field, f"must be a mapping, got {type(data).__name__}"
        )
    known = {f.name for f in dataclasses.fields(Knobs)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise spec_error(
            field,
            f"unknown knob(s) {', '.join(map(repr, unknown))}; known: "
            f"{', '.join(sorted(known))}",
        )
    return Knobs(**data)


# ---------------------------------------------------------------------------
# DesignSpec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DesignSpec:
    """Which design points a study evaluates.

    Three kinds cover every legacy entry point:

    * ``"knobs"`` — a base Table II :class:`~repro.skyline.knobs.Knobs`
      set crossed with knob value ``axes`` (one axis = a sweep, several
      = a Cartesian grid); the shape behind ``sweep_knob``/``sweep_grid``.
    * ``"presets"`` — the registry cross product (UAV presets x compute
      platforms x algorithms); the shape behind ``dse.explore``.
    * ``"fleet"`` — explicit :class:`UAVConfiguration` objects with
      per-vehicle compute throughputs; arbitrary heterogeneous fleets.

    Use the :meth:`knob_axes` / :meth:`presets` / :meth:`fleet`
    constructors rather than filling the union of fields by hand.
    """

    kind: str
    base: Optional["Knobs"] = None
    axes: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    uav_names: Tuple[str, ...] = ()
    compute_names: Tuple[str, ...] = ()
    algorithm_names: Tuple[str, ...] = ()
    uavs: Tuple[UAVConfiguration, ...] = ()
    f_compute_hz: Tuple[float, ...] = ()
    labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in DESIGN_KINDS:
            raise spec_error(
                "design.kind",
                f"unknown kind {self.kind!r}; one of "
                f"{', '.join(DESIGN_KINDS)}",
            )
        getattr(self, f"_validate_{self.kind}")()

    def _validate_knobs(self) -> None:
        from ..skyline.knobs import Knobs

        if not isinstance(self.base, Knobs):
            raise spec_error(
                "design.base",
                "a knobs design needs a Knobs base, got "
                f"{type(self.base).__name__}",
            )
        axes = self.axes
        if isinstance(axes, Mapping):
            axes = tuple(axes.items())
        if not axes:
            raise spec_error(
                "design.axes", "needs at least one knob axis"
            )
        normalized = []
        seen = set()
        for name, values in axes:
            if name not in KNOB_COLUMNS:
                known = ", ".join(KNOB_COLUMNS)
                raise spec_error(
                    "design.axes",
                    f"cannot sweep {name!r}; sweepable knobs: {known}",
                )
            if name in seen:
                raise spec_error(
                    "design.axes", f"duplicate knob axis {name!r}"
                )
            seen.add(name)
            normalized.append(
                (name, _float_axis(f"design.axes[{name}]", values))
            )
        object.__setattr__(self, "axes", tuple(normalized))

    def _validate_presets(self) -> None:
        for field in ("uav_names", "compute_names", "algorithm_names"):
            object.__setattr__(
                self,
                field,
                _name_tuple(f"design.{field}", getattr(self, field)),
            )

    def _validate_fleet(self) -> None:
        if not self.uavs:
            raise spec_error(
                "design.uavs", "needs at least one configuration"
            )
        for i, uav in enumerate(self.uavs):
            if not isinstance(uav, UAVConfiguration):
                raise spec_error(
                    f"design.uavs[{i}]",
                    f"not a UAVConfiguration: {type(uav).__name__}",
                )
        object.__setattr__(self, "uavs", tuple(self.uavs))
        rates = _float_axis("design.f_compute_hz", self.f_compute_hz)
        if len(rates) == 1 and len(self.uavs) > 1:
            rates = rates * len(self.uavs)
        if len(rates) != len(self.uavs):
            raise spec_error(
                "design.f_compute_hz",
                f"{len(rates)} rates for {len(self.uavs)} configurations",
            )
        for v in rates:
            if v <= 0.0:
                raise spec_error(
                    "design.f_compute_hz", f"rates must be > 0, got {v!r}"
                )
        object.__setattr__(self, "f_compute_hz", rates)
        if self.labels is not None:
            labels = tuple(str(v) for v in self.labels)
            if len(labels) != len(self.uavs):
                raise spec_error(
                    "design.labels",
                    f"{len(labels)} labels for {len(self.uavs)} "
                    "configurations",
                )
            object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def knob_axes(
        cls,
        base: Optional["Knobs"] = None,
        axes: Optional[Mapping[str, Sequence[float]]] = None,
        **axis_kwargs: Sequence[float],
    ) -> "DesignSpec":
        """A knob study: a base knob set crossed with value axes."""
        from ..skyline.knobs import Knobs

        merged: Dict[str, Sequence[float]] = dict(axes or {})
        merged.update(axis_kwargs)
        return cls(
            kind="knobs",
            base=base if base is not None else Knobs(),
            axes=tuple(merged.items()),
        )

    @classmethod
    def presets(
        cls,
        uav_names: Sequence[str],
        compute_names: Sequence[str],
        algorithm_names: Sequence[str],
    ) -> "DesignSpec":
        """A registry cross-product study (the DSE shape)."""
        return cls(
            kind="presets",
            uav_names=tuple(uav_names),
            compute_names=tuple(compute_names),
            algorithm_names=tuple(algorithm_names),
        )

    @classmethod
    def fleet(
        cls,
        uavs: Sequence[UAVConfiguration],
        f_compute_hz: Union[float, Sequence[float]],
        labels: Optional[Sequence[str]] = None,
    ) -> "DesignSpec":
        """An explicit heterogeneous fleet study."""
        if isinstance(f_compute_hz, (int, float)):
            f_compute_hz = (float(f_compute_hz),)
        return cls(
            kind="fleet",
            uavs=tuple(uavs),
            f_compute_hz=tuple(f_compute_hz),
            labels=tuple(labels) if labels is not None else None,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "knobs":
            data["base"] = _knobs_to_dict(self.base)
            data["axes"] = {name: list(values) for name, values in self.axes}
        elif self.kind == "presets":
            data["uav_names"] = list(self.uav_names)
            data["compute_names"] = list(self.compute_names)
            data["algorithm_names"] = list(self.algorithm_names)
        else:
            data["uavs"] = [configuration_to_dict(u) for u in self.uavs]
            data["f_compute_hz"] = list(self.f_compute_hz)
            if self.labels is not None:
                data["labels"] = list(self.labels)
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "DesignSpec":
        if not isinstance(data, dict):
            raise spec_error(
                "design", f"must be a mapping, got {type(data).__name__}"
            )
        kind = data.get("kind")
        if kind not in DESIGN_KINDS:
            raise spec_error(
                "design.kind",
                f"unknown kind {kind!r}; one of {', '.join(DESIGN_KINDS)}",
            )
        if kind == "knobs":
            axes = data.get("axes")
            if not isinstance(axes, dict):
                raise spec_error(
                    "design.axes",
                    f"must be a mapping of knob -> values, got "
                    f"{type(axes).__name__}",
                )
            return cls(
                kind="knobs",
                base=_knobs_from_dict(
                    "design.base", data.get("base", {})
                ),
                axes=tuple(axes.items()),
            )
        if kind == "presets":
            return cls(
                kind="presets",
                uav_names=_name_tuple(
                    "design.uav_names", data.get("uav_names")
                ),
                compute_names=_name_tuple(
                    "design.compute_names", data.get("compute_names")
                ),
                algorithm_names=_name_tuple(
                    "design.algorithm_names", data.get("algorithm_names")
                ),
            )
        raw_uavs = data.get("uavs")
        if not isinstance(raw_uavs, list) or not raw_uavs:
            raise spec_error(
                "design.uavs", "needs a non-empty list of configurations"
            )
        labels = data.get("labels")
        return cls(
            kind="fleet",
            uavs=tuple(configuration_from_dict(u) for u in raw_uavs),
            f_compute_hz=tuple(data.get("f_compute_hz", ())),
            labels=tuple(labels) if labels is not None else None,
        )


# ---------------------------------------------------------------------------
# ScenarioSpec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """Operating-condition variations crossed against every design.

    Each provided axis multiplies the study: N designs x M scenarios
    evaluate N*M points, scenario varying fastest.

    * ``extra_payload_g`` — payload deltas (mission equipment added or
      shed); folds into the mass/thrust accounting before assembly.
    * ``a_max_scale`` — acceleration derating factors (e.g. headwind or
      density-altitude margins shrinking the usable thrust margin);
      applied to the assembled ``a_max`` column.
    * ``compute_redundancy`` — onboard-computer replica counts
      (Sec. VI-C modular redundancy); fleet/preset designs only.
    """

    extra_payload_g: Optional[Tuple[float, ...]] = None
    a_max_scale: Optional[Tuple[float, ...]] = None
    compute_redundancy: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.extra_payload_g is not None:
            object.__setattr__(
                self,
                "extra_payload_g",
                _float_axis(
                    "scenarios.extra_payload_g", self.extra_payload_g
                ),
            )
        if self.a_max_scale is not None:
            scales = _float_axis(
                "scenarios.a_max_scale", self.a_max_scale
            )
            for v in scales:
                if v <= 0.0:
                    raise spec_error(
                        "scenarios.a_max_scale",
                        f"scale factors must be > 0, got {v!r}",
                    )
            object.__setattr__(self, "a_max_scale", scales)
        if self.compute_redundancy is not None:
            try:
                counts = tuple(int(v) for v in self.compute_redundancy)
            except (TypeError, ValueError) as exc:
                raise spec_error(
                    "scenarios.compute_redundancy",
                    f"not a sequence of integers: {exc}",
                ) from exc
            if not counts:
                raise spec_error(
                    "scenarios.compute_redundancy",
                    "axis needs at least one value",
                )
            for v in counts:
                if v < 1:
                    raise spec_error(
                        "scenarios.compute_redundancy",
                        f"replica counts must be >= 1, got {v}",
                    )
            object.__setattr__(self, "compute_redundancy", counts)

    def axes(self) -> Dict[str, Tuple[float, ...]]:
        """The provided axes, in :data:`SCENARIO_AXES` order."""
        return {
            name: getattr(self, name)
            for name in SCENARIO_AXES
            if getattr(self, name) is not None
        }

    @property
    def is_trivial(self) -> bool:
        """True when no axis is provided (no expansion at all)."""
        return not self.axes()

    def to_dict(self) -> Dict[str, Any]:
        return {
            name: list(values) for name, values in self.axes().items()
        }

    @classmethod
    def from_dict(cls, data: Any) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise spec_error(
                "scenarios",
                f"must be a mapping, got {type(data).__name__}",
            )
        unknown = sorted(set(data) - set(SCENARIO_AXES))
        if unknown:
            raise spec_error(
                "scenarios",
                f"unknown axis(es) {', '.join(map(repr, unknown))}; "
                f"known: {', '.join(SCENARIO_AXES)}",
            )
        return cls(**data)


# ---------------------------------------------------------------------------
# Post-processing clauses
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FilterClause:
    """Keep only rows where ``column <op> value`` holds."""

    column: str
    op: str
    value: Union[float, str]

    def __post_init__(self) -> None:
        if self.op not in FILTER_OPS:
            raise spec_error(
                "filters.op",
                f"unknown operator {self.op!r}; one of "
                f"{', '.join(FILTER_OPS)}",
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"column": self.column, "op": self.op, "value": self.value}

    @classmethod
    def from_dict(cls, data: Any) -> "FilterClause":
        if not isinstance(data, dict):
            raise spec_error(
                "filters",
                f"each filter must be a mapping, got {type(data).__name__}",
            )
        unknown = sorted(set(data) - {"column", "op", "value"})
        if unknown:
            raise spec_error(
                "filters",
                f"unknown filter key(s) {', '.join(map(repr, unknown))}",
            )
        missing = sorted({"column", "op", "value"} - set(data))
        if missing:
            raise spec_error(
                "filters",
                f"missing filter key(s) {', '.join(map(repr, missing))}",
            )
        return cls(
            column=str(data["column"]),
            op=str(data["op"]),
            value=data["value"],
        )


@dataclass(frozen=True)
class RankClause:
    """Order (and optionally truncate) the selected rows."""

    by: str = "safe_velocity"
    descending: bool = True
    top_k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.top_k is not None and self.top_k < 1:
            raise spec_error(
                "rank.top_k", f"must be >= 1, got {self.top_k}"
            )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "by": self.by,
            "descending": self.descending,
        }
        if self.top_k is not None:
            data["top_k"] = self.top_k
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "RankClause":
        if not isinstance(data, dict):
            raise spec_error(
                "rank", f"must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"by", "descending", "top_k"})
        if unknown:
            raise spec_error(
                "rank",
                f"unknown rank key(s) {', '.join(map(repr, unknown))}",
            )
        return cls(
            by=str(data.get("by", "safe_velocity")),
            descending=bool(data.get("descending", True)),
            top_k=data.get("top_k"),
        )


# ---------------------------------------------------------------------------
# StudySpec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StudySpec:
    """One complete, serializable analysis request.

    ``metrics`` names the result columns a consumer wants reported
    (empty = every numeric column available); ``filters`` and ``rank``
    select and order rows *after* the full evaluation, so the complete
    batch stays available for reshaping and caching.
    """

    design: DesignSpec
    scenarios: Optional[ScenarioSpec] = None
    metrics: Tuple[str, ...] = ()
    filters: Tuple[FilterClause, ...] = ()
    rank: Optional[RankClause] = None
    knee_fraction: Optional[float] = None
    tolerance: float = 0.05

    def __post_init__(self) -> None:
        if not isinstance(self.design, DesignSpec):
            raise spec_error(
                "design",
                f"must be a DesignSpec, got {type(self.design).__name__}",
            )
        if self.scenarios is not None and not isinstance(
            self.scenarios, ScenarioSpec
        ):
            raise spec_error(
                "scenarios",
                "must be a ScenarioSpec, got "
                f"{type(self.scenarios).__name__}",
            )
        if self.scenarios is not None and self.scenarios.is_trivial:
            # Normalize: a no-axes ScenarioSpec means "no scenarios",
            # keeping spec -> JSON -> spec equality exact (to_dict
            # omits trivial scenarios).
            object.__setattr__(self, "scenarios", None)
        metrics = tuple(str(m) for m in self.metrics)
        for name in metrics:
            if name not in ALL_COLUMNS:
                raise spec_error(
                    "metrics",
                    f"unknown column {name!r}; known columns: "
                    f"{', '.join(ALL_COLUMNS)}",
                )
        object.__setattr__(self, "metrics", metrics)
        object.__setattr__(self, "filters", tuple(self.filters))
        for i, clause in enumerate(self.filters):
            self._validate_filter(i, clause)
        if self.rank is not None:
            numeric = NUMERIC_RESULT_COLUMNS + EXTRA_NUMERIC_COLUMNS
            if self.rank.by not in numeric:
                raise spec_error(
                    "rank.by",
                    f"unknown column {self.rank.by!r}; rankable columns: "
                    f"{', '.join(numeric)}",
                )
        if self.knee_fraction is not None:
            require_fraction("knee_fraction", self.knee_fraction)
        require_nonnegative("tolerance", self.tolerance)

    @staticmethod
    def _validate_filter(index: int, clause: FilterClause) -> None:
        field = f"filters[{index}]"
        if not isinstance(clause, FilterClause):
            raise spec_error(
                field,
                f"must be a FilterClause, got {type(clause).__name__}",
            )
        if clause.column not in ALL_COLUMNS:
            raise spec_error(
                f"{field}.column",
                f"unknown column {clause.column!r}; filterable columns: "
                f"{', '.join(ALL_COLUMNS)}",
            )
        if clause.column in CATEGORY_COLUMNS:
            if clause.op not in ("==", "!="):
                raise spec_error(
                    f"{field}.op",
                    f"{clause.column!r} only supports == and !=, "
                    f"got {clause.op!r}",
                )
            if not isinstance(clause.value, str):
                raise spec_error(
                    f"{field}.value",
                    f"{clause.column!r} filters compare against a name, "
                    f"got {type(clause.value).__name__}",
                )
        else:
            if isinstance(clause.value, bool) or not isinstance(
                clause.value, (int, float)
            ):
                raise spec_error(
                    f"{field}.value",
                    f"{clause.column!r} filters compare against a number, "
                    f"got {clause.value!r}",
                )

    # ------------------------------------------------------------------
    # Execution conveniences (lazy imports: planner/runner import spec)
    # ------------------------------------------------------------------
    def plan(self) -> "StudyPlan":
        """Compile this spec into a batch execution plan."""
        from .planner import compile_spec

        return compile_spec(self)

    def run(self, cache: Optional["BatchCache"] = ...) -> "StudyResult":
        """Compile and execute this spec in one call."""
        from .runner import run_study

        if cache is ...:
            return run_study(self)
        return run_study(self, cache=cache)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "version": SPEC_VERSION,
            "design": self.design.to_dict(),
        }
        if self.scenarios is not None and not self.scenarios.is_trivial:
            data["scenarios"] = self.scenarios.to_dict()
        if self.metrics:
            data["metrics"] = list(self.metrics)
        if self.filters:
            data["filters"] = [f.to_dict() for f in self.filters]
        if self.rank is not None:
            data["rank"] = self.rank.to_dict()
        if self.knee_fraction is not None:
            data["knee_fraction"] = self.knee_fraction
        data["tolerance"] = self.tolerance
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "StudySpec":
        if not isinstance(data, dict):
            raise spec_error(
                "<root>", f"must be a mapping, got {type(data).__name__}"
            )
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise spec_error(
                "version",
                f"unsupported spec version {version!r}; this build reads "
                f"version {SPEC_VERSION}",
            )
        known = {
            "version",
            "design",
            "scenarios",
            "metrics",
            "filters",
            "rank",
            "knee_fraction",
            "tolerance",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise spec_error(
                "<root>",
                f"unknown key(s) {', '.join(map(repr, unknown))}; known: "
                f"{', '.join(sorted(known))}",
            )
        if "design" not in data:
            raise spec_error("design", "missing")
        filters = data.get("filters", [])
        if not isinstance(filters, list):
            raise spec_error(
                "filters",
                f"must be a list, got {type(filters).__name__}",
            )
        return cls(
            design=DesignSpec.from_dict(data["design"]),
            scenarios=(
                ScenarioSpec.from_dict(data["scenarios"])
                if "scenarios" in data
                else None
            ),
            metrics=tuple(data.get("metrics", ())),
            filters=tuple(FilterClause.from_dict(f) for f in filters),
            rank=(
                RankClause.from_dict(data["rank"])
                if data.get("rank") is not None
                else None
            ),
            knee_fraction=data.get("knee_fraction"),
            tolerance=data.get("tolerance", 0.05),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def canonical_json(self) -> str:
        """The one canonical serialization of this spec's identity.

        Key-sorted, separator-normalized JSON: equal specs produce
        equal strings across processes and interpreter restarts.  This
        is *the* definition of spec identity for everything
        content-addressed — checkpoint-manifest digests, per-process
        plan memos — so it must only ever change together with a
        manifest version bump.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def content_digest(self) -> str:
        """A compact blake2b digest of :meth:`canonical_json`."""
        import hashlib

        return hashlib.blake2b(
            self.canonical_json().encode("utf-8"), digest_size=16
        ).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "StudySpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise spec_error("<root>", f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        """Write the spec to ``path`` as indented JSON."""
        Path(path).write_text(self.to_json(indent=2) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "StudySpec":
        """Read a spec previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())
