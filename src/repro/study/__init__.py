"""repro.study — one declarative spec → plan → result API.

The paper's Skyline tool (Sec. V) is at heart a request/response
service: describe a UAV and a knob set, get back an F-1
characterization.  This package makes that request a *value*: a
:class:`StudySpec` (designs + scenarios + metrics/filter/rank clauses)
that fully serializes to JSON, compiles into a vectorized
:mod:`repro.batch` plan (:func:`compile_spec`), and executes into a
uniform, equally serializable :class:`StudyResult`
(:func:`run_study`).  Every legacy analysis entry point —
``skyline.sweep_knob``/``sweep_grid``, ``dse.explore``,
``Skyline.study`` and the CLI — is a thin builder over this layer, so
any analysis the repo can run can also be queued, cached across
processes, diffed and served.

Quickstart::

    import numpy as np
    from repro.study import DesignSpec, RankClause, StudySpec, run_study

    spec = StudySpec(
        design=DesignSpec.knob_axes(
            axes={
                "compute_tdp_w": np.linspace(1.0, 30.0, 30),
                "compute_runtime_s": np.geomspace(0.002, 0.5, 40),
            }
        ),
        rank=RankClause(by="safe_velocity", top_k=10),
    )
    result = run_study(spec)
    print(result.table())

    text = spec.to_json()            # ship the request anywhere...
    again = StudySpec.from_json(text).run()   # ...same result
"""

from .planner import (
    ShardPlan,
    StudyAxis,
    StudyPlan,
    compile_chunk,
    compile_spec,
    study_axes,
    study_size,
)
from .result import RESULT_VERSION, StudyResult
from .runner import run_study
from .spec import (
    ALL_COLUMNS,
    CATEGORY_COLUMNS,
    EXTRA_NUMERIC_COLUMNS,
    FILTER_OPS,
    NUMERIC_RESULT_COLUMNS,
    SCENARIO_AXES,
    SPEC_VERSION,
    DesignSpec,
    FilterClause,
    RankClause,
    ScenarioSpec,
    StudySpec,
)

__all__ = [
    "ShardPlan",
    "StudyAxis",
    "StudyPlan",
    "compile_chunk",
    "compile_spec",
    "study_axes",
    "study_size",
    "RESULT_VERSION",
    "StudyResult",
    "run_study",
    "ALL_COLUMNS",
    "CATEGORY_COLUMNS",
    "EXTRA_NUMERIC_COLUMNS",
    "FILTER_OPS",
    "NUMERIC_RESULT_COLUMNS",
    "SCENARIO_AXES",
    "SPEC_VERSION",
    "DesignSpec",
    "FilterClause",
    "RankClause",
    "ScenarioSpec",
    "StudySpec",
]
