"""UAV component models, full-vehicle configurations and presets."""

from .budget import BudgetLine, MassBudget, mass_budget
from .classes import SizeClass, classify_size
from .components import (
    Battery,
    ComputePlatform,
    FlightControllerBoard,
    Frame,
    Motor,
    Sensor,
)
from .configuration import UAVConfiguration
from .presets import (
    asctec_pelican,
    custom_s500,
    dji_spark,
    nano_uav,
)
from .registry import UAV_PRESETS, get_preset

__all__ = [
    "BudgetLine",
    "MassBudget",
    "mass_budget",
    "SizeClass",
    "classify_size",
    "Battery",
    "ComputePlatform",
    "FlightControllerBoard",
    "Frame",
    "Motor",
    "Sensor",
    "UAVConfiguration",
    "asctec_pelican",
    "custom_s500",
    "dji_spark",
    "nano_uav",
    "UAV_PRESETS",
    "get_preset",
]
