"""Preset UAV configurations used by the paper.

Custom S500 builds A-D follow Table I exactly.  The DJI Spark, AscTec
Pelican and nano-UAV presets are reverse-engineered from the paper's
reported case-study quantities, because the Skyline tool's internal
presets were never published; DESIGN.md Sec. 5 derives every constant:

* Spark total thrust (786 g) from "AGX at 15 W raises safe velocity by
  75 %" (Sec. VI-A).
* Pelican base mass (1131.9 g) and thrust (1711 g) jointly from
  "SPA ceiling 2.3 m/s @ 1.1 Hz", "knee 43 Hz" (Sec. VI-B) and
  "dual-TX2 redundancy costs 33 %" (Sec. VI-C).
* Nano-UAV thrust from "knee 26 Hz" with a 6 m sensor (Sec. VII).
"""

from __future__ import annotations

from typing import Optional

from ..compute.platforms import get_platform
from ..errors import ConfigurationError
from .components import (
    Battery,
    ComputePlatform,
    FlightControllerBoard,
    Frame,
    Motor,
    Sensor,
)
from .configuration import UAVConfiguration

# ---------------------------------------------------------------------------
# Custom S500 validation drones (Table I)
# ---------------------------------------------------------------------------

#: Table I payload weights (batteries + onboard compute), grams.
S500_PAYLOAD_G = {"A": 590.0, "B": 800.0, "C": 640.0, "D": 690.0}

#: Table I onboard compute per variant.
S500_COMPUTE = {"A": "raspi4", "B": "upboard", "C": "raspi4", "D": "raspi4"}

#: Obstacle distance assumed in the paper's validation flights (m).
S500_SENSING_RANGE_M = 3.0

_S500_FRAME = Frame(
    name="s500",
    base_mass_g=1030.0,  # motors + ESCs + frame, Table I
    size_mm=500.0,
    rotor_radius_m=0.127,  # 10-inch props
    cd_area_m2=0.09,
)

_S500_MOTOR = Motor(name="readytosky-2210", rated_pull_g=435.0, kv=920.0)

_S500_BATTERY = Battery(
    name="3s-5000",
    capacity_mah=5000.0,
    voltage_v=11.1,
    mass_g=420.0,
)

_S500_FC = FlightControllerBoard(name="nxp-fmuk66", mass_g=0.0)


def custom_s500(variant: str = "A") -> UAVConfiguration:
    """One of the four Table I validation drones (variant 'A'..'D').

    The payload override reproduces Table I's published payload weights
    (which include the compute's separate battery and mounting, not
    itemized per component).
    """
    key = variant.upper()
    if key not in S500_PAYLOAD_G:
        raise ConfigurationError(
            f"unknown S500 variant {variant!r}; expected one of A, B, C, D"
        )
    sensor = Sensor(
        name="validation-rig",
        framerate_hz=30.0,
        range_m=S500_SENSING_RANGE_M,
        mass_g=0.0,
    )
    return UAVConfiguration(
        name=f"uav-{key.lower()}",
        frame=_S500_FRAME,
        motor=_S500_MOTOR,
        battery=_S500_BATTERY,
        sensor=sensor,
        compute=get_platform(S500_COMPUTE[key]),
        flight_controller=_S500_FC,
        payload_override_g=S500_PAYLOAD_G[key],
    )


# ---------------------------------------------------------------------------
# DJI Spark (Sec. VI-A / VI-D case studies)
# ---------------------------------------------------------------------------

#: Calibrated total rated thrust (g); see module docstring.
SPARK_TOTAL_THRUST_G = 785.96

#: Default obstacle-detection range assumed for the Spark (m).
SPARK_SENSING_RANGE_M = 10.0


def dji_spark(
    compute: Optional[ComputePlatform] = None,
    sensor_framerate_hz: float = 60.0,
) -> UAVConfiguration:
    """DJI Spark form factor carrying a user-chosen onboard computer."""
    platform = compute or get_platform("intel-ncs")
    return UAVConfiguration(
        name=f"dji-spark+{platform.name}",
        frame=Frame(
            name="dji-spark",
            base_mass_g=205.0,  # stock airframe w/o battery
            size_mm=170.0,
            rotor_radius_m=0.06,
            cd_area_m2=0.015,
        ),
        motor=Motor(name="spark-1504s", rated_pull_g=SPARK_TOTAL_THRUST_G / 4),
        battery=Battery(
            name="spark-1480",
            capacity_mah=1480.0,
            voltage_v=11.4,
            mass_g=95.0,
        ),
        sensor=Sensor(
            name="spark-camera",
            framerate_hz=sensor_framerate_hz,
            range_m=SPARK_SENSING_RANGE_M,
            mass_g=0.0,
        ),
        compute=platform,
        flight_controller=FlightControllerBoard(name="spark-fc", mass_g=0.0),
    )


# ---------------------------------------------------------------------------
# AscTec Pelican (Sec. VI-B / VI-C / VI-D case studies)
# ---------------------------------------------------------------------------

#: Calibrated base mass (g) and total rated thrust (g); see docstring.
PELICAN_BASE_MASS_G = 1131.9
PELICAN_TOTAL_THRUST_G = 1711.0

#: Sensor ranges used by the paper's Pelican case studies (m).
PELICAN_SENSING_RANGE_M = 3.0  # Sec. VI-B / VI-D
PELICAN_RGBD_RANGE_M = 4.5  # Sec. VI-C (RGB-D camera)


def asctec_pelican(
    compute: Optional[ComputePlatform] = None,
    sensor_range_m: float = PELICAN_SENSING_RANGE_M,
    sensor_framerate_hz: float = 60.0,
) -> UAVConfiguration:
    """AscTec Pelican form factor carrying a user-chosen computer."""
    platform = compute or get_platform("jetson-tx2")
    battery_mass = 353.0
    return UAVConfiguration(
        name=f"asctec-pelican+{platform.name}",
        frame=Frame(
            name="asctec-pelican",
            base_mass_g=PELICAN_BASE_MASS_G - battery_mass,
            size_mm=651.0,
            rotor_radius_m=0.127,
            cd_area_m2=0.08,
        ),
        motor=Motor(
            name="pelican-rotor", rated_pull_g=PELICAN_TOTAL_THRUST_G / 4
        ),
        battery=Battery(
            name="pelican-3830",
            capacity_mah=3830.0,
            voltage_v=11.1,
            mass_g=battery_mass,
        ),
        sensor=Sensor(
            name="rgbd-camera",
            framerate_hz=sensor_framerate_hz,
            range_m=sensor_range_m,
            mass_g=0.0,
        ),
        compute=platform,
        flight_controller=FlightControllerBoard(name="pelican-fc", mass_g=0.0),
    )


# ---------------------------------------------------------------------------
# Nano-UAV (Sec. VII accelerator case study)
# ---------------------------------------------------------------------------

#: Calibrated total rated thrust (g) for a 26 Hz knee at d = 6 m.
NANO_TOTAL_THRUST_G = 40.102

#: Sensor range assumed for the nano-UAV (m).
NANO_SENSING_RANGE_M = 6.0


def nano_uav(
    compute: Optional[ComputePlatform] = None,
    sensor_framerate_hz: float = 60.0,
) -> UAVConfiguration:
    """CrazyFlie-class nano-UAV carrying a milliwatt accelerator."""
    platform = compute or get_platform("pulp-gap8")
    return UAVConfiguration(
        name=f"nano-uav+{platform.name}",
        frame=Frame(
            name="crazyflie-class",
            base_mass_g=21.0,  # airframe w/o battery
            size_mm=92.0,
            rotor_radius_m=0.023,
            cd_area_m2=0.0015,
        ),
        motor=Motor(name="nano-coreless", rated_pull_g=NANO_TOTAL_THRUST_G / 4),
        battery=Battery(
            name="nano-240",
            capacity_mah=240.0,
            voltage_v=3.7,
            mass_g=7.0,
        ),
        sensor=Sensor(
            name="nano-camera",
            framerate_hz=sensor_framerate_hz,
            range_m=NANO_SENSING_RANGE_M,
            mass_g=0.0,
        ),
        compute=platform,
        flight_controller=FlightControllerBoard(name="crazyflie-fc", mass_g=0.0),
    )
