"""Named registry of UAV preset factories.

Skyline's pre-configured UAV menu.  Each entry is a zero-argument
factory returning a fresh :class:`UAVConfiguration` with its default
onboard computer; callers swap the computer with
:meth:`UAVConfiguration.with_compute`.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import UnknownComponentError
from .configuration import UAVConfiguration
from .presets import asctec_pelican, custom_s500, dji_spark, nano_uav

UAV_PRESETS: Dict[str, Callable[[], UAVConfiguration]] = {
    "dji-spark": dji_spark,
    "asctec-pelican": asctec_pelican,
    "nano-uav": nano_uav,
    "custom-s500-a": lambda: custom_s500("A"),
    "custom-s500-b": lambda: custom_s500("B"),
    "custom-s500-c": lambda: custom_s500("C"),
    "custom-s500-d": lambda: custom_s500("D"),
}


def get_preset(name: str) -> UAVConfiguration:
    """Instantiate a preset by name, with a helpful error if absent."""
    try:
        factory = UAV_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(UAV_PRESETS))
        raise UnknownComponentError(
            f"unknown UAV preset {name!r}; known: {known}"
        ) from None
    return factory()
