"""UAV size classes and their SWaP envelopes (Fig. 2b of the paper).

The paper buckets quadcopters into nano / micro / mini classes whose
frame size dictates battery capacity and endurance.  The class table
below carries the paper's Fig. 2b anchor values; :func:`classify_size`
assigns a frame to a class by its size in millimeters.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..units import require_positive


class SizeClass(Enum):
    """Paper's UAV size taxonomy."""

    NANO = "nano"
    MICRO = "micro"
    MINI = "mini"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ClassEnvelope:
    """Typical SWaP envelope of one size class (Fig. 2b anchors)."""

    size_class: SizeClass
    max_size_mm: float
    typical_battery_mah: float
    typical_battery_voltage_v: float
    typical_endurance_min: float


#: Fig. 2b anchor rows: size boundary, battery capacity, endurance.
CLASS_ENVELOPES = (
    ClassEnvelope(
        size_class=SizeClass.NANO,
        max_size_mm=100.0,
        typical_battery_mah=240.0,
        typical_battery_voltage_v=3.7,
        typical_endurance_min=7.0,
    ),
    ClassEnvelope(
        size_class=SizeClass.MICRO,
        max_size_mm=300.0,
        typical_battery_mah=1300.0,
        typical_battery_voltage_v=7.4,
        typical_endurance_min=15.0,
    ),
    ClassEnvelope(
        size_class=SizeClass.MINI,
        max_size_mm=float("inf"),
        typical_battery_mah=3830.0,
        typical_battery_voltage_v=11.1,
        typical_endurance_min=30.0,
    ),
)


def classify_size(size_mm: float) -> SizeClass:
    """Assign a frame size (mm) to the paper's nano/micro/mini classes."""
    require_positive("size_mm", size_mm)
    for envelope in CLASS_ENVELOPES:
        if size_mm <= envelope.max_size_mm:
            return envelope.size_class
    raise AssertionError("unreachable: MINI envelope is unbounded")


def envelope_for(size_class: SizeClass) -> ClassEnvelope:
    """The SWaP envelope for a given size class."""
    for envelope in CLASS_ENVELOPES:
        if envelope.size_class is size_class:
            return envelope
    raise KeyError(size_class)
