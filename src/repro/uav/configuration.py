"""Whole-vehicle UAV configuration with weight and thrust accounting.

A :class:`UAVConfiguration` composes the component dataclasses into one
flyable vehicle, derives the Eq. 5 acceleration from its all-up weight
and rated thrust, and builds the corresponding :class:`F1Model` once a
compute throughput is known.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.knee import KneeStrategy
from ..core.model import F1Model
from ..core.physics import (
    DEFAULT_BRAKING_PITCH_DEG,
    QuadraticDrag,
    ThrustMarginModel,
)
from ..core.throughput import SensorComputeControl
from ..errors import ConfigurationError
from ..units import require_nonnegative
from . import budget
from .components import (
    Battery,
    ComputePlatform,
    FlightControllerBoard,
    Frame,
    Motor,
    Sensor,
)

_DEFAULT_FC = FlightControllerBoard(name="nxp-fmuk66", mass_g=0.0)


@dataclass(frozen=True)
class UAVConfiguration:
    """One complete UAV: frame, propulsion, energy, sensing, compute.

    ``payload_override_g`` replaces the component-derived payload mass
    with a measured figure (Table I publishes payload weights that
    include compute batteries and mounting hardware the component list
    does not itemize).  ``compute_redundancy`` counts identical onboard
    computers flying in a modular-redundancy arrangement (Sec. VI-C).
    """

    name: str
    frame: Frame
    motor: Motor
    battery: Battery
    sensor: Sensor
    compute: ComputePlatform
    flight_controller: FlightControllerBoard = field(default=_DEFAULT_FC)
    compute_redundancy: int = 1
    extra_payload_g: float = 0.0
    payload_override_g: Optional[float] = None
    braking_pitch_deg: float = DEFAULT_BRAKING_PITCH_DEG

    def __post_init__(self) -> None:
        require_nonnegative("extra_payload_g", self.extra_payload_g)
        if self.compute_redundancy < 1:
            raise ConfigurationError(
                "compute_redundancy must be >= 1, got "
                f"{self.compute_redundancy}"
            )
        if self.payload_override_g is not None:
            require_nonnegative("payload_override_g", self.payload_override_g)

    # ------------------------------------------------------------------
    # Mass and thrust accounting
    # ------------------------------------------------------------------
    @property
    def compute_payload_g(self) -> float:
        """Mass of all onboard computers incl. heatsinks (g)."""
        return budget.compute_payload_mass_g(
            self.compute.flight_mass_g, self.compute_redundancy
        )

    @property
    def payload_mass_g(self) -> float:
        """Everything carried beyond the bare frame (g)."""
        if self.payload_override_g is not None:
            return self.payload_override_g + self.extra_payload_g
        return budget.component_payload_mass_g(
            self.battery.mass_g,
            self.sensor.mass_g,
            self.compute_payload_g,
            self.extra_payload_g,
        )

    @property
    def total_mass_g(self) -> float:
        """All-up takeoff mass (g)."""
        return budget.all_up_mass_g(
            self.frame.base_mass_g,
            self.flight_controller.mass_g,
            self.payload_mass_g,
        )

    @property
    def total_thrust_g(self) -> float:
        """Summed rated pull of all motors (gram-force)."""
        return budget.rated_thrust_g(
            self.motor.rated_pull_g, self.frame.rotor_count
        )

    @property
    def thrust_to_weight(self) -> float:
        """Rated thrust over all-up weight (dimensionless)."""
        return self.total_thrust_g / self.total_mass_g

    # ------------------------------------------------------------------
    # Physics
    # ------------------------------------------------------------------
    @property
    def acceleration_model(self) -> ThrustMarginModel:
        """The Eq. 5 model bound to this vehicle's thrust."""
        return ThrustMarginModel(
            total_thrust_g=self.total_thrust_g,
            braking_pitch_deg=self.braking_pitch_deg,
        )

    @property
    def max_acceleration(self) -> float:
        """Maximum commandable acceleration at the all-up mass (m/s^2)."""
        return self.acceleration_model.max_acceleration(self.total_mass_g)

    @property
    def drag(self) -> QuadraticDrag:
        """Drag model for the flight simulator."""
        return QuadraticDrag(cd_area_m2=self.frame.cd_area_m2)

    # ------------------------------------------------------------------
    # F-1 model construction
    # ------------------------------------------------------------------
    def pipeline(self, f_compute_hz: float) -> SensorComputeControl:
        """The decision pipeline once the compute rate is known."""
        return SensorComputeControl(
            f_sensor_hz=self.sensor.framerate_hz,
            f_compute_hz=f_compute_hz,
            f_control_hz=self.flight_controller.loop_rate_hz,
        )

    def f1(
        self,
        f_compute_hz: float,
        knee_strategy: Optional[KneeStrategy] = None,
    ) -> F1Model:
        """The F-1 model of this vehicle running an algorithm whose
        compute throughput on :attr:`compute` is ``f_compute_hz``."""
        kwargs = {}
        if knee_strategy is not None:
            kwargs["knee_strategy"] = knee_strategy
        return F1Model(
            sensing_range_m=self.sensor.range_m,
            a_max=self.max_acceleration,
            pipeline=self.pipeline(f_compute_hz),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def with_compute(
        self, compute: ComputePlatform, name: Optional[str] = None
    ) -> "UAVConfiguration":
        """A copy carrying a different onboard computer."""
        return replace(
            self, compute=compute, name=name or f"{self.name}+{compute.name}"
        )

    def with_sensor(self, sensor: Sensor) -> "UAVConfiguration":
        """A copy carrying a different sensor."""
        return replace(self, sensor=sensor)

    def with_sensor_range(self, range_m: float) -> "UAVConfiguration":
        """A copy whose sensor sees out to ``range_m`` meters."""
        return replace(self, sensor=self.sensor.with_range(range_m))

    def with_extra_payload(self, extra_payload_g: float) -> "UAVConfiguration":
        """A copy carrying additional calibration/payload weight."""
        return replace(self, extra_payload_g=extra_payload_g)

    def with_redundancy(self, n: int) -> "UAVConfiguration":
        """A copy flying ``n`` identical onboard computers (DMR/TMR)."""
        return replace(
            self,
            compute_redundancy=n,
            name=f"{self.name}-{n}x-{self.compute.name}"
            if n > 1
            else self.name,
        )

    def describe(self) -> str:
        """Multi-line mass/thrust budget summary."""
        lines = [
            f"UAV '{self.name}'",
            f"  frame base      : {self.frame.base_mass_g:.0f} g "
            f"({self.frame.name}, {self.frame.size_mm:.0f} mm)",
            f"  payload         : {self.payload_mass_g:.0f} g "
            f"(compute {self.compute_payload_g:.0f} g x"
            f"{self.compute_redundancy})",
            f"  all-up mass     : {self.total_mass_g:.0f} g",
            f"  rated thrust    : {self.total_thrust_g:.0f} g "
            f"(T/W {self.thrust_to_weight:.2f})",
            f"  max acceleration: {self.max_acceleration:.3f} m/s^2",
            f"  sensor          : {self.sensor.name} "
            f"@ {self.sensor.framerate_hz:.0f} Hz, "
            f"range {self.sensor.range_m:.1f} m",
        ]
        return "\n".join(lines)
