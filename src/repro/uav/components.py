"""Dataclasses for the physical components of an autonomous UAV.

Masses are grams, thrust is gram-force (spec-sheet "pull"), rates are
Hz.  :class:`ComputePlatform` sizes its own heatsink from TDP via the
paper's Fig. 12 relationship (see :mod:`repro.core.heatsink`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.heatsink import heatsink_mass_g
from .budget import compute_flight_mass_g
from ..errors import ConfigurationError
from ..units import (
    mah_to_wh,
    require_fraction,
    require_nonnegative,
    require_positive,
)


@dataclass(frozen=True)
class Frame:
    """Mechanical frame, inclusive of motors and ESCs (the Table I
    "base weight" convention)."""

    name: str
    base_mass_g: float
    size_mm: float
    rotor_count: int = 4
    rotor_radius_m: float = 0.127
    cd_area_m2: float = 0.05

    def __post_init__(self) -> None:
        require_positive("base_mass_g", self.base_mass_g)
        require_positive("size_mm", self.size_mm)
        require_positive("rotor_radius_m", self.rotor_radius_m)
        require_nonnegative("cd_area_m2", self.cd_area_m2)
        if self.rotor_count < 3:
            raise ConfigurationError(
                f"rotor_count must be >= 3 for a multirotor, got "
                f"{self.rotor_count!r}"
            )

    @property
    def disk_area_m2(self) -> float:
        """Total actuator-disk area of all rotors (for power models)."""
        import math

        return self.rotor_count * math.pi * self.rotor_radius_m**2


@dataclass(frozen=True)
class Motor:
    """One motor/propeller unit, characterized by its rated pull."""

    name: str
    rated_pull_g: float
    kv: Optional[float] = None

    def __post_init__(self) -> None:
        require_positive("rated_pull_g", self.rated_pull_g)
        if self.kv is not None:
            require_positive("kv", self.kv)


@dataclass(frozen=True)
class Sensor:
    """An exteroceptive sensor: frame rate, detection range, mass."""

    name: str
    framerate_hz: float
    range_m: float
    mass_g: float = 0.0
    fov_deg: float = 90.0

    def __post_init__(self) -> None:
        require_positive("framerate_hz", self.framerate_hz)
        require_positive("range_m", self.range_m)
        require_nonnegative("mass_g", self.mass_g)
        require_positive("fov_deg", self.fov_deg)

    @property
    def sample_period_s(self) -> float:
        """Time between successive frames, ``1 / framerate``."""
        return 1.0 / self.framerate_hz

    def with_range(self, range_m: float) -> "Sensor":
        """A copy with a different detection range."""
        return replace(self, range_m=range_m)

    def with_framerate(self, framerate_hz: float) -> "Sensor":
        """A copy with a different frame rate."""
        return replace(self, framerate_hz=framerate_hz)


@dataclass(frozen=True)
class Battery:
    """Flight battery.  ``usable_fraction`` reserves charge for landing."""

    name: str
    capacity_mah: float
    voltage_v: float
    mass_g: float = 0.0
    usable_fraction: float = 0.85

    def __post_init__(self) -> None:
        require_positive("capacity_mah", self.capacity_mah)
        require_positive("voltage_v", self.voltage_v)
        require_nonnegative("mass_g", self.mass_g)
        require_fraction("usable_fraction", self.usable_fraction)

    @property
    def energy_wh(self) -> float:
        """Nameplate energy content, Wh."""
        return mah_to_wh(self.capacity_mah, self.voltage_v)

    @property
    def usable_energy_wh(self) -> float:
        """Energy available to the mission after the landing reserve."""
        return self.energy_wh * self.usable_fraction


@dataclass(frozen=True)
class FlightControllerBoard:
    """The dedicated low-level flight controller (Sec. II-D)."""

    name: str
    mass_g: float = 0.0
    loop_rate_hz: float = 1000.0

    def __post_init__(self) -> None:
        require_nonnegative("mass_g", self.mass_g)
        require_positive("loop_rate_hz", self.loop_rate_hz)


@dataclass(frozen=True)
class ComputePlatform:
    """An onboard computer: mass, thermal and performance envelope.

    ``mass_g`` is the bare module; ``carrier_mass_g`` covers carrier
    board / enclosure; the heatsink is sized from TDP automatically
    when ``needs_heatsink``.  ``peak_gflops`` and
    ``mem_bandwidth_gbs`` feed the classic-roofline latency estimator.
    """

    name: str
    mass_g: float
    tdp_w: float
    peak_gflops: float
    mem_bandwidth_gbs: float
    carrier_mass_g: float = 0.0
    idle_power_w: float = 0.5
    needs_heatsink: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        require_positive("mass_g", self.mass_g)
        require_positive("tdp_w", self.tdp_w)
        require_positive("peak_gflops", self.peak_gflops)
        require_positive("mem_bandwidth_gbs", self.mem_bandwidth_gbs)
        require_nonnegative("carrier_mass_g", self.carrier_mass_g)
        require_nonnegative("idle_power_w", self.idle_power_w)

    @property
    def heatsink_mass_g(self) -> float:
        """Heatsink mass implied by TDP (0 when none is needed)."""
        if not self.needs_heatsink:
            return 0.0
        return heatsink_mass_g(self.tdp_w)

    @property
    def flight_mass_g(self) -> float:
        """All-in payload mass: module + carrier + heatsink."""
        return compute_flight_mass_g(
            self.mass_g, self.carrier_mass_g, self.heatsink_mass_g
        )

    def with_tdp(self, tdp_w: float, name: Optional[str] = None) -> "ComputePlatform":
        """The same platform re-binned at a different TDP.

        Models the paper's Sec. VI-A scenario: an architectural
        optimization halves TDP without (for simplicity) changing
        throughput, shrinking the heatsink and thus the payload.
        """
        require_positive("tdp_w", tdp_w)
        return replace(
            self,
            tdp_w=tdp_w,
            name=name or f"{self.name}-{tdp_w:g}w",
        )
