"""Mass-budget accounting: the arithmetic and its itemized breakdown.

SWaP engineering starts from a gram-by-gram budget.  This module holds
the *plain-function* accounting chain — compute flight mass, payload
mass, all-up mass, rated thrust — shared by the scalar
:class:`~repro.uav.configuration.UAVConfiguration` properties and the
vectorized :mod:`repro.batch.assembly` kernels (the functions are
polymorphic over floats and NumPy columns), plus :func:`mass_budget`,
which itemizes one configuration (frame, flight controller, battery,
sensor, compute module / carrier / heatsink per replica, extra
payload), reports each item's share of the all-up mass, and quantifies
the thrust margin the budget leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .configuration import UAVConfiguration


# ---------------------------------------------------------------------------
# The shared accounting chain (scalar UAVConfiguration *and* batch assembly)
# ---------------------------------------------------------------------------
def compute_flight_mass_g(module_mass_g, carrier_mass_g, heatsink_mass_g):
    """All-in mass of one onboard computer: module + carrier + heatsink."""
    return module_mass_g + carrier_mass_g + heatsink_mass_g


def compute_payload_mass_g(flight_mass_g, redundancy=1):
    """Mass of all onboard computers flying in ``redundancy`` replicas."""
    return flight_mass_g * redundancy


def component_payload_mass_g(
    battery_mass_g, sensor_mass_g, compute_payload_g, extra_payload_g
):
    """Component-derived payload: everything carried beyond the frame."""
    return (
        battery_mass_g + sensor_mass_g + compute_payload_g + extra_payload_g
    )


def all_up_mass_g(frame_base_mass_g, flight_controller_mass_g, payload_g):
    """Takeoff mass: frame (incl. motors/ESCs) + FC board + payload."""
    return frame_base_mass_g + flight_controller_mass_g + payload_g


def rated_thrust_g(rotor_pull_g, rotor_count):
    """Summed rated pull of all motors (gram-force)."""
    return rotor_pull_g * rotor_count


@dataclass(frozen=True)
class BudgetLine:
    """One itemized mass contribution."""

    item: str
    mass_g: float
    fraction: float


@dataclass(frozen=True)
class MassBudget:
    """The full breakdown plus thrust-margin headroom."""

    uav_name: str
    lines: Sequence[BudgetLine]
    total_mass_g: float
    total_thrust_g: float

    @property
    def thrust_margin_g(self) -> float:
        """Rated thrust minus all-up weight (can be negative)."""
        return self.total_thrust_g - self.total_mass_g

    @property
    def compute_fraction(self) -> float:
        """Share of all-up mass spent on computing (incl. thermals)."""
        return sum(
            line.fraction
            for line in self.lines
            if line.item.startswith("compute")
        )

    def table(self) -> str:
        """Aligned text rendering of the budget."""
        # Imported here, not at module level: repro.io.serialization
        # imports the component dataclasses, whose module in turn uses
        # this module's accounting functions.
        from ..io.tables import format_table

        rows = [
            (line.item, f"{line.mass_g:.1f}", f"{line.fraction:.1%}")
            for line in self.lines
        ]
        rows.append(("TOTAL", f"{self.total_mass_g:.1f}", "100.0%"))
        return format_table(("item", "mass (g)", "share"), rows)


def mass_budget(uav: UAVConfiguration) -> MassBudget:
    """Itemize a configuration's all-up mass.

    When the configuration uses a Table-I style payload override, the
    non-itemizable remainder (mounting, cabling, compute batteries) is
    reported as one ``payload (unitemized)`` line so the budget always
    sums to the all-up mass.
    """
    total = uav.total_mass_g
    lines: List[BudgetLine] = []

    def add(item: str, mass_g: float) -> None:
        if mass_g > 0:
            lines.append(
                BudgetLine(item=item, mass_g=mass_g, fraction=mass_g / total)
            )

    add("frame + motors + ESCs", uav.frame.base_mass_g)
    add("flight controller", uav.flight_controller.mass_g)

    if uav.payload_override_g is not None:
        itemized = uav.compute_payload_g
        add(
            f"compute x{uav.compute_redundancy} ({uav.compute.name})",
            itemized,
        )
        add(
            "payload (unitemized: batteries, mounting)",
            uav.payload_override_g - itemized,
        )
        add("extra payload", uav.extra_payload_g)
    else:
        add(f"battery ({uav.battery.name})", uav.battery.mass_g)
        add(f"sensor ({uav.sensor.name})", uav.sensor.mass_g)
        per_replica_suffix = (
            f" x{uav.compute_redundancy}" if uav.compute_redundancy > 1 else ""
        )
        add(
            f"compute module{per_replica_suffix}",
            uav.compute.mass_g * uav.compute_redundancy,
        )
        add(
            f"compute carrier{per_replica_suffix}",
            uav.compute.carrier_mass_g * uav.compute_redundancy,
        )
        add(
            f"compute heatsink{per_replica_suffix}",
            uav.compute.heatsink_mass_g * uav.compute_redundancy,
        )
        add("extra payload", uav.extra_payload_g)

    return MassBudget(
        uav_name=uav.name,
        lines=lines,
        total_mass_g=total,
        total_thrust_g=uav.total_thrust_g,
    )
