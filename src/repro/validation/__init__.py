"""Model-vs-flight validation: campaigns, error analysis, calibration."""

from .calibration import fit_acceleration, fit_sensing_range
from .error_analysis import ErrorBreakdown, decompose_error
from .flight_tests import ValidationRow, run_validation_campaign

__all__ = [
    "fit_acceleration",
    "fit_sensing_range",
    "ErrorBreakdown",
    "decompose_error",
    "ValidationRow",
    "run_validation_campaign",
]
