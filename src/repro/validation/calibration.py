"""Fitting F-1 parameters from observed flight data.

The inverse problem of validation: given observed (action period,
safe velocity) samples from flights, recover the effective ``a_max``
or sensing range.  Closed forms follow from the stopping-distance
identity ``v*T + v^2/(2a) = d``; multi-sample fits use least squares.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import optimize

from ..core.safety import safe_velocity
from ..errors import CalibrationError
from ..units import require_positive


def fit_acceleration(
    samples: Sequence[Tuple[float, float]],
    sensing_range_m: float,
) -> float:
    """Recover ``a_max`` from (t_action_s, observed_v) samples.

    One sample has the closed form ``a = v^2 / (2 (d - v T))``; several
    samples are reconciled by least squares on Eq. 4.
    """
    require_positive("sensing_range_m", sensing_range_m)
    if not samples:
        raise CalibrationError("need at least one (T_action, v) sample")
    for t_action, velocity in samples:
        if velocity <= 0:
            raise CalibrationError(f"non-positive velocity {velocity}")
        if sensing_range_m - velocity * t_action <= 0:
            raise CalibrationError(
                f"sample (T={t_action}, v={velocity}) violates the "
                f"stopping identity for d={sensing_range_m}: the vehicle "
                "covers the whole sensing range during the reaction delay"
            )

    closed_forms = [
        velocity**2 / (2.0 * (sensing_range_m - velocity * t_action))
        for t_action, velocity in samples
    ]
    if len(samples) == 1:
        return closed_forms[0]

    t = np.array([sample[0] for sample in samples])
    v = np.array([sample[1] for sample in samples])

    def residual(a: np.ndarray) -> np.ndarray:
        return safe_velocity(t, sensing_range_m, float(a[0])) - v

    result = optimize.least_squares(
        residual, x0=[float(np.median(closed_forms))], bounds=(1e-6, np.inf)
    )
    if not result.success:
        raise CalibrationError(f"least-squares fit failed: {result.message}")
    return float(result.x[0])


def fit_sensing_range(
    samples: Sequence[Tuple[float, float]],
    a_max: float,
) -> float:
    """Recover the effective sensing range from (T_action, v) samples.

    Closed form per sample: ``d = v T + v^2 / (2 a)``; multiple samples
    are averaged by least squares on Eq. 4.
    """
    require_positive("a_max", a_max)
    if not samples:
        raise CalibrationError("need at least one (T_action, v) sample")
    closed_forms = [
        velocity * t_action + velocity**2 / (2.0 * a_max)
        for t_action, velocity in samples
    ]
    if len(samples) == 1:
        return closed_forms[0]

    t = np.array([sample[0] for sample in samples])
    v = np.array([sample[1] for sample in samples])

    def residual(d: np.ndarray) -> np.ndarray:
        return safe_velocity(t, float(d[0]), a_max) - v

    result = optimize.least_squares(
        residual, x0=[float(np.median(closed_forms))], bounds=(1e-6, np.inf)
    )
    if not result.success:
        raise CalibrationError(f"least-squares fit failed: {result.message}")
    return float(result.x[0])
