"""Attribution of the model-vs-flight error to its physical sources.

Sec. IV of the paper lists three error sources: linearization near the
knee, unmodeled drag, and mechanical effects (here: pitch lag).  The
simulator can switch each effect off individually, so the error can be
decomposed by ablation: re-run the safe-velocity search with one
effect removed and attribute the recovered velocity to that effect.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sim.obstacle_stop import ObstacleStopConfig
from ..sim.trials import find_observed_safe_velocity
from ..uav.configuration import UAVConfiguration


@dataclass(frozen=True)
class ErrorBreakdown:
    """Observed safe velocities under selective idealization."""

    predicted_velocity: float
    observed_full: float
    observed_no_lag: float
    observed_no_derate: float
    observed_ideal: float

    @property
    def total_error_pct(self) -> float:
        return (
            (self.predicted_velocity - self.observed_full)
            / self.predicted_velocity
            * 100.0
        )

    @property
    def lag_contribution_pct(self) -> float:
        """Error recovered by removing pitch lag."""
        return (
            (self.observed_no_lag - self.observed_full)
            / self.predicted_velocity
            * 100.0
        )

    @property
    def derate_contribution_pct(self) -> float:
        """Error recovered by removing the in-flight thrust derate."""
        return (
            (self.observed_no_derate - self.observed_full)
            / self.predicted_velocity
            * 100.0
        )


def decompose_error(
    uav: UAVConfiguration,
    predicted_velocity: float,
    f_action_hz: float = 10.0,
    trials: int = 3,
    seed: int = 11,
) -> ErrorBreakdown:
    """Ablate simulator effects one at a time and report contributions."""
    base = ObstacleStopConfig(
        cruise_velocity=predicted_velocity, f_action_hz=f_action_hz
    )

    def observed(config: ObstacleStopConfig) -> float:
        return find_observed_safe_velocity(
            uav,
            f_action_hz=f_action_hz,
            predicted_velocity=predicted_velocity,
            trials=trials,
            seed=seed,
            base_config=config,
        ).observed_safe_velocity

    return ErrorBreakdown(
        predicted_velocity=predicted_velocity,
        observed_full=observed(base),
        observed_no_lag=observed(replace(base, pitch_lag_s=0.0)),
        observed_no_derate=observed(replace(base, accel_derate=1.0)),
        observed_ideal=observed(
            replace(
                base,
                pitch_lag_s=0.0,
                accel_derate=1.0,
                detection_noise_m=0.0,
            )
        ),
    )
