"""The Sec. IV validation campaign: UAV-A through UAV-D.

For each Table I drone the campaign computes the F-1-predicted safe
velocity at the 10 Hz action loop, then flies the simulated
obstacle-stop sweep (five trials per candidate velocity) to find the
observed safe velocity, and reports the model error — the simulated
stand-in for the paper's Fig. 7b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.obstacle_stop import ObstacleStopConfig
from ..sim.trials import SafeVelocitySearch, find_observed_safe_velocity
from ..uav.presets import S500_PAYLOAD_G, custom_s500

#: The paper's ROS loop rate during validation (Sec. IV).
VALIDATION_LOOP_RATE_HZ = 10.0

#: Paper-reported values for comparison (Sec. IV / Fig. 9).
PAPER_PREDICTED_V = {"A": 2.13, "B": 1.51, "C": 1.58, "D": 1.53}
PAPER_ERROR_PCT = {"A": 9.5, "B": 7.2, "C": 5.1, "D": 6.45}


@dataclass(frozen=True)
class ValidationRow:
    """One drone's predicted-vs-observed safe velocity."""

    variant: str
    total_mass_g: float
    a_max: float
    predicted_velocity: float
    observed_velocity: float
    search: SafeVelocitySearch

    @property
    def error_pct(self) -> float:
        """Optimism of the model: (predicted - observed) / predicted."""
        return (
            (self.predicted_velocity - self.observed_velocity)
            / self.predicted_velocity
            * 100.0
        )


def predicted_safe_velocity(
    variant: str, f_action_hz: float = VALIDATION_LOOP_RATE_HZ
) -> float:
    """The F-1 prediction for one Table I drone at the loop rate."""
    uav = custom_s500(variant)
    return uav.f1(f_action_hz).velocity_at(f_action_hz)


def run_validation_campaign(
    f_action_hz: float = VALIDATION_LOOP_RATE_HZ,
    trials: int = 5,
    seed: int = 7,
    variants: Optional[List[str]] = None,
    base_config: Optional[ObstacleStopConfig] = None,
) -> Dict[str, ValidationRow]:
    """Run the full A-D campaign; returns variant -> row."""
    rows: Dict[str, ValidationRow] = {}
    for variant in variants or sorted(S500_PAYLOAD_G):
        uav = custom_s500(variant)
        predicted = uav.f1(f_action_hz).velocity_at(f_action_hz)
        search = find_observed_safe_velocity(
            uav,
            f_action_hz=f_action_hz,
            predicted_velocity=predicted,
            trials=trials,
            seed=seed,
            base_config=base_config,
        )
        rows[variant] = ValidationRow(
            variant=variant,
            total_mass_g=uav.total_mass_g,
            a_max=uav.max_acceleration,
            predicted_velocity=predicted,
            observed_velocity=search.observed_safe_velocity,
            search=search,
        )
    return rows
