"""The classic roofline model (Williams et al., CACM 2009).

The paper contrasts its F-1 model with the traditional compute roofline
(and Gables): attainable performance is the lesser of the compute peak
and the bandwidth-bound line ``BW * OI``.  This substrate serves two
roles here: it estimates compute throughput for (algorithm, platform)
pairs the paper did not characterize, and it lets the test suite show
that *isolated* roofline reasoning mispredicts UAV-level outcomes —
the paper's central argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import ConfigurationError
from ..units import require_positive

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class ClassicRoofline:
    """A compute platform's roofline: peak GFLOP/s and GB/s."""

    peak_gflops: float
    mem_bandwidth_gbs: float

    def __post_init__(self) -> None:
        require_positive("peak_gflops", self.peak_gflops)
        require_positive("mem_bandwidth_gbs", self.mem_bandwidth_gbs)

    @property
    def ridge_point_flops_per_byte(self) -> float:
        """Operational intensity where the two roofs intersect."""
        return self.peak_gflops / self.mem_bandwidth_gbs

    def attainable_gflops(self, oi_flops_per_byte: ArrayLike) -> ArrayLike:
        """Attainable performance at operational intensity ``oi``."""
        oi = np.asarray(oi_flops_per_byte, dtype=float)
        if np.any(oi <= 0):
            raise ConfigurationError(
                "oi_flops_per_byte must be > 0 everywhere, got "
                f"{float(np.min(oi))!r}"
            )
        perf = np.minimum(self.peak_gflops, self.mem_bandwidth_gbs * oi)
        return float(perf) if np.isscalar(oi_flops_per_byte) else perf

    def is_compute_bound(self, oi_flops_per_byte: float) -> bool:
        """Whether a kernel at ``oi`` hits the flat (compute) roof."""
        require_positive("oi_flops_per_byte", oi_flops_per_byte)
        return oi_flops_per_byte >= self.ridge_point_flops_per_byte

    def kernel_time_s(
        self,
        flops_g: float,
        bytes_gb: float,
        efficiency: float = 1.0,
    ) -> float:
        """Best-case execution time of one kernel invocation (s).

        ``efficiency`` derates the attainable roof for real-world
        launch overheads, cache misses and framework costs.
        """
        require_positive("flops_g", flops_g)
        require_positive("bytes_gb", bytes_gb)
        require_positive("efficiency", efficiency)
        oi = flops_g / bytes_gb
        gflops = self.attainable_gflops(oi) * efficiency
        return flops_g / gflops
