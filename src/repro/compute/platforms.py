"""Database of onboard compute platforms used throughout the paper.

Masses, TDPs and (where published) performance envelopes come from the
paper (Table I, Sec. VI-A, Sec. VII) and vendor datasheets.  Peak
GFLOPS figures are small-batch inference peaks in the platform's
preferred precision; they feed the classic-roofline latency estimator
and are cross-checked against the paper's measured throughputs in the
test suite.
"""

from __future__ import annotations

from typing import Dict

from ..errors import UnknownComponentError
from ..uav.components import ComputePlatform

_ALL = (
    ComputePlatform(
        name="raspi4",
        mass_g=46.0,
        tdp_w=5.0,
        peak_gflops=24.0,
        mem_bandwidth_gbs=4.0,
        needs_heatsink=False,
        idle_power_w=2.0,
        description="Raspberry Pi 4B (ARM Cortex-A72, passive cooling)",
    ),
    ComputePlatform(
        name="upboard",
        mass_g=100.0,
        tdp_w=15.0,
        peak_gflops=48.0,
        mem_bandwidth_gbs=6.4,
        idle_power_w=4.0,
        description="Intel Up Squared (x86 Atom) used on UAV-B",
    ),
    ComputePlatform(
        name="jetson-tx2",
        mass_g=85.0,
        carrier_mass_g=60.0,
        tdp_w=7.5,
        peak_gflops=1330.0,
        mem_bandwidth_gbs=59.7,
        idle_power_w=2.0,
        description="Nvidia Jetson TX2 module + carrier",
    ),
    ComputePlatform(
        name="jetson-agx-30w",
        mass_g=280.0,
        tdp_w=30.0,
        peak_gflops=11000.0,
        mem_bandwidth_gbs=137.0,
        idle_power_w=5.0,
        description="Nvidia Jetson AGX Xavier at its 30 W profile",
    ),
    ComputePlatform(
        name="jetson-agx-15w",
        mass_g=280.0,
        tdp_w=15.0,
        peak_gflops=11000.0,
        mem_bandwidth_gbs=137.0,
        idle_power_w=5.0,
        description=(
            "Hypothetical AGX re-binned at 15 W with unchanged "
            "throughput (the paper's Sec. VI-A optimization scenario)"
        ),
    ),
    ComputePlatform(
        name="intel-ncs",
        mass_g=47.0,
        tdp_w=1.0,
        peak_gflops=100.0,
        mem_bandwidth_gbs=4.0,
        needs_heatsink=False,
        idle_power_w=0.5,
        description="Intel Neural Compute Stick (Myriad VPU, sub-1 W)",
    ),
    ComputePlatform(
        name="pulp-gap8",
        mass_g=5.0,
        tdp_w=0.064,
        peak_gflops=22.65,
        mem_bandwidth_gbs=0.5,
        needs_heatsink=False,
        idle_power_w=0.01,
        description="PULP GAP8 (PULP-DroNet engine, 64 mW)",
    ),
    ComputePlatform(
        name="navion",
        mass_g=5.0,
        tdp_w=0.002,
        peak_gflops=200.0,
        mem_bandwidth_gbs=0.1,
        needs_heatsink=False,
        idle_power_w=0.001,
        description=(
            "Navion VIO accelerator (2 mW ASIC + camera/IMU board); "
            "accelerates only the SLAM stage of an SPA pipeline"
        ),
    ),
    ComputePlatform(
        name="cortex-m4",
        mass_g=2.0,
        tdp_w=0.1,
        peak_gflops=0.1,
        mem_bandwidth_gbs=0.05,
        needs_heatsink=False,
        idle_power_w=0.01,
        description="ARM Cortex-M4 microcontroller (nano-UAV class)",
    ),
)

#: Name -> platform registry.
PLATFORMS: Dict[str, ComputePlatform] = {p.name: p for p in _ALL}


def get_platform(name: str) -> ComputePlatform:
    """Look up a platform by name, raising a helpful error if absent."""
    try:
        return PLATFORMS[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORMS))
        raise UnknownComponentError(
            f"unknown compute platform {name!r}; known: {known}"
        ) from None
