"""DVFS: trading compute throughput for TDP (Sec. VI-A/VI-D's tip).

The paper repeatedly recommends spending an over-provisioned
computer's excess throughput on a lower TDP ("e.g., at a lower clock
frequency"), shrinking the heatsink and raising the roofline.  This
module makes that trade quantitative:

* a frequency scale ``s`` in (0, 1] multiplies throughput linearly;
* power follows ``P(s) = TDP * (static + (1 - static) * s^exponent)``
  with a cubic dynamic term (voltage tracks frequency) over a static
  leakage floor;
* :func:`balance_to_knee` solves the fixed point where the scaled
  throughput meets the knee of the *re-weighted* vehicle — the knee
  itself moves as the heatsink shrinks, so this is a root find, not a
  division.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InfeasibleDesignError
from ..uav.components import ComputePlatform
from ..uav.configuration import UAVConfiguration
from ..units import require_fraction, require_in_range, require_positive


@dataclass(frozen=True)
class DvfsModel:
    """Frequency/power scaling law for an onboard computer."""

    exponent: float = 3.0
    static_fraction: float = 0.2
    min_scale: float = 0.2

    def __post_init__(self) -> None:
        require_positive("exponent", self.exponent)
        require_in_range("static_fraction", self.static_fraction, 0.0, 0.95)
        require_fraction("min_scale", self.min_scale)

    def power_fraction(self, scale: float) -> float:
        """P(s) / P(1) for a frequency scale ``s``."""
        self._check_scale(scale)
        dynamic = 1.0 - self.static_fraction
        return self.static_fraction + dynamic * scale**self.exponent

    def throughput_fraction(self, scale: float) -> float:
        """Throughput scales linearly with frequency."""
        self._check_scale(scale)
        return scale

    def scaled_platform(
        self, platform: ComputePlatform, scale: float
    ) -> ComputePlatform:
        """The platform re-binned at frequency scale ``scale``."""
        self._check_scale(scale)
        return platform.with_tdp(
            platform.tdp_w * self.power_fraction(scale),
            name=f"{platform.name}@{scale:.2f}x",
        )

    def _check_scale(self, scale: float) -> None:
        if not self.min_scale <= scale <= 1.0:
            raise InfeasibleDesignError(
                f"frequency scale {scale:.3f} outside "
                f"[{self.min_scale}, 1.0]"
            )


@dataclass(frozen=True)
class BalancedDesign:
    """Result of scaling an over-provisioned computer down to the knee."""

    uav: UAVConfiguration
    scale: float
    f_compute_hz: float
    tdp_w: float
    tdp_saved_w: float
    heatsink_saved_g: float
    roof_velocity_before: float
    roof_velocity_after: float

    @property
    def velocity_gain_pct(self) -> float:
        return (
            self.roof_velocity_after / self.roof_velocity_before - 1.0
        ) * 100.0


def balance_to_knee(
    uav: UAVConfiguration,
    f_compute_hz: float,
    dvfs: DvfsModel | None = None,
    iterations: int = 60,
) -> BalancedDesign:
    """Scale the computer down until its throughput meets the knee.

    Only meaningful for designs whose compute rate exceeds the knee;
    raises :class:`InfeasibleDesignError` otherwise.  The solution is a
    fixed point because shedding heatsink mass raises ``a_max`` and
    with it the knee throughput.
    """
    require_positive("f_compute_hz", f_compute_hz)
    dvfs = dvfs or DvfsModel()
    baseline = uav.f1(f_compute_hz)
    if f_compute_hz <= baseline.knee.throughput_hz:
        raise InfeasibleDesignError(
            f"compute at {f_compute_hz:.1f} Hz is not above the "
            f"{baseline.knee.throughput_hz:.1f} Hz knee; nothing to trade"
        )

    def gap(scale: float) -> float:
        """Scaled throughput minus the re-weighted vehicle's knee."""
        candidate = uav.with_compute(
            dvfs.scaled_platform(uav.compute, scale), name=uav.name
        )
        scaled_f = f_compute_hz * dvfs.throughput_fraction(scale)
        return scaled_f - candidate.f1(scaled_f).knee.throughput_hz

    lo, hi = dvfs.min_scale, 1.0
    if gap(lo) > 0.0:
        # Even the slowest bin stays above the knee: take it.
        best = lo
    else:
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            if gap(mid) > 0.0:
                hi = mid
            else:
                lo = mid
        best = hi

    scaled_platform = dvfs.scaled_platform(uav.compute, best)
    balanced_uav = uav.with_compute(scaled_platform, name=uav.name)
    scaled_f = f_compute_hz * dvfs.throughput_fraction(best)
    after = balanced_uav.f1(scaled_f)
    return BalancedDesign(
        uav=balanced_uav,
        scale=best,
        f_compute_hz=scaled_f,
        tdp_w=scaled_platform.tdp_w,
        tdp_saved_w=uav.compute.tdp_w - scaled_platform.tdp_w,
        heatsink_saved_g=(
            uav.compute.heatsink_mass_g - scaled_platform.heatsink_mass_g
        )
        * uav.compute_redundancy,
        roof_velocity_before=baseline.roof_velocity,
        roof_velocity_after=after.roof_velocity,
    )
