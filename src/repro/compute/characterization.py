"""Measured (algorithm, platform) throughput characterization table.

Every number the paper publishes is recorded here with its source
section; pairs the paper does not report fall back to the
classic-roofline estimator (:mod:`repro.compute.latency_estimator`).
Rates are end-to-end inference/decision throughputs in Hz.

Paper sources:

* DroNet on Intel NCS 150 Hz / AGX 230 Hz — Sec. VI-A.
* DroNet on TX2 178 Hz, TrailNet on TX2 55 Hz, SPA (MAVBench package
  delivery) on TX2 1.1 Hz — Sec. VI-B.
* DroNet on Ras-Pi 13 Hz, TrailNet 0.391 Hz, CAD2RL 0.0652 Hz —
  implied by Sec. VI-D's "3.3x / 110x / 660x below the 43 Hz knee".
* PULP-DroNet 6 Hz @ 64 mW — Sec. VII.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigurationError, UnknownComponentError
from ..uav.components import ComputePlatform
from .latency_estimator import estimate_throughput_hz
from .platforms import PLATFORMS

#: (algorithm name, platform name) -> measured throughput, Hz.
MEASURED_THROUGHPUT_HZ: Dict[Tuple[str, str], float] = {
    ("dronet", "intel-ncs"): 150.0,
    ("dronet", "jetson-agx-30w"): 230.0,
    ("dronet", "jetson-agx-15w"): 230.0,
    ("dronet", "jetson-tx2"): 178.0,
    ("dronet", "raspi4"): 13.0,
    ("dronet", "pulp-gap8"): 6.0,
    ("trailnet", "jetson-tx2"): 55.0,
    ("trailnet", "raspi4"): 0.391,
    ("cad2rl", "jetson-tx2"): 24.0,
    ("cad2rl", "raspi4"): 0.0652,
    ("vgg16", "jetson-tx2"): 10.0,
    ("spa-package-delivery", "jetson-tx2"): 1.1,
}


def has_measurement(algorithm: str, platform: str) -> bool:
    """Whether the paper published a throughput for this pair."""
    return (algorithm, platform) in MEASURED_THROUGHPUT_HZ


def measured_pairs() -> List[Tuple[str, str]]:
    """All (algorithm, platform) pairs with published measurements."""
    return sorted(MEASURED_THROUGHPUT_HZ)


def compute_throughput_hz(
    algorithm: str,
    platform: str,
    workload_gflops: float | None = None,
    workload_gbytes: float | None = None,
) -> float:
    """Throughput of ``algorithm`` on ``platform`` in Hz.

    Prefers the paper's measured number; otherwise estimates from the
    workload's FLOPs/bytes via the classic roofline (both must then be
    provided).  Raises :class:`UnknownComponentError` for an unknown
    platform, and :class:`~repro.errors.ConfigurationError` when no
    measurement exists and no workload description was given.
    """
    key = (algorithm, platform)
    if key in MEASURED_THROUGHPUT_HZ:
        return MEASURED_THROUGHPUT_HZ[key]
    if platform not in PLATFORMS:
        known = ", ".join(sorted(PLATFORMS))
        raise UnknownComponentError(
            f"unknown compute platform {platform!r}; known: {known}"
        )
    if workload_gflops is None or workload_gbytes is None:
        raise ConfigurationError(
            f"no published measurement for ({algorithm!r}, {platform!r}) "
            "and no 'workload_gflops'/'workload_gbytes' supplied for "
            "estimation"
        )
    spec: ComputePlatform = PLATFORMS[platform]
    return estimate_throughput_hz(
        workload_gflops, workload_gbytes, spec
    ).throughput_hz
