"""Classic-roofline-based throughput estimation for unmeasured pairs.

Given a workload's per-inference FLOPs and memory traffic and a
platform's performance envelope, estimate the decision throughput.
Small-batch, framework-encumbered robot inference typically attains a
modest fraction of a platform's peak; ``DEFAULT_EFFICIENCY`` captures
that derating and per-platform overrides are calibrated against the
paper's published measurements (checked by the test suite to within a
factor of ~3, which is the fidelity an early-phase model needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..uav.components import ComputePlatform
from ..units import require_positive
from .roofline_classic import ClassicRoofline

#: Fraction of peak typically attainable by small-batch CNN inference.
DEFAULT_EFFICIENCY = 0.25

#: Per-platform efficiency overrides (fraction of roofline attainable).
PLATFORM_EFFICIENCY: Dict[str, float] = {
    "raspi4": 0.30,
    "upboard": 0.30,
    "jetson-tx2": 0.15,
    "jetson-agx-30w": 0.04,  # tiny nets cannot saturate AGX
    "jetson-agx-15w": 0.04,
    "intel-ncs": 0.60,
    "pulp-gap8": 0.30,
    "cortex-m4": 0.50,
    "navion": 1.0,  # fixed-function ASIC runs at its rated rate
}

#: Fixed per-inference overhead (s): framework dispatch, USB/DMA, etc.
PLATFORM_OVERHEAD_S: Dict[str, float] = {
    "intel-ncs": 0.002,
    "jetson-tx2": 0.002,
    "jetson-agx-30w": 0.002,
    "jetson-agx-15w": 0.002,
}
DEFAULT_OVERHEAD_S = 0.001


@dataclass(frozen=True)
class EstimatedThroughput:
    """An estimate plus the intermediate quantities that produced it."""

    throughput_hz: float
    kernel_time_s: float
    overhead_s: float
    efficiency: float
    oi_flops_per_byte: float
    compute_bound: bool


def estimate_throughput_hz(
    workload_gflops: float,
    workload_gbytes: float,
    platform: ComputePlatform,
    efficiency: float | None = None,
    overhead_s: float | None = None,
) -> EstimatedThroughput:
    """Estimate decision throughput of a workload on a platform.

    ``workload_gflops`` / ``workload_gbytes`` describe one inference
    (GFLOP and GB moved).  Efficiency and overhead default to the
    calibrated per-platform values.
    """
    require_positive("workload_gflops", workload_gflops)
    require_positive("workload_gbytes", workload_gbytes)
    roofline = ClassicRoofline(
        peak_gflops=platform.peak_gflops,
        mem_bandwidth_gbs=platform.mem_bandwidth_gbs,
    )
    eff = (
        efficiency
        if efficiency is not None
        else PLATFORM_EFFICIENCY.get(platform.name, DEFAULT_EFFICIENCY)
    )
    ovh = (
        overhead_s
        if overhead_s is not None
        else PLATFORM_OVERHEAD_S.get(platform.name, DEFAULT_OVERHEAD_S)
    )
    kernel = roofline.kernel_time_s(
        workload_gflops, workload_gbytes, efficiency=eff
    )
    oi = workload_gflops / workload_gbytes
    total = kernel + ovh
    return EstimatedThroughput(
        throughput_hz=1.0 / total,
        kernel_time_s=kernel,
        overhead_s=ovh,
        efficiency=eff,
        oi_flops_per_byte=oi,
        compute_bound=roofline.is_compute_bound(oi),
    )
