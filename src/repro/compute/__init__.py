"""Onboard compute substrate: platform database, measured throughput
characterization, classic roofline model and latency estimation."""

from .characterization import (
    MEASURED_THROUGHPUT_HZ,
    compute_throughput_hz,
    has_measurement,
    measured_pairs,
)
from .dvfs import BalancedDesign, DvfsModel, balance_to_knee
from .latency_estimator import (
    EstimatedThroughput,
    estimate_throughput_hz,
)
from .platforms import PLATFORMS, get_platform
from .roofline_classic import ClassicRoofline

__all__ = [
    "MEASURED_THROUGHPUT_HZ",
    "compute_throughput_hz",
    "has_measurement",
    "measured_pairs",
    "BalancedDesign",
    "DvfsModel",
    "balance_to_knee",
    "EstimatedThroughput",
    "estimate_throughput_hz",
    "PLATFORMS",
    "get_platform",
    "ClassicRoofline",
]
