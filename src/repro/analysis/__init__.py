"""Repo-specific static analysis (``reprolint``).

The test suite pins down what the code *computes*; this package pins
down the contracts the tests cannot reach — conventions that hold by
discipline today and must keep holding as the codebase grows:

* the :mod:`repro.units` suffix discipline (``_g``/``_w``/``_hz``/...)
  that keeps the F-1 roofline chain dimensionally consistent (RPL001),
* the :mod:`repro.errors` taxonomy and its field-naming messages
  (RPL002),
* version-pinned wire formats in :mod:`repro.io.serialization`
  (RPL003),
* kernel purity in the :mod:`repro.batch` hot paths (RPL004),
* the opt-in ``tracer is not None`` observability idiom (RPL005),
* picklability of everything submitted to process pools (RPL006),

and, via the whole-program :class:`~repro.analysis.graph.ProjectGraph`
(module/import graph, symbol tables, a conservative call graph):

* fork-safety of module-level mutable state read by process-pool
  workers (RPL007),
* unit-suffix flow through function parameters and returns across
  module boundaries (RPL008),
* export/reachability drift — ``__all__`` lists, ``from``-imports,
  dead private functions and documented symbols (RPL009).

Every rule is AST-based (no imports of the analyzed code), registered
in :data:`repro.analysis.core.REGISTRY`, suppressible per line with
``# reprolint: disable=RPL00x`` comments, and exercised by fixture
files under ``tests/data/reprolint_fixtures/``.  The ``reprolint``
console script (see :mod:`repro.analysis.cli`) runs the suite over a
tree — incrementally, via a content-hash cache with graph-aware
invalidation (:mod:`repro.analysis.cache`) — and is wired into CI next
to ruff, with a committed baseline (:mod:`repro.analysis.baseline`)
and SARIF export (:mod:`repro.analysis.sarif`).
"""

from __future__ import annotations

from .core import (
    AnalysisStats,
    Analyzer,
    AnalyzerConfig,
    Finding,
    ModuleContext,
    ProjectRule,
    REGISTRY,
    Rule,
    all_rules,
)
from .graph import ModuleSummary, ProjectGraph, extract_summary
from .cache import AnalysisCache
from . import rules as _rules  # noqa: F401  (imports register the rules)
from . import rules_interproc as _rules_interproc  # noqa: F401  (ditto)

__all__ = [
    "AnalysisCache",
    "AnalysisStats",
    "Analyzer",
    "AnalyzerConfig",
    "Finding",
    "ModuleContext",
    "ModuleSummary",
    "ProjectGraph",
    "ProjectRule",
    "REGISTRY",
    "Rule",
    "all_rules",
    "extract_summary",
]
