"""Repo-specific static analysis (``reprolint``).

The test suite pins down what the code *computes*; this package pins
down the contracts the tests cannot reach — conventions that hold by
discipline today and must keep holding as the codebase grows:

* the :mod:`repro.units` suffix discipline (``_g``/``_w``/``_hz``/...)
  that keeps the F-1 roofline chain dimensionally consistent (RPL001),
* the :mod:`repro.errors` taxonomy and its field-naming messages
  (RPL002),
* version-pinned wire formats in :mod:`repro.io.serialization`
  (RPL003),
* kernel purity in the :mod:`repro.batch` hot paths (RPL004),
* the opt-in ``tracer is not None`` observability idiom (RPL005),
* picklability of everything submitted to process pools (RPL006).

Every rule is AST-based (no imports of the analyzed code), registered
in :data:`repro.analysis.core.REGISTRY`, suppressible per line with
``# reprolint: disable=RPL00x`` comments, and exercised by fixture
files under ``tests/data/reprolint_fixtures/``.  The ``reprolint``
console script (see :mod:`repro.analysis.cli`) runs the suite over a
tree and is wired into CI next to ruff.
"""

from __future__ import annotations

from .core import (
    Analyzer,
    AnalyzerConfig,
    Finding,
    ModuleContext,
    REGISTRY,
    Rule,
    all_rules,
)
from . import rules as _rules  # noqa: F401  (imports register the rules)

__all__ = [
    "Analyzer",
    "AnalyzerConfig",
    "Finding",
    "ModuleContext",
    "REGISTRY",
    "Rule",
    "all_rules",
]
