"""The RPL rule set: repo contracts the test suite cannot reach.

Each rule documents the convention it enforces and the PR that
established it; ``docs/reprolint-rules.md`` is the user-facing catalog.
All rules are purely syntactic (AST + tokens) — the analyzed code is
never imported.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import Finding, ModuleContext, Rule, rule
from . import wire

# ---------------------------------------------------------------------------
# RPL001 — units-suffix dimensional consistency
# ---------------------------------------------------------------------------
#: Suffix token -> dimension group.  Derived from the conventions table
#: in :mod:`repro.units` (its docstring and converters are the ground
#: truth; ``tests/test_analysis.py`` pins this table against the
#: ``*_to_*`` converter pairs there).  ``_g`` covers both grams and
#: gram-force — the repo-wide convention treats rotor "pull" in
#: gram-force as directly comparable to mass in grams (thrust-to-weight
#: arithmetic), so they are one group on purpose.
UNIT_DIMENSIONS: Dict[str, str] = {
    "g": "mass",
    "kg": "mass",
    "w": "power",
    "hz": "rate",
    "s": "time",
    "ms": "time",
    "us": "time",
    "m": "length",
    "mm": "length",
    "km": "length",
    "m2": "area",
    "m3": "volume",
    "wh": "energy",
    "j": "energy",
    "deg": "angle",
    "rad": "angle",
    "v": "voltage",
    "mah": "charge",
}

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def unit_dimension(name: str) -> Optional[str]:
    """The dimension group a ``*_suffix`` name declares, if any."""
    if "_" not in name:
        return None
    return UNIT_DIMENSIONS.get(name.rsplit("_", 1)[1])


def unit_suffix(name: str) -> str:
    """The unit-suffix token a name carries ("" when it has none)."""
    if "_" not in name:
        return ""
    token = name.rsplit("_", 1)[1]
    return token if token in UNIT_DIMENSIONS else ""


def _dimensioned_name(node: ast.AST) -> Optional[Tuple[str, str]]:
    """(name, dimension) when ``node`` is a suffixed Name/Attribute."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    dimension = unit_dimension(name)
    return None if dimension is None else (name, dimension)


@rule
class UnitsSuffixRule(Rule):
    """Additive arithmetic must not mix unit-suffix dimension groups."""

    id = "RPL001"
    name = "units-suffix-consistency"
    rationale = (
        "The F-1 chain mixes grams, gram-force, watts and hertz as "
        "plain floats; the _g/_w/_hz/_s/_m suffix discipline from "
        "repro.units is the only dimensional typing the code has.  "
        "Adding, subtracting, comparing or directly assigning names "
        "from different dimension groups is a unit bug: convert "
        "explicitly through repro.units first."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(
                    module, node, node.left, node.right, "arithmetic"
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(
                    module, node, node.target, node.value, "arithmetic"
                )
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(node.ops[0], _COMPARE_OPS):
                    yield from self._check_pair(
                        module,
                        node,
                        node.left,
                        node.comparators[0],
                        "comparison",
                    )
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                yield from self._check_pair(
                    module, node, node.targets[0], node.value, "assignment"
                )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield from self._check_pair(
                    module, node, node.target, node.value, "assignment"
                )

    def _check_pair(
        self,
        module: ModuleContext,
        node: ast.AST,
        left: ast.AST,
        right: ast.AST,
        kind: str,
    ) -> Iterator[Finding]:
        left_info = _dimensioned_name(left)
        right_info = _dimensioned_name(right)
        if left_info is None or right_info is None:
            return
        (left_name, left_dim) = left_info
        (right_name, right_dim) = right_info
        if left_dim == right_dim:
            return
        yield from self.finding(
            module,
            node,
            f"{kind} mixes {left_dim} ({left_name!r}) with "
            f"{right_dim} ({right_name!r}); convert through repro.units "
            f"before combining",
        )


# ---------------------------------------------------------------------------
# RPL002 — error taxonomy
# ---------------------------------------------------------------------------
_BANNED_EXCEPTIONS = ("ValueError", "TypeError", "RuntimeError", "Exception")


@rule
class ErrorTaxonomyRule(Rule):
    """No bare stdlib exceptions raised from library code."""

    id = "RPL002"
    name = "error-taxonomy"
    rationale = (
        "PR 3 established that every library-raised error derives from "
        "repro.errors.ReproError and names the offending field in its "
        "message, so callers can catch one base type at API boundaries "
        "and error text is actionable.  Bare ValueError/TypeError/"
        "RuntimeError breaks both halves of that contract."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in _BANNED_EXCEPTIONS:
                yield from self.finding(
                    module,
                    node,
                    f"raises bare {exc.id}; use a repro.errors type "
                    f"(e.g. ConfigurationError) with a message naming "
                    f"the offending field",
                )


# ---------------------------------------------------------------------------
# RPL003 — wire-format guard
# ---------------------------------------------------------------------------
@rule
class WireFormatGuardRule(Rule):
    """Wire dict builders must not drift from the committed snapshot."""

    id = "RPL003"
    name = "wire-format-guard"
    rationale = (
        "PR 4/5 version-pinned the checkpoint manifest, shard record, "
        "trace event and telemetry wire formats (MANIFEST_VERSION, "
        "TRACE_EVENT_VERSION, TELEMETRY_VERSION).  Changing a builder's "
        "structure without bumping its version silently breaks resume "
        "and replay across builds; the committed fingerprint snapshot "
        "(tests/data/wire_fingerprints.json) makes the bump mandatory."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.matches(module.config.wire_modules):
            return
        snapshot_path = module.config.wire_snapshot
        if snapshot_path is None:
            snapshot_path = wire.default_snapshot_path(module.path)
        if snapshot_path is None:
            # No committed snapshot to guard against (e.g. a vendored
            # copy of the module outside the repo) — nothing to check.
            return
        snapshot = wire.load_snapshot(snapshot_path)
        builders = snapshot["builders"]
        specs = {spec.name: spec for spec in wire.BUILDER_SPECS}
        for name in sorted(builders):
            entry = builders[name]
            spec = specs.get(name) or wire.WireBuilder(
                name, entry.get("version_const", "")
            )
            fingerprint = wire.function_fingerprint(module.tree, spec)
            if fingerprint is None:
                yield from self.finding(
                    module,
                    module.tree,
                    f"wire builder {name!r} is in the snapshot but "
                    f"missing from this module; if it was removed on "
                    f"purpose, bump {entry['version_const']} and "
                    f"regenerate with 'reprolint --update-wire-snapshot'",
                )
                continue
            if fingerprint == entry["ast_sha256"]:
                continue
            node = wire._find_definition(module.tree, name) or module.tree
            version = wire.module_version_value(
                module.tree, entry["version_const"]
            )
            if version == entry["version"]:
                yield from self.finding(
                    module,
                    node,
                    f"structure of wire builder {name!r} changed but "
                    f"{entry['version_const']} is still "
                    f"{entry['version']}; bump the version and "
                    f"regenerate with 'reprolint --update-wire-snapshot'",
                )
            else:
                yield from self.finding(
                    module,
                    node,
                    f"wire builder {name!r} changed and "
                    f"{entry['version_const']} was bumped to {version}; "
                    f"commit a fresh snapshot via "
                    f"'reprolint --update-wire-snapshot'",
                )


# ---------------------------------------------------------------------------
# RPL004 — kernel purity
# ---------------------------------------------------------------------------
_MUTATING_METHODS = ("sort", "fill", "put", "resize", "itemset", "setfield")


@rule
class KernelPurityRule(Rule):
    """No per-row loops or input mutation in batch hot paths."""

    id = "RPL004"
    name = "kernel-purity"
    rationale = (
        "PR 1/2 made repro.batch fast by keeping kernels and assembly "
        "columnar: every operation is a whole-column NumPy expression "
        "over unmutated inputs.  A per-row Python for/while loop or an "
        "in-place write to a caller's array in these modules silently "
        "reintroduces the 150-678x slowdown the batch engine removed "
        "(or corrupts shared arrays under the parallel executor)."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.matches(module.config.purity_modules):
            return
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            params = self._parameter_names(node)
            for child in ast.walk(node):
                if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                    yield from self.finding(
                        module,
                        child,
                        "statement-level loop in a batch hot path; "
                        "vectorize over columns (comprehensions "
                        "marshalling component objects are exempt)",
                    )
                elif isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        name = self._subscript_base(target)
                        if name in params:
                            yield from self.finding(
                                module,
                                child,
                                f"writes into parameter {name!r}; "
                                f"kernels must not mutate caller "
                                f"arrays — operate on fresh columns",
                            )
                elif isinstance(child, ast.Call):
                    func = child.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATING_METHODS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in params
                    ):
                        yield from self.finding(
                            module,
                            child,
                            f"in-place {func.attr}() on parameter "
                            f"{func.value.id!r}; kernels must not "
                            f"mutate caller arrays",
                        )

    @staticmethod
    def _parameter_names(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> Set[str]:
        args = node.args
        names = [
            arg.arg
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            )
        ]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return set(names) - {"self", "cls"}

    @staticmethod
    def _subscript_base(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            return target.value.id
        return None


# ---------------------------------------------------------------------------
# RPL005 — tracer opt-in discipline
# ---------------------------------------------------------------------------
def _is_tracer_none_test(node: ast.AST, negate: bool = False) -> bool:
    """Whether ``node`` contains ``tracer is [not] None`` (any clause).

    ``negate=False`` looks for ``is not None`` (truth implies tracer is
    live); ``negate=True`` looks for ``is None``.  Compound tests
    (``tracer is not None and in_process``) count: the whole test being
    true still implies the comparison held.
    """
    wanted = ast.Is if negate else ast.IsNot
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Compare)
            and isinstance(child.left, ast.Name)
            and child.left.id == "tracer"
            and len(child.ops) == 1
            and isinstance(child.ops[0], wanted)
            and isinstance(child.comparators[0], ast.Constant)
            and child.comparators[0].value is None
        ):
            # An ``or`` ancestor would break the implication, but the
            # instrumented modules never guard with ``or``; keep the
            # check simple and syntactic.
            return True
    return False


def _is_bare_tracer_none(node: ast.AST, negate: bool = False) -> bool:
    """Whether ``node`` *is* exactly ``tracer is [not] None``.

    Needed where the guard implication runs through the test being
    *false* (else-branches, fall-through after an early return): a
    compound ``tracer is None and x`` being false does not imply the
    tracer is live, so only the bare comparison counts there.
    """
    return (
        isinstance(node, ast.Compare)
        and isinstance(node.left, ast.Name)
        and node.left.id == "tracer"
        and len(node.ops) == 1
        and isinstance(node.ops[0], ast.Is if negate else ast.IsNot)
        and isinstance(node.comparators[0], ast.Constant)
        and node.comparators[0].value is None
    )


def _terminates(stmts: Sequence[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


@rule
class TracerOptInRule(Rule):
    """Optional tracers are only touched behind ``is not None``."""

    id = "RPL005"
    name = "tracer-opt-in"
    rationale = (
        "PR 5's observability contract: instrumentation is opt-in and "
        "an untraced run pays exactly one 'is None' check per phase.  "
        "Calling a tracer method unconditionally on a hot path either "
        "crashes untraced runs (tracer=None) or forces tracing on, "
        "breaking the <2%-overhead guarantee."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not self._tracer_is_optional(node):
                continue
            yield from self._check_block(module, node.body, guarded=False)

    @staticmethod
    def _tracer_is_optional(
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> bool:
        """Whether this function binds an *optional* ``tracer``.

        A ``tracer`` parameter is optional when its annotation names
        ``Optional``/``None`` or it defaults to ``None``; an
        unannotated ``tracer`` parameter is treated as optional (the
        repo-wide convention is ``tracer=None``).  A local ``tracer``
        assigned from ``something.get(...)`` (the worker-task idiom)
        is optional too.
        """
        args = node.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for arg in all_args:
            if arg.arg != "tracer":
                continue
            if arg.annotation is None:
                return True
            rendered = ast.dump(arg.annotation)
            return "Optional" in rendered or "None" in rendered
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "tracer"
                    for t in child.targets
                )
                and isinstance(child.value, ast.Call)
                and isinstance(child.value.func, ast.Attribute)
                and child.value.func.attr == "get"
            ):
                return True
        return False

    def _check_block(
        self,
        module: ModuleContext,
        stmts: Sequence[ast.stmt],
        guarded: bool,
    ) -> Iterator[Finding]:
        """Walk one statement list tracking whether ``tracer`` is live.

        ``guarded`` flips to True after an early ``if tracer is None:
        return`` or a rebinding ``tracer = Tracer()``; an ``if tracer
        is not None`` statement guards its body (and, for ``is None``
        tests, its orelse).
        """
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                if _is_tracer_none_test(stmt.test, negate=False):
                    yield from self._check_block(
                        module, stmt.body, guarded=True
                    )
                    yield from self._check_block(
                        module, stmt.orelse, guarded=guarded
                    )
                    continue
                if _is_tracer_none_test(stmt.test, negate=True):
                    bare = _is_bare_tracer_none(stmt.test, negate=True)
                    yield from self._check_block(
                        module, stmt.body, guarded=False
                    )
                    yield from self._check_block(
                        module, stmt.orelse, guarded=bare or guarded
                    )
                    if bare and _terminates(stmt.body):
                        guarded = True
                    continue
                yield from self._check_expressions(
                    module, [stmt.test], guarded
                )
                yield from self._check_block(module, stmt.body, guarded)
                yield from self._check_block(module, stmt.orelse, guarded)
                continue
            if isinstance(stmt, ast.Assign) and self._rebinds_tracer(stmt):
                yield from self._check_expressions(
                    module, [stmt.value], guarded
                )
                guarded = True
                continue
            # Nested blocks keep the current guard state; expressions
            # anywhere in the statement are checked against it.
            nested = [
                value
                for name in ("body", "orelse", "finalbody")
                for value in getattr(stmt, name, [])
            ]
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    nested.extend(handler.body)
            if nested:
                yield from self._check_expressions(
                    module, self._own_expressions(stmt), guarded
                )
                yield from self._check_block(module, nested, guarded)
            else:
                yield from self._check_expressions(module, [stmt], guarded)

    @staticmethod
    def _rebinds_tracer(stmt: ast.Assign) -> bool:
        if not any(
            isinstance(t, ast.Name) and t.id == "tracer"
            for t in stmt.targets
        ):
            return False
        value = stmt.value
        return isinstance(value, ast.Call) and not (
            isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
        )

    @staticmethod
    def _own_expressions(stmt: ast.stmt) -> List[ast.AST]:
        """A compound statement's non-block children (test, items, ...)."""
        nested_fields = {"body", "orelse", "finalbody", "handlers"}
        own: List[ast.AST] = []
        for name, value in ast.iter_fields(stmt):
            if name in nested_fields:
                continue
            if isinstance(value, ast.AST):
                own.append(value)
            elif isinstance(value, list):
                own.extend(v for v in value if isinstance(v, ast.AST))
        return own

    def _check_expressions(
        self,
        module: ModuleContext,
        roots: Sequence[ast.AST],
        guarded: bool,
    ) -> Iterator[Finding]:
        if guarded:
            return
        for root in roots:
            yield from self._walk_expression(module, root, guarded=False)

    def _walk_expression(
        self, module: ModuleContext, node: ast.AST, guarded: bool
    ) -> Iterator[Finding]:
        if guarded:
            return
        if isinstance(node, ast.IfExp):
            if _is_tracer_none_test(node.test, negate=False):
                # Body only evaluates when the tracer is live.
                yield from self._walk_expression(
                    module, node.orelse, guarded=False
                )
                return
            if _is_bare_tracer_none(node.test, negate=True):
                # Orelse only evaluates when the tracer is live.
                yield from self._walk_expression(
                    module, node.body, guarded=False
                )
                return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            # ``tracer is not None and tracer.x()``: values after the
            # comparison only evaluate when it held.
            for value in node.values:
                if _is_tracer_none_test(value, negate=False):
                    return
                yield from self._walk_expression(module, value, False)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "tracer"
        ):
            yield from self.finding(
                module,
                node,
                f"calls tracer.{node.func.attr}() without an enclosing "
                f"'tracer is not None' guard; tracing is opt-in "
                f"(use maybe_span or guard the call)",
            )
        for child in ast.iter_child_nodes(node):
            yield from self._walk_expression(module, child, guarded)


# ---------------------------------------------------------------------------
# RPL006 — process-pool picklability
# ---------------------------------------------------------------------------
_SUBMIT_METHODS = ("submit", "map", "map_shards")


@rule
class PicklabilityRule(Rule):
    """Nothing unpicklable submitted to executors."""

    id = "RPL006"
    name = "pool-picklability"
    rationale = (
        "PR 4's ParallelExecutor ships work to process pools, which "
        "pickle every callable and argument.  Lambdas and nested "
        "(closure) functions are unpicklable — they fail only at "
        "runtime, only on the process backend, which the thread/serial "
        "test matrix can miss.  Submit module-level functions and "
        "plain-data tasks."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            nested = {
                child.name
                for stmt in node.body
                for child in ast.walk(stmt)
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            }
            for call in ast.walk(node):
                if not (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _SUBMIT_METHODS
                ):
                    continue
                for arg in (*call.args, *(kw.value for kw in call.keywords)):
                    if isinstance(arg, ast.Lambda):
                        yield from self.finding(
                            module,
                            arg,
                            f"lambda passed to .{call.func.attr}(); "
                            f"lambdas cannot pickle across the process "
                            f"pool — use a module-level function",
                        )
                    elif (
                        isinstance(arg, ast.Name) and arg.id in nested
                    ):
                        yield from self.finding(
                            module,
                            arg,
                            f"nested function {arg.id!r} passed to "
                            f".{call.func.attr}(); closures cannot "
                            f"pickle across the process pool — move it "
                            f"to module level",
                        )
