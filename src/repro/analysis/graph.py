"""The whole-program view behind reprolint's interprocedural rules.

:class:`ProjectGraph` holds one :class:`ModuleSummary` per analyzed
file: the module's imports, top-level symbols, function signatures,
call sites, references to module-level state, mutations of that state,
worker-pool entry points and the suppression table.  Summaries are
plain data — JSON-round-trippable so the incremental cache
(:mod:`repro.analysis.cache`) can persist them and rebuild the graph
without re-parsing unchanged files — and the analyzed code is never
imported.

On top of the summaries the graph resolves:

* **imports** — absolute and relative, through package ``__init__``
  re-exports, tolerant of cycles;
* **symbols** — ``resolve_name``/``resolve_dotted`` chase a name
  through ``from X import y as z`` chains to its defining module;
* **calls** — a conservative call graph over top-level functions
  (method calls and unresolvable callees are skipped, never guessed);
* **reachability** — BFS from worker entry points with parent links,
  so rules can print a witness chain.

Everything here is pure stdlib and purely syntactic.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from .core import AnalyzerConfig, ModuleContext

#: Version of the serialized :class:`ModuleSummary` wire shape; bumping
#: it invalidates every cached summary.
SUMMARY_VERSION = 1

#: Marker comment declaring a module-level mutable global fork-safe on
#: purpose (content-addressed, import-time-populated, ...).  Applies to
#: its own line or, as a standalone comment, to the next code line.
_FORK_SAFE_RE = re.compile(r"#\s*reprolint:\s*fork-safe\b")

#: Method names treated as mutating their receiver (RPL007 evidence).
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "put",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Executor methods whose first positional argument runs in a worker.
SUBMIT_METHODS = frozenset({"submit", "map", "map_shards"})

_MUTABLE_VALUE_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
    ast.Call,
)

#: A (module, top-level function name) pair — the call-graph node id.
FuncKey = Tuple[str, str]


# ---------------------------------------------------------------------------
# Summary data model (all JSON-round-trippable)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ImportRecord:
    """One ``import`` / ``from ... import`` statement."""

    kind: str  # "import" | "from"
    module: str  # raw dotted module text ("" for ``from . import x``)
    level: int  # relative-import level (0 = absolute)
    names: Tuple[Tuple[str, str], ...]  # (imported name, bound-as name)
    lineno: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "module": self.module,
            "level": self.level,
            "names": [list(pair) for pair in self.names],
            "lineno": self.lineno,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ImportRecord":
        return ImportRecord(
            kind=data["kind"],
            module=data["module"],
            level=data["level"],
            names=tuple((n, b) for n, b in data["names"]),
            lineno=data["lineno"],
        )


@dataclass(frozen=True)
class CallArg:
    """One suffix-bearing argument at a call site."""

    position: int  # positional index, -1 for keyword arguments
    keyword: str  # "" for positional arguments
    display: str  # source-ish name, for messages
    suffix: str  # the unit suffix token ("ms", "g", ...)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "position": self.position,
            "keyword": self.keyword,
            "display": self.display,
            "suffix": self.suffix,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "CallArg":
        return CallArg(
            position=data["position"],
            keyword=data["keyword"],
            display=data["display"],
            suffix=data["suffix"],
        )


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    callee: str  # dotted callee text ("fn", "mod.fn", "self.fn")
    lineno: int
    col: int
    n_args: int  # number of positional arguments
    has_star: bool  # *args / **kwargs splat present
    args: Tuple[CallArg, ...]  # suffix-bearing arguments only
    assigned_display: str = ""  # ``x_s = call(...)`` target name
    assigned_suffix: str = ""  # its unit suffix

    def to_dict(self) -> Dict[str, Any]:
        return {
            "callee": self.callee,
            "lineno": self.lineno,
            "col": self.col,
            "n_args": self.n_args,
            "has_star": self.has_star,
            "args": [arg.to_dict() for arg in self.args],
            "assigned_display": self.assigned_display,
            "assigned_suffix": self.assigned_suffix,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "CallSite":
        return CallSite(
            callee=data["callee"],
            lineno=data["lineno"],
            col=data["col"],
            n_args=data["n_args"],
            has_star=data["has_star"],
            args=tuple(CallArg.from_dict(a) for a in data["args"]),
            assigned_display=data["assigned_display"],
            assigned_suffix=data["assigned_suffix"],
        )


@dataclass(frozen=True)
class MutationSite:
    """One write to (potential) module-level state."""

    target: str  # raw name or one-level dotted "mod.NAME"
    lineno: int
    how: str  # "method:<name>" | "subscript" | "rebind" | "delete"
    guards: Tuple[str, ...]  # enclosing ``with`` context expressions
    via_param: str = ""  # parameter name when aliased via a default

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "lineno": self.lineno,
            "how": self.how,
            "guards": list(self.guards),
            "via_param": self.via_param,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "MutationSite":
        return MutationSite(
            target=data["target"],
            lineno=data["lineno"],
            how=data["how"],
            guards=tuple(data["guards"]),
            via_param=data["via_param"],
        )


@dataclass(frozen=True)
class FunctionSummary:
    """One top-level function, method, or the ``<module>`` body."""

    name: str  # "fn", "Cls.fn" (method) or "<module>"
    lineno: int
    is_method: bool
    decorated: bool
    params: Tuple[str, ...]  # posonly + args + kwonly, in order
    n_positional: int  # len(posonly + args)
    has_vararg: bool
    has_kwarg: bool
    default_aliases: Tuple[Tuple[str, str], ...]  # (param, global name)
    calls: Tuple[CallSite, ...]
    refs: Tuple[str, ...]  # non-local names read (incl. "mod.name")
    mutations: Tuple[MutationSite, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "is_method": self.is_method,
            "decorated": self.decorated,
            "params": list(self.params),
            "n_positional": self.n_positional,
            "has_vararg": self.has_vararg,
            "has_kwarg": self.has_kwarg,
            "default_aliases": [list(pair) for pair in self.default_aliases],
            "calls": [call.to_dict() for call in self.calls],
            "refs": list(self.refs),
            "mutations": [m.to_dict() for m in self.mutations],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FunctionSummary":
        return FunctionSummary(
            name=data["name"],
            lineno=data["lineno"],
            is_method=data["is_method"],
            decorated=data["decorated"],
            params=tuple(data["params"]),
            n_positional=data["n_positional"],
            has_vararg=data["has_vararg"],
            has_kwarg=data["has_kwarg"],
            default_aliases=tuple((p, g) for p, g in data["default_aliases"]),
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
            refs=tuple(data["refs"]),
            mutations=tuple(MutationSite.from_dict(m) for m in data["mutations"]),
        )


@dataclass(frozen=True)
class GlobalVar:
    """One module-level assignment that creates (potentially) mutable state."""

    name: str
    lineno: int
    mutable: bool
    fork_safe: bool  # carries a ``# reprolint: fork-safe`` marker
    kind: str  # "list" | "dict" | "set" | "comprehension" | "call"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "mutable": self.mutable,
            "fork_safe": self.fork_safe,
            "kind": self.kind,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "GlobalVar":
        return GlobalVar(
            name=data["name"],
            lineno=data["lineno"],
            mutable=data["mutable"],
            fork_safe=data["fork_safe"],
            kind=data["kind"],
        )


@dataclass(frozen=True)
class WorkerEntry:
    """A callable handed to an executor (submit/map) or as initializer."""

    callee: str  # dotted callee text as written
    kind: str  # "submit" | "initializer"
    method: str  # the pool method ("submit", "map", ...) or call text
    lineno: int
    function: str  # enclosing function name or "<module>"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "callee": self.callee,
            "kind": self.kind,
            "method": self.method,
            "lineno": self.lineno,
            "function": self.function,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "WorkerEntry":
        return WorkerEntry(
            callee=data["callee"],
            kind=data["kind"],
            method=data["method"],
            lineno=data["lineno"],
            function=data["function"],
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the project rules need to know about one module."""

    module: str  # dotted module name ("repro.batch.engine")
    path: str  # posix path as analyzed
    sha256: str  # content hash of the source bytes
    is_package: bool  # file is an ``__init__.py``
    imports: Tuple[ImportRecord, ...]
    symbols: Dict[str, str]  # top-level name -> "function"|"class"|"const"
    symbol_lines: Dict[str, int]
    all_names: Optional[Tuple[str, ...]]  # literal ``__all__`` if present
    all_lineno: int
    functions: Tuple[FunctionSummary, ...]
    module_globals: Tuple[GlobalVar, ...]
    worker_entries: Tuple[WorkerEntry, ...]
    locks: Tuple[str, ...]  # module-level threading.Lock()/RLock() names
    dynamic_exports: bool  # module defines ``__getattr__``
    all_refs: Tuple[str, ...]  # every identifier referenced anywhere
    suppressed_lines: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    file_suppressed: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.path,
            "sha256": self.sha256,
            "is_package": self.is_package,
            "imports": [imp.to_dict() for imp in self.imports],
            "symbols": dict(self.symbols),
            "symbol_lines": dict(self.symbol_lines),
            "all_names": None if self.all_names is None else list(self.all_names),
            "all_lineno": self.all_lineno,
            "functions": [fn.to_dict() for fn in self.functions],
            "module_globals": [g.to_dict() for g in self.module_globals],
            "worker_entries": [w.to_dict() for w in self.worker_entries],
            "locks": list(self.locks),
            "dynamic_exports": self.dynamic_exports,
            "all_refs": list(self.all_refs),
            "suppressed_lines": [
                [line, sorted(rules)]
                for line, rules in sorted(self.suppressed_lines.items())
            ],
            "file_suppressed": sorted(self.file_suppressed),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> Optional["ModuleSummary"]:
        """Rebuild a summary; None when the serialized version is stale."""
        if data.get("version") != SUMMARY_VERSION:
            return None
        all_names = data["all_names"]
        return ModuleSummary(
            module=data["module"],
            path=data["path"],
            sha256=data["sha256"],
            is_package=data["is_package"],
            imports=tuple(ImportRecord.from_dict(i) for i in data["imports"]),
            symbols=dict(data["symbols"]),
            symbol_lines={k: int(v) for k, v in data["symbol_lines"].items()},
            all_names=None if all_names is None else tuple(all_names),
            all_lineno=data["all_lineno"],
            functions=tuple(FunctionSummary.from_dict(f) for f in data["functions"]),
            module_globals=tuple(GlobalVar.from_dict(g) for g in data["module_globals"]),
            worker_entries=tuple(WorkerEntry.from_dict(w) for w in data["worker_entries"]),
            locks=tuple(data["locks"]),
            dynamic_exports=data["dynamic_exports"],
            all_refs=tuple(data["all_refs"]),
            suppressed_lines={
                int(line): tuple(rules) for line, rules in data["suppressed_lines"]
            },
            file_suppressed=tuple(data["file_suppressed"]),
        )


# ---------------------------------------------------------------------------
# Module naming
# ---------------------------------------------------------------------------
def module_name_for(path: Path) -> str:
    """The dotted module name a file would import as.

    Walks up through directories containing ``__init__.py`` (the
    package chain); a standalone file is just its stem.  ``<string>``
    paths (from :meth:`Analyzer.check_source`) become ``<string>``.
    """
    stem = path.stem
    if not stem:
        return str(path)
    parts: List[str] = [] if stem == "__init__" else [stem]
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:  # filesystem root
            break
        current = parent
    return ".".join(parts) if parts else stem


# ---------------------------------------------------------------------------
# Summary extraction
# ---------------------------------------------------------------------------
class _FuncAcc:
    """Mutable accumulator for one function (or the module body)."""

    def __init__(
        self,
        name: str,
        lineno: int,
        is_method: bool = False,
        decorated: bool = False,
        params: Sequence[str] = (),
        n_positional: int = 0,
        has_vararg: bool = False,
        has_kwarg: bool = False,
        default_aliases: Sequence[Tuple[str, str]] = (),
    ) -> None:
        self.name = name
        self.lineno = lineno
        self.is_method = is_method
        self.decorated = decorated
        self.params = tuple(params)
        self.n_positional = n_positional
        self.has_vararg = has_vararg
        self.has_kwarg = has_kwarg
        self.default_aliases = dict(default_aliases)
        self.calls: List[Dict[str, Any]] = []
        self.loads: Set[str] = set()
        self.locals: Set[str] = set()
        self.global_decls: Set[str] = set()
        self.mutations: List[MutationSite] = []

    def finalize(self) -> FunctionSummary:
        bound = (self.locals | set(self.params)) - self.global_decls
        refs = {name for name in self.loads if name.split(".", 1)[0] not in bound}
        refs.update(self.default_aliases.values())
        mutations = tuple(
            m
            for m in self.mutations
            if m.target.split(".", 1)[0] not in bound or m.via_param
        )
        return FunctionSummary(
            name=self.name,
            lineno=self.lineno,
            is_method=self.is_method,
            decorated=self.decorated,
            params=self.params,
            n_positional=self.n_positional,
            has_vararg=self.has_vararg,
            has_kwarg=self.has_kwarg,
            default_aliases=tuple(sorted(self.default_aliases.items())),
            calls=tuple(
                CallSite(
                    callee=c["callee"],
                    lineno=c["lineno"],
                    col=c["col"],
                    n_args=c["n_args"],
                    has_star=c["has_star"],
                    args=tuple(c["args"]),
                    assigned_display=c["assigned_display"],
                    assigned_suffix=c["assigned_suffix"],
                )
                for c in self.calls
            ),
            refs=tuple(sorted(refs)),
            mutations=mutations,
        )


def _dotted_text(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string when ``node`` is a Name/Attribute chain."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class _SummaryVisitor(ast.NodeVisitor):
    """One pass over a module AST building the :class:`ModuleSummary`."""

    def __init__(self, suffix_of: Any) -> None:
        # ``suffix_of`` is rules.unit_suffix, injected to avoid a cycle.
        self._suffix_of = suffix_of
        self.module_acc = _FuncAcc("<module>", 1)
        self.functions: List[_FuncAcc] = []
        self.imports: List[ImportRecord] = []
        self.symbols: Dict[str, str] = {}
        self.symbol_lines: Dict[str, int] = {}
        self.all_names: Optional[Tuple[str, ...]] = None
        self.all_lineno = 0
        self.module_globals: List[Dict[str, Any]] = []
        self.worker_entries: List[WorkerEntry] = []
        self.locks: List[str] = []
        self.dynamic_exports = False
        self._current = self.module_acc
        self._class: Optional[str] = None
        self._with_guards: List[str] = []

    # -- helpers --------------------------------------------------------
    def _at_module_level(self) -> bool:
        return self._current is self.module_acc and self._class is None

    def _record_local(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                self._current.locals.add(child.id)

    def _suffix_source(self, node: ast.AST) -> Tuple[str, str]:
        """(display, suffix) for an argument expression, or ("", "")."""
        name: Optional[str] = None
        display = ""
        if isinstance(node, ast.Name):
            name = node.id
            display = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
            display = _dotted_text(node) or node.attr
        elif isinstance(node, ast.Call):
            callee = _dotted_text(node.func)
            if callee is not None:
                name = callee.rsplit(".", 1)[-1]
                display = f"{callee}(...)"
        if name is None:
            return "", ""
        suffix = self._suffix_of(name)
        return (display, suffix) if suffix else ("", "")

    def _mutation(self, target: str, lineno: int, how: str) -> None:
        via_param = ""
        root = target.split(".", 1)[0]
        alias = self._current.default_aliases.get(root)
        if alias is not None:
            target = alias
            via_param = root
        self._current.mutations.append(
            MutationSite(
                target=target,
                lineno=lineno,
                how=how,
                guards=tuple(self._with_guards),
                via_param=via_param,
            )
        )

    # -- definitions ----------------------------------------------------
    def _visit_function_def(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        if self._current is not self.module_acc:
            # Nested def: merge its body into the enclosing summary.
            self._current.locals.add(node.name)
            args = node.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                self._current.locals.add(arg.arg)
            for default in (*args.defaults, *args.kw_defaults):
                if default is not None:
                    self.visit(default)
            for stmt in node.body:
                self.visit(stmt)
            return
        if self._at_module_level():
            self.symbols[node.name] = "function"
            self.symbol_lines[node.name] = node.lineno
            if node.name == "__getattr__":
                self.dynamic_exports = True
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        params = [a.arg for a in positional] + [a.arg for a in args.kwonlyargs]
        aliases: List[Tuple[str, str]] = []
        pos_defaults = args.defaults
        for arg, default in zip(positional[len(positional) - len(pos_defaults) :], pos_defaults):
            dotted = _dotted_text(default) if default is not None else None
            if dotted is not None:
                aliases.append((arg.arg, dotted))
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            dotted = _dotted_text(kw_default) if kw_default is not None else None
            if dotted is not None:
                aliases.append((arg.arg, dotted))
        name = node.name if self._class is None else f"{self._class}.{node.name}"
        acc = _FuncAcc(
            name,
            node.lineno,
            is_method=self._class is not None,
            decorated=bool(node.decorator_list),
            params=params,
            n_positional=len(positional),
            has_vararg=args.vararg is not None,
            has_kwarg=args.kwarg is not None,
            default_aliases=aliases,
        )
        for decorator in node.decorator_list:
            self.visit(decorator)
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None:
                self.visit(default)
        previous, self._current = self._current, acc
        for stmt in node.body:
            self.visit(stmt)
        self._current = previous
        self.functions.append(acc)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function_def(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._current is not self.module_acc or self._class is not None:
            self._current.locals.add(node.name)
            for stmt in node.body:
                self.visit(stmt)
            return
        self.symbols[node.name] = "class"
        self.symbol_lines[node.name] = node.lineno
        for decorator in node.decorator_list:
            self.visit(decorator)
        for base in (*node.bases, *node.keywords):
            self.visit(base)
        self._class = node.name
        for stmt in node.body:
            self.visit(stmt)
        self._class = None

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        names = tuple(
            (alias.name, alias.asname or alias.name.split(".", 1)[0])
            for alias in node.names
        )
        self.imports.append(
            ImportRecord(
                kind="import", module="", level=0, names=names, lineno=node.lineno
            )
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        names = tuple(
            (alias.name, alias.asname or alias.name) for alias in node.names
        )
        self.imports.append(
            ImportRecord(
                kind="from",
                module=node.module or "",
                level=node.level,
                names=names,
                lineno=node.lineno,
            )
        )

    # -- assignments / state --------------------------------------------
    def _record_module_global(self, name: str, value: ast.AST, lineno: int) -> None:
        if not isinstance(value, _MUTABLE_VALUE_NODES):
            return
        kind = {
            ast.List: "list",
            ast.Dict: "dict",
            ast.Set: "set",
            ast.ListComp: "comprehension",
            ast.DictComp: "comprehension",
            ast.SetComp: "comprehension",
            ast.Call: "call",
        }[type(value)]
        if isinstance(value, ast.Call):
            dotted = _dotted_text(value.func)
            if dotted is not None and dotted.rsplit(".", 1)[-1] in ("Lock", "RLock"):
                self.locks.append(name)
                return
        self.module_globals.append(
            {"name": name, "lineno": lineno, "mutable": True, "kind": kind}
        )

    def _handle_assign_target(self, target: ast.AST, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._current.global_decls:
                self._mutation(target.id, lineno, "rebind")
            self._current.locals.add(target.id)
        elif isinstance(target, ast.Subscript):
            dotted = _dotted_text(target.value)
            if dotted is not None:
                self._mutation(dotted, lineno, "subscript")
            self.visit(target.value)
            self.visit(target.slice)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_assign_target(element, lineno)
        elif isinstance(target, ast.Starred):
            self._handle_assign_target(target.value, lineno)
        else:
            self.visit(target)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._at_module_level() and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self.symbols.setdefault(target.id, "const")
                self.symbol_lines.setdefault(target.id, node.lineno)
                self._record_module_global(target.id, node.value, node.lineno)
                if target.id == "__all__" and isinstance(
                    node.value, (ast.List, ast.Tuple)
                ):
                    literal = [
                        el.value
                        for el in node.value.elts
                        if isinstance(el, ast.Constant) and isinstance(el.value, str)
                    ]
                    if len(literal) == len(node.value.elts):
                        self.all_names = tuple(literal)
                        self.all_lineno = node.lineno
        for target in node.targets:
            self._handle_assign_target(target, node.lineno)
        self.visit(node.value)
        self._note_assigned_call(node.targets, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            self._at_module_level()
            and isinstance(node.target, ast.Name)
            and node.value is not None
        ):
            self.symbols.setdefault(node.target.id, "const")
            self.symbol_lines.setdefault(node.target.id, node.lineno)
            self._record_module_global(node.target.id, node.value, node.lineno)
        self._handle_assign_target(node.target, node.lineno)
        if node.value is not None:
            self.visit(node.value)
            self._note_assigned_call([node.target], node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_assign_target(node.target, node.lineno)
        if isinstance(node.target, ast.Name):
            self._current.loads.add(node.target.id)
        self.visit(node.value)

    def _note_assigned_call(
        self, targets: Sequence[ast.AST], value: ast.AST
    ) -> None:
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        if not isinstance(value, ast.Call):
            return
        suffix = self._suffix_of(targets[0].id)
        if not suffix:
            return
        for call in self._current.calls:
            if call["lineno"] == value.lineno and call["col"] == value.col_offset:
                call["assigned_display"] = targets[0].id
                call["assigned_suffix"] = suffix
                break

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                dotted = _dotted_text(target.value)
                if dotted is not None:
                    self._mutation(dotted, node.lineno, "delete")
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._current.global_decls.update(node.names)

    # -- scoping statements ---------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        guards: List[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            dotted = _dotted_text(item.context_expr)
            if dotted is not None:
                guards.append(dotted)
            if item.optional_vars is not None:
                self._record_local(item.optional_vars)
        self._with_guards.extend(guards)
        for stmt in node.body:
            self.visit(stmt)
        del self._with_guards[len(self._with_guards) - len(guards) :]

    def visit_For(self, node: ast.For) -> None:
        self._record_local(node.target)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._record_local(node.target)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name is not None:
            self._current.locals.add(node.name)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._record_local(node.target)
        self.visit(node.iter)
        for condition in node.ifs:
            self.visit(condition)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._current.locals.add(node.target.id)
        self.visit(node.value)

    # -- expressions ----------------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._current.loads.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and isinstance(node.ctx, ast.Load):
            self._current.loads.add(f"{node.value.id}.{node.attr}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted_text(node.func)
        if callee is not None:
            args: List[CallArg] = []
            has_star = any(isinstance(a, ast.Starred) for a in node.args) or any(
                kw.arg is None for kw in node.keywords
            )
            for index, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    continue
                display, suffix = self._suffix_source(arg)
                if suffix:
                    args.append(
                        CallArg(
                            position=index, keyword="", display=display, suffix=suffix
                        )
                    )
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                display, suffix = self._suffix_source(kw.value)
                if suffix:
                    args.append(
                        CallArg(
                            position=-1,
                            keyword=kw.arg,
                            display=display,
                            suffix=suffix,
                        )
                    )
            self._current.calls.append(
                {
                    "callee": callee,
                    "lineno": node.lineno,
                    "col": node.col_offset,
                    "n_args": len(node.args),
                    "has_star": has_star,
                    "args": args,
                    "assigned_display": "",
                    "assigned_suffix": "",
                }
            )
        # Worker entries: pool.submit(fn, ...) / pool.map(fn, ...).
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in SUBMIT_METHODS
            and node.args
        ):
            submitted = _dotted_text(node.args[0])
            if submitted is not None:
                self.worker_entries.append(
                    WorkerEntry(
                        callee=submitted,
                        kind="submit",
                        method=node.func.attr,
                        lineno=node.lineno,
                        function=self._current.name,
                    )
                )
        for kw in node.keywords:
            if kw.arg == "initializer":
                initializer = _dotted_text(kw.value)
                if initializer is not None:
                    self.worker_entries.append(
                        WorkerEntry(
                            callee=initializer,
                            kind="initializer",
                            method=callee or "call",
                            lineno=node.lineno,
                            function=self._current.name,
                        )
                    )
        # Mutating method calls: NAME.put(...) / mod.NAME.clear().
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            receiver = _dotted_text(node.func.value)
            if receiver is not None:
                self._mutation(receiver, node.lineno, f"method:{node.func.attr}")
        self.generic_visit(node)


def _fork_safe_lines(lines: Sequence[str]) -> Set[int]:
    """1-based lines whose global definition is marked fork-safe."""
    marked: Set[int] = set()
    for index, line in enumerate(lines, 1):
        if _FORK_SAFE_RE.search(line) is None:
            continue
        marked.add(index)
        if line.lstrip().startswith("#"):
            marked.add(index + 1)  # standalone comment covers the next line
    return marked


def extract_summary(
    module: "ModuleContext", module_name: str, sha256: str
) -> ModuleSummary:
    """Build the :class:`ModuleSummary` of one parsed module."""
    from .rules import unit_suffix  # local import: rules imports core

    visitor = _SummaryVisitor(unit_suffix)
    for stmt in module.tree.body:
        visitor.visit(stmt)
    visitor.functions.append(visitor.module_acc)
    fork_safe = _fork_safe_lines(module.lines)
    module_globals = tuple(
        GlobalVar(
            name=g["name"],
            lineno=g["lineno"],
            mutable=g["mutable"],
            fork_safe=g["lineno"] in fork_safe,
            kind=g["kind"],
        )
        for g in visitor.module_globals
    )
    all_refs: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Name):
            all_refs.add(node.id)
        elif isinstance(node, ast.Attribute):
            all_refs.add(node.attr)
    if visitor.all_names:
        all_refs.update(visitor.all_names)
    return ModuleSummary(
        module=module_name,
        path=module.path.as_posix(),
        sha256=sha256,
        is_package=module.path.stem == "__init__",
        imports=tuple(visitor.imports),
        symbols=visitor.symbols,
        symbol_lines=visitor.symbol_lines,
        all_names=visitor.all_names,
        all_lineno=visitor.all_lineno,
        functions=tuple(acc.finalize() for acc in visitor.functions),
        module_globals=module_globals,
        worker_entries=tuple(visitor.worker_entries),
        locks=tuple(visitor.locks),
        dynamic_exports=visitor.dynamic_exports,
        all_refs=tuple(sorted(all_refs)),
        suppressed_lines={
            line: tuple(sorted(rules))
            for line, rules in module.line_suppressions().items()
        },
        file_suppressed=tuple(sorted(module.file_suppressions())),
    )


# ---------------------------------------------------------------------------
# The project graph
# ---------------------------------------------------------------------------
#: A resolved name: ("module", dotted, "") or ("symbol", module, name).
Resolved = Tuple[str, str, str]


class ProjectGraph:
    """Modules, symbols, imports and calls over one set of summaries."""

    def __init__(
        self,
        summaries: Iterable[ModuleSummary],
        config: Optional["AnalyzerConfig"] = None,
    ) -> None:
        from .core import AnalyzerConfig as _Config  # deferred: no cycle at import

        self.config = config if config is not None else _Config()
        self.by_path: Dict[str, ModuleSummary] = {}
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.by_path[summary.path] = summary
            self.modules.setdefault(summary.module, summary)
        self._bindings_cache: Dict[str, Dict[str, Resolved]] = {}
        self._dotted_cache: Dict[Tuple[str, str], Optional[Resolved]] = {}
        self._functions: Dict[str, Dict[str, FunctionSummary]] = {}
        self._globals: Dict[str, Dict[str, GlobalVar]] = {}
        for summary in self.modules.values():
            self._functions[summary.module] = {
                fn.name: fn for fn in summary.functions if not fn.is_method
            }
            self._globals[summary.module] = {
                g.name: g for g in summary.module_globals
            }

    # -- import resolution ----------------------------------------------
    @staticmethod
    def absolute_import(
        summary: ModuleSummary, record: ImportRecord
    ) -> Optional[str]:
        """The absolute module a ``from``-import names (None if unknown)."""
        if record.kind != "from":
            return None
        if record.level == 0:
            return record.module or None
        package = (
            summary.module
            if summary.is_package
            else summary.module.rsplit(".", 1)[0]
            if "." in summary.module
            else ""
        )
        parts = package.split(".") if package else []
        drop = record.level - 1
        if drop > len(parts):
            return None
        base = parts[: len(parts) - drop]
        if record.module:
            base.extend(record.module.split("."))
        return ".".join(base) or None

    def project_imports(self, summary: ModuleSummary) -> Set[str]:
        """Project modules this module directly imports (named edges)."""
        found: Set[str] = set()
        for record in summary.imports:
            if record.kind == "import":
                for target, _bound in record.names:
                    if target in self.modules:
                        found.add(target)
            else:
                source = self.absolute_import(summary, record)
                if source is None:
                    continue
                if source in self.modules:
                    found.add(source)
                for name, _bound in record.names:
                    submodule = f"{source}.{name}"
                    if submodule in self.modules:
                        found.add(submodule)
        found.discard(summary.module)
        return found

    def dependents_map(self) -> Dict[str, Set[str]]:
        """Reverse import edges: module -> modules importing it."""
        reverse: Dict[str, Set[str]] = {}
        for summary in self.by_path.values():
            for imported in self.project_imports(summary):
                reverse.setdefault(imported, set()).add(summary.module)
        return reverse

    # -- name resolution -------------------------------------------------
    def bindings(self, module: str) -> Dict[str, Resolved]:
        """Top-level name bindings of one module (defs shadow imports)."""
        cached = self._bindings_cache.get(module)
        if cached is not None:
            return cached
        summary = self.modules.get(module)
        table: Dict[str, Resolved] = {}
        if summary is not None:
            for record in summary.imports:
                if record.kind == "import":
                    for target, bound in record.names:
                        table[bound] = ("module", target, "")
                else:
                    source = self.absolute_import(summary, record)
                    if source is None:
                        continue
                    for name, bound in record.names:
                        if name == "*":
                            continue
                        table[bound] = ("import-from", source, name)
            for name in summary.symbols:
                table[name] = ("symbol", module, name)
        self._bindings_cache[module] = table
        return table

    def star_sources(self, module: str) -> List[str]:
        """Absolute sources of ``from X import *`` statements."""
        summary = self.modules.get(module)
        if summary is None:
            return []
        sources: List[str] = []
        for record in summary.imports:
            if record.kind == "from" and any(n == "*" for n, _ in record.names):
                source = self.absolute_import(summary, record)
                if source is not None:
                    sources.append(source)
        return sources

    def resolve_name(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Resolved]:
        """Where ``name`` used in ``module`` is defined, chasing re-exports."""
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None  # import cycle — stop, stay conservative
        seen.add((module, name))
        binding = self.bindings(module).get(name)
        if binding is None:
            for source in self.star_sources(module):
                if source in self.modules:
                    resolved = self.resolve_name(source, name, seen)
                    if resolved is not None:
                        return resolved
            return None
        tag, target, symbol = binding
        if tag == "symbol":
            return binding
        if tag == "module":
            return ("module", target, "") if target in self.modules else None
        # tag == "import-from": follow into the source module.
        if target not in self.modules:
            return None
        resolved = self.resolve_name(target, symbol, seen)
        if resolved is not None:
            return resolved
        submodule = f"{target}.{symbol}"
        if submodule in self.modules:
            return ("module", submodule, "")
        return None

    def resolve_dotted(self, module: str, dotted: str) -> Optional[Resolved]:
        """Resolve a dotted reference (``pkg.mod.fn``) from ``module``."""
        key = (module, dotted)
        if key in self._dotted_cache:
            return self._dotted_cache[key]
        resolved = self._resolve_dotted_uncached(module, dotted)
        self._dotted_cache[key] = resolved
        return resolved

    def _resolve_dotted_uncached(
        self, module: str, dotted: str
    ) -> Optional[Resolved]:
        parts = dotted.split(".")
        if parts[0] in ("self", "cls"):
            return None
        resolved = self.resolve_name(module, parts[0])
        for part in parts[1:]:
            if resolved is None or resolved[0] != "module":
                return None  # attribute of a symbol: out of scope
            target = resolved[1]
            next_resolved = self.resolve_name(target, part)
            if next_resolved is None:
                submodule = f"{target}.{part}"
                if submodule in self.modules:
                    next_resolved = ("module", submodule, "")
            resolved = next_resolved
        return resolved

    # -- typed lookups ---------------------------------------------------
    def function_at(self, module: str, name: str) -> Optional[FunctionSummary]:
        return self._functions.get(module, {}).get(name)

    def global_at(self, module: str, name: str) -> Optional[GlobalVar]:
        return self._globals.get(module, {}).get(name)

    def resolve_function(
        self, module: str, dotted: str
    ) -> Optional[Tuple[str, FunctionSummary]]:
        """The top-level function a callee reference names, if any."""
        resolved = self.resolve_dotted(module, dotted)
        if resolved is None or resolved[0] != "symbol":
            return None
        function = self.function_at(resolved[1], resolved[2])
        if function is None:
            return None
        return resolved[1], function

    def resolve_global(
        self, module: str, dotted: str
    ) -> Optional[Tuple[str, GlobalVar]]:
        """The module-level global a reference names, if any."""
        resolved = self.resolve_dotted(module, dotted)
        if resolved is None or resolved[0] != "symbol":
            return None
        var = self.global_at(resolved[1], resolved[2])
        if var is None:
            return None
        return resolved[1], var

    def is_lock(self, module: str, dotted: str) -> bool:
        """Whether a ``with`` guard resolves to a module-level lock."""
        resolved = self.resolve_dotted(module, dotted)
        if resolved is None or resolved[0] != "symbol":
            return False
        summary = self.modules.get(resolved[1])
        return summary is not None and resolved[2] in summary.locks

    # -- call graph ------------------------------------------------------
    def worker_entries(self, kind: str) -> List[Tuple[FuncKey, WorkerEntry, str]]:
        """Resolved worker entry points of one kind across the project."""
        entries: List[Tuple[FuncKey, WorkerEntry, str]] = []
        for summary in self.by_path.values():
            for entry in summary.worker_entries:
                if entry.kind != kind:
                    continue
                resolved = self.resolve_function(summary.module, entry.callee)
                if resolved is None:
                    continue
                entries.append(
                    ((resolved[0], resolved[1].name), entry, summary.module)
                )
        return entries

    def reachable_from(
        self, roots: Iterable[FuncKey]
    ) -> Dict[FuncKey, Optional[FuncKey]]:
        """BFS over the call graph; maps reached function -> its caller."""
        parents: Dict[FuncKey, Optional[FuncKey]] = {}
        queue: List[FuncKey] = []
        for root in roots:
            if root not in parents and self.function_at(*root) is not None:
                parents[root] = None
                queue.append(root)
        index = 0
        while index < len(queue):
            current = queue[index]
            index += 1
            function = self.function_at(*current)
            if function is None:
                continue
            for call in function.calls:
                resolved = self.resolve_function(current[0], call.callee)
                if resolved is None:
                    continue
                key = (resolved[0], resolved[1].name)
                if key not in parents:
                    parents[key] = current
                    queue.append(key)
        return parents

    def witness_chain(
        self, parents: Mapping[FuncKey, Optional[FuncKey]], key: FuncKey
    ) -> List[str]:
        """Entry-to-target function names for one reachability proof."""
        chain: List[str] = []
        current: Optional[FuncKey] = key
        while current is not None:
            chain.append(current[1])
            current = parents.get(current)
        chain.reverse()
        return chain

    # -- suppressions ----------------------------------------------------
    def is_suppressed(self, path: str, line: int, rule_id: str) -> bool:
        from .core import ALL_RULES

        summary = self.by_path.get(path)
        if summary is None:
            return False
        if (
            ALL_RULES in summary.file_suppressed
            or rule_id in summary.file_suppressed
        ):
            return True
        rules = summary.suppressed_lines.get(line)
        return rules is not None and (ALL_RULES in rules or rule_id in rules)


__all__ = [
    "FuncKey",
    "CallArg",
    "CallSite",
    "FunctionSummary",
    "GlobalVar",
    "ImportRecord",
    "ModuleSummary",
    "MutationSite",
    "ProjectGraph",
    "SUMMARY_VERSION",
    "WorkerEntry",
    "extract_summary",
    "module_name_for",
]
