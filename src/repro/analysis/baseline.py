"""The finding baseline/ratchet: new rules land tolerant, drift cannot.

A baseline file records, per ``(file, rule)``, how many findings are
*accepted* — typically the debt present when a rule first shipped.  A
run with ``--baseline``:

* suppresses a file/rule group whose finding count is at or below the
  accepted count (the debt is known);
* reports the whole group when the count *exceeds* the baseline (the
  count went up; line numbers shift too easily to tell old findings
  from new, so the honest unit of ratcheting is the count);
* warns on stderr when a count dropped below the baseline — the file
  improved, and ``--update-baseline`` should be rerun to ratchet the
  accepted debt down (warn-only so unrelated PRs don't fail).

Paths are stored relative to the repo root (posix), so the committed
file is machine-independent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError
from .core import Finding

#: Wire-shape version of the baseline document.
BASELINE_VERSION = 1

#: Default baseline filename, resolved against the repo root.
DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"

#: file path -> rule id -> accepted finding count.
BaselineEntries = Dict[str, Dict[str, int]]


def normalize_path(path: str, root: Path) -> str:
    """A finding path as stored in the baseline: root-relative posix."""
    candidate = Path(path)
    if candidate.is_absolute():
        try:
            candidate = candidate.relative_to(root)
        except ValueError:
            return candidate.as_posix()
        return candidate.as_posix()
    try:
        resolved = (Path.cwd() / candidate).resolve()
        return resolved.relative_to(root.resolve()).as_posix()
    except (OSError, ValueError):
        return candidate.as_posix()


def group_findings(
    findings: Iterable[Finding], root: Path
) -> Dict[Tuple[str, str], List[Finding]]:
    """Findings bucketed by (normalized path, rule id)."""
    groups: Dict[Tuple[str, str], List[Finding]] = {}
    for finding in findings:
        key = (normalize_path(finding.path, root), finding.rule)
        groups.setdefault(key, []).append(finding)
    return groups


def build_entries(findings: Iterable[Finding], root: Path) -> BaselineEntries:
    """Baseline entries accepting every given finding."""
    entries: BaselineEntries = {}
    for (path, rule_id), group in sorted(
        group_findings(findings, root).items()
    ):
        entries.setdefault(path, {})[rule_id] = len(group)
    return entries


def load_baseline(path: Path) -> BaselineEntries:
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(
            f"reprolint baseline {str(path)!r}: cannot read: {exc}"
        ) from exc
    except ValueError as exc:
        raise ConfigurationError(
            f"reprolint baseline {str(path)!r}: invalid JSON: {exc}"
        ) from exc
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"reprolint baseline {str(path)!r}: field 'version' must be "
            f"{BASELINE_VERSION}; regenerate with --update-baseline"
        )
    entries = raw.get("entries")
    if not isinstance(entries, dict):
        raise ConfigurationError(
            f"reprolint baseline {str(path)!r}: field 'entries' must be "
            f"an object of path -> rule -> count"
        )
    return {
        str(file): {str(rule): int(count) for rule, count in rules.items()}
        for file, rules in entries.items()
    }


def write_baseline(
    path: Path, findings: Iterable[Finding], root: Path
) -> None:
    document = {
        "version": BASELINE_VERSION,
        "entries": build_entries(findings, root),
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    findings: Sequence[Finding],
    entries: BaselineEntries,
    root: Path,
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (new, baselined) and collect stale warnings."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    stale: List[str] = []
    groups = group_findings(findings, root)
    for (path, rule_id), group in sorted(groups.items()):
        accepted = entries.get(path, {}).get(rule_id, 0)
        if len(group) <= accepted:
            baselined.extend(group)
            if len(group) < accepted:
                stale.append(
                    f"baseline accepts {accepted} {rule_id} finding(s) in "
                    f"{path} but only {len(group)} remain; rerun "
                    f"--update-baseline to ratchet down"
                )
        else:
            new.extend(group)
    # Entries whose file/rule group vanished entirely are stale too.
    for path, rules in sorted(entries.items()):
        for rule_id, accepted in sorted(rules.items()):
            if accepted > 0 and (path, rule_id) not in groups:
                stale.append(
                    f"baseline accepts {accepted} {rule_id} finding(s) in "
                    f"{path} but none remain; rerun --update-baseline "
                    f"to ratchet down"
                )
    return sorted(new), sorted(baselined), stale


__all__ = [
    "BASELINE_VERSION",
    "BaselineEntries",
    "DEFAULT_BASELINE_NAME",
    "apply_baseline",
    "build_entries",
    "load_baseline",
    "normalize_path",
    "write_baseline",
]
