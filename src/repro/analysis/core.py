"""The ``reprolint`` engine: findings, rule registry, suppressions.

A :class:`Rule` inspects one parsed module (:class:`ModuleContext`) and
yields :class:`Finding` objects.  The :class:`Analyzer` walks files,
builds contexts (source, AST, parent links, suppression table) and runs
every registered rule, honoring ``# reprolint: disable=RPL00x``
comments:

* a trailing comment suppresses the named rules on its own line;
* a standalone comment line suppresses them on the next code line too
  (for statements too long to carry a trailing comment);
* ``# reprolint: disable-file=RPL00x`` anywhere in the file suppresses
  the named rules for the whole module;
* ``disable`` / ``disable-file`` with no ``=RPL...`` list suppresses
  every rule.

Rules register through the :func:`rule` decorator; the analyzed code is
never imported, so ``reprolint`` can run on broken or partial trees.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from ..errors import ConfigurationError

#: Output-format version of ``reprolint --json`` documents.
REPORT_VERSION = 1

#: Sentinel rule id meaning "every rule" in suppression tables.
ALL_RULES = "ALL"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable-file|disable)"
    r"(?:=(?P<ids>[A-Z0-9, ]+))?",
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """The human one-liner: ``path:line:col: RPL00x message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class AnalyzerConfig:
    """Knobs rules read; defaults match the shipped ``src/repro`` tree.

    ``purity_modules`` / ``wire_modules`` are posix-path substrings
    selecting which files the scoped rules (RPL004, RPL003) apply to;
    ``wire_snapshot`` overrides discovery of the committed
    wire-fingerprint snapshot (``tests/data/wire_fingerprints.json``
    next to ``pyproject.toml`` by default).
    """

    #: Files RPL004 (kernel purity) applies to.
    purity_modules: Tuple[str, ...] = (
        "repro/batch/kernels.py",
        "repro/batch/assembly.py",
    )
    #: Files RPL003 (wire-format guard) applies to.
    wire_modules: Tuple[str, ...] = ("repro/io/serialization.py",)
    #: Explicit wire-fingerprint snapshot path (None = discover).
    wire_snapshot: Optional[Path] = None
    #: Rule ids to run (None = all registered).
    select: Optional[Tuple[str, ...]] = None


class ModuleContext:
    """One parsed module plus everything rules need to inspect it."""

    def __init__(
        self,
        path: Path,
        source: str,
        config: Optional[AnalyzerConfig] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.config = config or AnalyzerConfig()
        self.tree = ast.parse(source, filename=str(path))
        self.lines = source.splitlines()
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._line_suppressed: Dict[int, Set[str]] = {}
        self._file_suppressed: Set[str] = set()
        self._read_suppressions()

    # -- structure ------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (None for the module root)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """``node``'s ancestors, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def matches(self, patterns: Sequence[str]) -> bool:
        """Whether this file's posix path ends with any pattern."""
        posix = self.path.as_posix()
        return any(posix.endswith(pattern) for pattern in patterns)

    # -- suppressions ---------------------------------------------------
    def _read_suppressions(self) -> None:
        reader = io.StringIO(self.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for index, token in enumerate(tokens):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids_group = match.group("ids")
            ids = (
                {ALL_RULES}
                if ids_group is None
                else {part.strip() for part in ids_group.split(",") if part.strip()}
            )
            if match.group(1) == "disable-file":
                self._file_suppressed |= ids
                continue
            line = token.start[0]
            self._line_suppressed.setdefault(line, set()).update(ids)
            if not token.line[: token.start[1]].strip():
                # Standalone comment: also covers the next code line.
                next_line = self._next_code_line(tokens, index)
                if next_line is not None:
                    self._line_suppressed.setdefault(
                        next_line, set()
                    ).update(ids)

    @staticmethod
    def _next_code_line(
        tokens: List[tokenize.TokenInfo], index: int
    ) -> Optional[int]:
        skip = (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
        )
        for token in tokens[index + 1 :]:
            if token.type not in skip and token.type != tokenize.ENDMARKER:
                return token.start[0]
        return None

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        if (
            ALL_RULES in self._file_suppressed
            or rule_id in self._file_suppressed
        ):
            return True
        ids = self._line_suppressed.get(line)
        return ids is not None and (ALL_RULES in ids or rule_id in ids)


class Rule:
    """Base class for one registered check.

    Subclasses set ``id``/``name``/``rationale`` and implement
    :meth:`check`, yielding findings via :meth:`finding` (which applies
    the suppression table).
    """

    id: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Iterator[Finding]:
        """Yield one finding at ``node`` unless suppressed."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if not module.is_suppressed(line, self.id):
            yield Finding(
                path=str(module.path),
                line=line,
                col=col + 1,
                rule=self.id,
                message=message,
            )


#: Registered rules, keyed by id (filled by the :func:`rule` decorator).
REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` subclass by id."""
    if not cls.id or not cls.id.startswith("RPL"):
        raise ConfigurationError(
            f"rule class {cls.__name__!r}: field 'id' must be set to an "
            f"RPL identifier, got {cls.id!r}"
        )
    if cls.id in REGISTRY:
        raise ConfigurationError(
            f"rule id {cls.id!r} is already registered "
            f"(by {REGISTRY[cls.id].__name__})"
        )
    REGISTRY[cls.id] = cls
    return cls


def all_rules() -> Tuple[Type[Rule], ...]:
    """Every registered rule class, in id order."""
    return tuple(REGISTRY[rule_id] for rule_id in sorted(REGISTRY))


class Analyzer:
    """Runs the registered rules over files, trees or source strings."""

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        self.config = config or AnalyzerConfig()
        selected = self.config.select
        if selected is not None:
            unknown = sorted(set(selected) - set(REGISTRY))
            if unknown:
                raise ConfigurationError(
                    f"analyzer field 'select': unknown rule id(s) "
                    f"{', '.join(map(repr, unknown))}; known: "
                    f"{', '.join(sorted(REGISTRY))}"
                )
        self.rules: Tuple[Rule, ...] = tuple(
            REGISTRY[rule_id]()
            for rule_id in sorted(REGISTRY)
            if selected is None or rule_id in selected
        )

    # -- entry points ---------------------------------------------------
    def check_source(
        self, source: str, path: "Path | str" = "<string>"
    ) -> List[Finding]:
        """Analyze one source string (the fixture-test entry point)."""
        module = ModuleContext(Path(path), source, self.config)
        return self._run(module)

    def check_file(self, path: "Path | str") -> List[Finding]:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"reprolint path {str(path)!r}: cannot read: {exc}"
            ) from exc
        try:
            return self.check_source(source, path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="RPL000",
                    message=f"syntax error: {exc.msg}",
                )
            ]

    def check_paths(self, paths: Iterable["Path | str"]) -> List[Finding]:
        """Analyze files and (recursively) directories of ``*.py``."""
        findings: List[Finding] = []
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                for file in sorted(entry.rglob("*.py")):
                    findings.extend(self.check_file(file))
            elif entry.exists():
                findings.extend(self.check_file(entry))
            else:
                raise ConfigurationError(
                    f"reprolint path {str(entry)!r}: does not exist"
                )
        return sorted(findings)

    def _run(self, module: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for active in self.rules:
            findings.extend(active.check(module))
        return sorted(findings)


def report_to_dict(
    findings: Sequence[Finding], files_checked: int
) -> Dict[str, Any]:
    """The ``--json`` report document."""
    return {
        "version": REPORT_VERSION,
        "files_checked": files_checked,
        "findings": [finding.to_dict() for finding in findings],
        "rules": {
            rule_id: {
                "name": REGISTRY[rule_id].name,
                "rationale": REGISTRY[rule_id].rationale,
            }
            for rule_id in sorted(REGISTRY)
        },
    }


def iter_python_files(paths: Iterable["Path | str"]) -> Iterator[Path]:
    """Every ``*.py`` file the given paths name (dirs recurse)."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                yield file
        elif entry.exists():
            yield entry
