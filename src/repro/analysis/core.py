"""The ``reprolint`` engine: findings, rule registry, suppressions.

A :class:`Rule` inspects one parsed module (:class:`ModuleContext`) and
yields :class:`Finding` objects.  The :class:`Analyzer` walks files,
builds contexts (source, AST, parent links, suppression table) and runs
every registered rule, honoring ``# reprolint: disable=RPL00x``
comments:

* a trailing comment suppresses the named rules on its own line;
* a standalone comment line suppresses them on the next code line too
  (for statements too long to carry a trailing comment);
* ``# reprolint: disable-file=RPL00x`` anywhere in the file suppresses
  the named rules for the whole module;
* ``disable`` / ``disable-file`` with no ``=RPL...`` list suppresses
  every rule.

Rules register through the :func:`rule` decorator; the analyzed code is
never imported, so ``reprolint`` can run on broken or partial trees.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from ..errors import ConfigurationError

#: Output-format version of ``reprolint --json`` documents.
REPORT_VERSION = 1

#: Sentinel rule id meaning "every rule" in suppression tables.
ALL_RULES = "ALL"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable-file|disable)"
    r"(?:=(?P<ids>[A-Z0-9, ]+))?",
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """The human one-liner: ``path:line:col: RPL00x message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class AnalyzerConfig:
    """Knobs rules read; defaults match the shipped ``src/repro`` tree.

    ``purity_modules`` / ``wire_modules`` are posix-path substrings
    selecting which files the scoped rules (RPL004, RPL003) apply to;
    ``wire_snapshot`` overrides discovery of the committed
    wire-fingerprint snapshot (``tests/data/wire_fingerprints.json``
    next to ``pyproject.toml`` by default).
    """

    #: Files RPL004 (kernel purity) applies to.
    purity_modules: Tuple[str, ...] = (
        "repro/batch/kernels.py",
        "repro/batch/assembly.py",
    )
    #: Files RPL003 (wire-format guard) applies to.
    wire_modules: Tuple[str, ...] = ("repro/io/serialization.py",)
    #: Explicit wire-fingerprint snapshot path (None = discover).
    wire_snapshot: Optional[Path] = None
    #: Rule ids to run (None = all registered).
    select: Optional[Tuple[str, ...]] = None
    #: Posix-path substrings excluded from directory walks (fixtures,
    #: vendored trees).  Matched against each file's posix path.
    exclude: Tuple[str, ...] = ()
    #: Markdown files RPL009 checks for documented-symbol drift
    #: (empty = skip the docs pass).
    doc_files: Tuple[str, ...] = ()


class ModuleContext:
    """One parsed module plus everything rules need to inspect it."""

    def __init__(
        self,
        path: Path,
        source: str,
        config: Optional[AnalyzerConfig] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.config = config or AnalyzerConfig()
        self.tree = ast.parse(source, filename=str(path))
        self.lines = source.splitlines()
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._line_suppressed: Dict[int, Set[str]] = {}
        self._file_suppressed: Set[str] = set()
        self._read_suppressions()

    # -- structure ------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (None for the module root)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """``node``'s ancestors, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def matches(self, patterns: Sequence[str]) -> bool:
        """Whether this file's posix path ends with any pattern."""
        posix = self.path.as_posix()
        return any(posix.endswith(pattern) for pattern in patterns)

    # -- suppressions ---------------------------------------------------
    def _read_suppressions(self) -> None:
        reader = io.StringIO(self.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for index, token in enumerate(tokens):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids_group = match.group("ids")
            ids = (
                {ALL_RULES}
                if ids_group is None
                else {part.strip() for part in ids_group.split(",") if part.strip()}
            )
            if match.group(1) == "disable-file":
                self._file_suppressed |= ids
                continue
            line = token.start[0]
            self._line_suppressed.setdefault(line, set()).update(ids)
            if not token.line[: token.start[1]].strip():
                # Standalone comment: also covers the next code line.
                next_line = self._next_code_line(tokens, index)
                if next_line is not None:
                    self._line_suppressed.setdefault(
                        next_line, set()
                    ).update(ids)

    @staticmethod
    def _next_code_line(
        tokens: List[tokenize.TokenInfo], index: int
    ) -> Optional[int]:
        skip = (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
        )
        for token in tokens[index + 1 :]:
            if token.type not in skip and token.type != tokenize.ENDMARKER:
                return token.start[0]
        return None

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        if (
            ALL_RULES in self._file_suppressed
            or rule_id in self._file_suppressed
        ):
            return True
        ids = self._line_suppressed.get(line)
        return ids is not None and (ALL_RULES in ids or rule_id in ids)

    def line_suppressions(self) -> Dict[int, Set[str]]:
        """The per-line suppression table (line -> suppressed rule ids)."""
        return self._line_suppressed

    def file_suppressions(self) -> Set[str]:
        """Rule ids suppressed for the whole file."""
        return self._file_suppressed


class Rule:
    """Base class for one registered check.

    Subclasses set ``id``/``name``/``rationale`` and implement
    :meth:`check`, yielding findings via :meth:`finding` (which applies
    the suppression table).
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    #: "module" rules see one file at a time; "project" rules
    #: (:class:`ProjectRule`) see the whole :class:`ProjectGraph`.
    scope: str = "module"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Iterator[Finding]:
        """Yield one finding at ``node`` unless suppressed."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if not module.is_suppressed(line, self.id):
            yield Finding(
                path=str(module.path),
                line=line,
                col=col + 1,
                rule=self.id,
                message=message,
            )


class ProjectRule(Rule):
    """Base class for whole-program (interprocedural) checks.

    Project rules run once per analysis over the
    :class:`repro.analysis.graph.ProjectGraph` built from every
    analyzed module, instead of once per file.  They operate on module
    *summaries* (plain data), which is what makes the incremental cache
    able to skip re-parsing unchanged files while still giving these
    rules a complete graph.
    """

    scope = "project"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())  # project rules do not run per module

    def check_project(self, graph: Any) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def project_finding(
        self, graph: Any, path: str, line: int, col: int, message: str
    ) -> Iterator[Finding]:
        """Yield one finding at an explicit location unless suppressed."""
        if not graph.is_suppressed(path, line, self.id):
            yield Finding(
                path=path, line=line, col=col, rule=self.id, message=message
            )


#: Registered rules, keyed by id (filled by the :func:`rule` decorator).
REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` subclass by id."""
    if not cls.id or not cls.id.startswith("RPL"):
        raise ConfigurationError(
            f"rule class {cls.__name__!r}: field 'id' must be set to an "
            f"RPL identifier, got {cls.id!r}"
        )
    if cls.id in REGISTRY:
        raise ConfigurationError(
            f"rule id {cls.id!r} is already registered "
            f"(by {REGISTRY[cls.id].__name__})"
        )
    REGISTRY[cls.id] = cls
    return cls


def all_rules() -> Tuple[Type[Rule], ...]:
    """Every registered rule class, in id order."""
    return tuple(REGISTRY[rule_id] for rule_id in sorted(REGISTRY))


@dataclass(frozen=True)
class AnalysisStats:
    """How much work one :meth:`Analyzer.check_paths` run actually did."""

    files_checked: int  #: files covered by the run (analyzed + cached)
    analyzed: int  #: files parsed and run through the module rules
    cached: int  #: files whose findings/summary came from the cache

    def to_dict(self) -> Dict[str, int]:
        return {
            "files_checked": self.files_checked,
            "analyzed": self.analyzed,
            "cached": self.cached,
        }


class Analyzer:
    """Runs the registered rules over files, trees or source strings.

    Module-scope rules run once per file; project-scope rules
    (:class:`ProjectRule`) run once per analysis over the
    :class:`~repro.analysis.graph.ProjectGraph` built from every
    analyzed module's summary.  :meth:`check_paths` optionally consults
    an :class:`~repro.analysis.cache.AnalysisCache`, re-analyzing only
    files whose content (or whose imports' content) changed.
    """

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        self.config = config or AnalyzerConfig()
        selected = self.config.select
        if selected is not None:
            unknown = sorted(set(selected) - set(REGISTRY))
            if unknown:
                raise ConfigurationError(
                    f"analyzer field 'select': unknown rule id(s) "
                    f"{', '.join(map(repr, unknown))}; known: "
                    f"{', '.join(sorted(REGISTRY))}"
                )
        self.rules: Tuple[Rule, ...] = tuple(
            REGISTRY[rule_id]()
            for rule_id in sorted(REGISTRY)
            if selected is None or rule_id in selected
        )
        self.module_rules: Tuple[Rule, ...] = tuple(
            active for active in self.rules if active.scope == "module"
        )
        self.project_rules: Tuple[Rule, ...] = tuple(
            active for active in self.rules if active.scope == "project"
        )
        #: Work accounting of the most recent :meth:`check_paths` run.
        self.last_stats: Optional[AnalysisStats] = None

    # -- entry points ---------------------------------------------------
    def check_source(
        self, source: str, path: "Path | str" = "<string>"
    ) -> List[Finding]:
        """Analyze one source string (the fixture-test entry point).

        Runs the module rules *and* the project rules over a
        single-module graph, so one-file fixtures exercise the
        interprocedural rules too.
        """
        from . import graph as graphlib

        module = ModuleContext(Path(path), source, self.config)
        findings = self._run_module_rules(module)
        if self.project_rules:
            summary = graphlib.extract_summary(
                module,
                graphlib.module_name_for(module.path),
                _sha256_text(source),
            )
            findings.extend(self._project_findings([summary]))
        return sorted(findings)

    def check_file(self, path: "Path | str") -> List[Finding]:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except UnicodeDecodeError as exc:
            return [_decode_error_finding(path, exc)]
        except OSError as exc:
            raise ConfigurationError(
                f"reprolint path {str(path)!r}: cannot read: {exc}"
            ) from exc
        try:
            return self.check_source(source, path)
        except SyntaxError as exc:
            return [_syntax_error_finding(path, exc)]

    def check_paths(
        self,
        paths: Iterable["Path | str"],
        cache: Optional[Any] = None,
    ) -> List[Finding]:
        """Analyze files and (recursively) directories of ``*.py``.

        With a ``cache`` (an :class:`~repro.analysis.cache.AnalysisCache`),
        files whose content hash — and every imported module's content
        hash — is unchanged reuse their cached module-rule findings and
        summary; the project rules always run, over the full summary
        graph, so interprocedural findings never go stale.
        """
        from . import graph as graphlib

        files = self._collect_files(paths)
        digests = {file: _sha256_path(file) for file in files}
        reusable = (
            cache.plan(files, digests, self.config)
            if cache is not None
            else set()
        )
        findings: List[Finding] = []
        summaries: List[Any] = []
        analyzed = 0
        for file in files:
            if file in reusable and cache is not None:
                cached_findings, summary = cache.load_entry(file)
                findings.extend(cached_findings)
            else:
                file_findings, summary = self._analyze_file(
                    file, digests[file]
                )
                analyzed += 1
                findings.extend(file_findings)
                if cache is not None:
                    cache.store(file, digests[file], file_findings, summary)
            if summary is not None:
                summaries.append(summary)
        findings.extend(self._project_findings(summaries))
        if cache is not None:
            cache.save()
        self.last_stats = AnalysisStats(
            files_checked=len(files),
            analyzed=analyzed,
            cached=len(files) - analyzed,
        )
        return sorted(findings)

    # -- internals ------------------------------------------------------
    def _collect_files(self, paths: Iterable["Path | str"]) -> List[Path]:
        files: List[Path] = []
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(entry.rglob("*.py")))
            elif entry.exists():
                files.append(entry)
            else:
                raise ConfigurationError(
                    f"reprolint path {str(entry)!r}: does not exist"
                )
        if self.config.exclude:
            files = [
                file
                for file in files
                if not any(
                    pattern in file.as_posix()
                    for pattern in self.config.exclude
                )
            ]
        return files

    def _analyze_file(
        self, path: Path, sha256: str
    ) -> Tuple[List[Finding], Optional[Any]]:
        """Module-rule findings and the summary of one file.

        Unreadable, undecodable and unparsable files yield an RPL000
        finding and no summary (the project graph simply omits them).
        """
        from . import graph as graphlib

        try:
            source = path.read_text(encoding="utf-8")
        except UnicodeDecodeError as exc:
            return [_decode_error_finding(path, exc)], None
        except OSError as exc:
            raise ConfigurationError(
                f"reprolint path {str(path)!r}: cannot read: {exc}"
            ) from exc
        try:
            module = ModuleContext(path, source, self.config)
        except SyntaxError as exc:
            return [_syntax_error_finding(path, exc)], None
        summary = graphlib.extract_summary(
            module, graphlib.module_name_for(path), sha256
        )
        return self._run_module_rules(module), summary

    def _run_module_rules(self, module: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for active in self.module_rules:
            findings.extend(active.check(module))
        return sorted(findings)

    def _project_findings(self, summaries: Sequence[Any]) -> List[Finding]:
        if not self.project_rules or not summaries:
            return []
        from .graph import ProjectGraph

        graph = ProjectGraph(summaries, self.config)
        findings: List[Finding] = []
        for active in self.project_rules:
            findings.extend(active.check_project(graph))  # type: ignore[attr-defined]
        return findings


def _sha256_text(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _sha256_path(path: Path) -> str:
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return ""


def _syntax_error_finding(path: Path, exc: SyntaxError) -> Finding:
    return Finding(
        path=str(path),
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        rule="RPL000",
        message=f"syntax error: {exc.msg}",
    )


def _decode_error_finding(path: Path, exc: UnicodeDecodeError) -> Finding:
    return Finding(
        path=str(path),
        line=1,
        col=1,
        rule="RPL000",
        message=f"source is not valid UTF-8: {exc.reason} at byte {exc.start}",
    )


def report_to_dict(
    findings: Sequence[Finding], files_checked: int
) -> Dict[str, Any]:
    """The ``--json`` report document."""
    return {
        "version": REPORT_VERSION,
        "files_checked": files_checked,
        "findings": [finding.to_dict() for finding in findings],
        "rules": {
            rule_id: {
                "name": REGISTRY[rule_id].name,
                "rationale": REGISTRY[rule_id].rationale,
            }
            for rule_id in sorted(REGISTRY)
        },
    }


def iter_python_files(paths: Iterable["Path | str"]) -> Iterator[Path]:
    """Every ``*.py`` file the given paths name (dirs recurse)."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                yield file
        elif entry.exists():
            yield entry
