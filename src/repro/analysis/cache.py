"""The incremental analysis cache: skip files nothing relevant touched.

One JSON file (``.reprolint_cache.json`` at the repo root by default,
gitignored) maps each analyzed file to its content hash, its
module-rule findings and its serialized
:class:`~repro.analysis.graph.ModuleSummary`.  On the next run a file
is *reused* — not re-parsed, not re-linted — when

* its own content hash is unchanged, **and**
* every project module it imports (transitively) is unchanged too.

The second condition is the graph-aware part: module-rule findings are
per-file, but the *summary* feeds the interprocedural rules, and a
changed import can change what a dependent's references resolve to —
so editing one leaf module re-analyzes exactly that module plus its
dependents.  Project rules themselves always re-run, over the full
summary graph (summaries are small; parsing is the expensive part), so
interprocedural findings never go stale.

The whole cache is invalidated when the analyzer itself changes: the
``config_key`` folds in the source hashes of ``repro.analysis``, the
registered rule ids, the analyzer configuration and the wire-snapshot
content (RPL003 findings depend on it).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .core import REGISTRY, AnalyzerConfig, Finding
from .graph import ModuleSummary, ProjectGraph, module_name_for
from . import wire

#: Wire-shape version of the cache file; bumping drops every entry.
CACHE_VERSION = 1

#: Default cache filename, resolved against the repo root.
DEFAULT_CACHE_NAME = ".reprolint_cache.json"


def compute_config_key(config: AnalyzerConfig) -> str:
    """A hash that changes whenever cached results could change.

    Folds in the analyzer's own source code (any edit to the analysis
    package invalidates everything), the registered rule ids, the
    relevant config fields, and the wire-snapshot content RPL003
    findings derive from.
    """
    digest = hashlib.sha256()
    package_dir = Path(__file__).parent
    for source in sorted(package_dir.glob("*.py")):
        digest.update(source.name.encode("utf-8"))
        try:
            digest.update(source.read_bytes())
        except OSError:  # pragma: no cover - unreadable own source
            continue
    digest.update(",".join(sorted(REGISTRY)).encode("utf-8"))
    fields = {
        "purity_modules": list(config.purity_modules),
        "wire_modules": list(config.wire_modules),
        "select": None if config.select is None else sorted(config.select),
        "exclude": list(config.exclude),
        "doc_files": list(config.doc_files),
    }
    digest.update(json.dumps(fields, sort_keys=True).encode("utf-8"))
    snapshot_path = (
        config.wire_snapshot
        if config.wire_snapshot is not None
        else _default_snapshot_path()
    )
    if snapshot_path is not None:
        try:
            digest.update(Path(snapshot_path).read_bytes())
        except OSError:
            pass  # absent snapshot: RPL003 skips itself, key stays stable
    return digest.hexdigest()


def _default_snapshot_path() -> Optional[Path]:
    root = wire.find_repo_root(Path.cwd())
    if root is None:
        return None
    return root / wire.DEFAULT_SNAPSHOT_RELPATH


def default_cache_path() -> Optional[Path]:
    """``.reprolint_cache.json`` under the repo root (None outside one)."""
    root = wire.find_repo_root(Path.cwd())
    if root is None:
        return None
    return root / DEFAULT_CACHE_NAME


class AnalysisCache:
    """Per-file findings + summaries keyed by content hash."""

    def __init__(self, path: Path, config_key: str) -> None:
        self.path = Path(path)
        self.config_key = config_key
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self._load()

    # -- persistence -----------------------------------------------------
    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # missing or corrupt: start cold
        if not isinstance(raw, dict):
            return
        if raw.get("version") != CACHE_VERSION:
            return
        if raw.get("config_key") != self.config_key:
            return  # analyzer/config changed: every entry is suspect
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def save(self) -> None:
        """Atomically persist the cache (no-op when nothing changed)."""
        if not self._dirty:
            return
        document = {
            "version": CACHE_VERSION,
            "config_key": self.config_key,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(document, stream)
            os.replace(tmp_name, self.path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - already gone
                pass
            raise
        self._dirty = False

    # -- keying ----------------------------------------------------------
    @staticmethod
    def _key(path: Path) -> str:
        try:
            return path.resolve().as_posix()
        except OSError:  # pragma: no cover - unresolvable path
            return path.as_posix()

    # -- planning --------------------------------------------------------
    def plan(
        self,
        files: List[Path],
        digests: Dict[Path, str],
        config: AnalyzerConfig,
    ) -> Set[Path]:
        """The subset of ``files`` whose cached results are reusable.

        A file must be content-unchanged *and* import (transitively,
        within ``files``) only content-unchanged modules.
        """
        names: Dict[Path, str] = {
            path: module_name_for(path) for path in files
        }
        summaries: Dict[Path, Optional[ModuleSummary]] = {}
        changed: Set[Path] = set()
        for path in files:
            entry = self._entries.get(self._key(path))
            if entry is None or entry.get("sha256") != digests.get(path):
                changed.add(path)
                continue
            raw_summary = entry.get("summary")
            summary = (
                ModuleSummary.from_dict(raw_summary)
                if raw_summary is not None
                else None
            )
            if raw_summary is not None and summary is None:
                changed.add(path)  # serialized with an older SUMMARY_VERSION
                continue
            summaries[path] = summary
        changed_names = {names[path] for path in changed}
        # Fixpoint over reverse import edges: an unchanged module whose
        # (cached, hence accurate) imports name a changed module is
        # itself invalid, and transitively so.
        progress = True
        while progress:
            progress = False
            for path in files:
                if path in changed:
                    continue
                summary = summaries.get(path)
                if summary is None:
                    continue  # unparsable file: nothing depends on it
                if self._imported_names(summary) & changed_names:
                    changed.add(path)
                    changed_names.add(names[path])
                    progress = True
        return set(files) - changed

    @staticmethod
    def _imported_names(summary: ModuleSummary) -> Set[str]:
        """Absolute module names a summary's imports could refer to."""
        imported: Set[str] = set()
        for record in summary.imports:
            if record.kind == "import":
                imported.update(target for target, _bound in record.names)
                continue
            source = ProjectGraph.absolute_import(summary, record)
            if source is None:
                continue
            imported.add(source)
            imported.update(
                f"{source}.{name}"
                for name, _bound in record.names
                if name != "*"
            )
        return imported

    # -- entries ---------------------------------------------------------
    def load_entry(
        self, path: Path
    ) -> Tuple[List[Finding], Optional[ModuleSummary]]:
        """The cached findings + summary of one planned-reusable file."""
        entry = self._entries[self._key(path)]
        findings = [
            Finding(
                path=f["path"],
                line=f["line"],
                col=f["col"],
                rule=f["rule"],
                message=f["message"],
            )
            for f in entry.get("findings", ())
        ]
        raw_summary = entry.get("summary")
        summary = (
            ModuleSummary.from_dict(raw_summary)
            if raw_summary is not None
            else None
        )
        return findings, summary

    def store(
        self,
        path: Path,
        sha256: str,
        findings: Iterable[Finding],
        summary: Optional[ModuleSummary],
    ) -> None:
        self._entries[self._key(path)] = {
            "sha256": sha256,
            "findings": [finding.to_dict() for finding in findings],
            "summary": None if summary is None else summary.to_dict(),
        }
        self._dirty = True


__all__ = [
    "AnalysisCache",
    "CACHE_VERSION",
    "DEFAULT_CACHE_NAME",
    "compute_config_key",
    "default_cache_path",
]
