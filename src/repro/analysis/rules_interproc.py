"""The interprocedural RPL rules: checks that cross module boundaries.

These rules run once per analysis over the
:class:`~repro.analysis.graph.ProjectGraph` (see
``docs/analysis-architecture.md``), not once per file.  Each one
encodes a bug class the per-file rules structurally cannot see:

* **RPL007** — module-level mutable state read by process-pool workers
  but mutated without a lock, a worker-initializer reset, or an
  explicit ``# reprolint: fork-safe`` marker (the PR-4 ``DEFAULT_CACHE``
  fork-inheritance bug, generalized);
* **RPL008** — unit-suffix values flowing into parameters or out of
  returns with a different suffix, across call sites the graph can
  resolve (RPL001 only sees arithmetic inside one expression);
* **RPL009** — export/reachability drift: ``__all__`` entries and
  ``from``-imports naming symbols that no longer exist, dead private
  functions, and documented ``repro.*`` symbols missing from the code.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import Finding, ProjectRule, rule
from .graph import (
    CallArg,
    CallSite,
    FuncKey,
    FunctionSummary,
    ModuleSummary,
    MutationSite,
    ProjectGraph,
)
from .rules import UNIT_DIMENSIONS, unit_suffix

#: Backticked dotted repro.* names in markdown docs (RPL009 part d).
_DOC_SYMBOL_RE = re.compile(r"``?(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)``?")

#: Markdown inline links (RPL009 part e): ``[text](target)``.
_DOC_LINK_RE = re.compile(r"\[[^\]\n]*\]\(([^)\s]+)\)")

#: Module-level wire version constants (RPL009 part f): every
#: ``*_VERSION`` constant of the serialization layer must be pinned to
#: exactly one docs page, so the normative spec cannot fork.
_WIRE_CONST_RE = re.compile(r"\A[A-Z][A-Z0-9_]*_VERSION\Z")

#: The module whose version constants part (f) audits.
_WIRE_MODULE = "repro.io.serialization"


# ---------------------------------------------------------------------------
# RPL007 — worker-state safety
# ---------------------------------------------------------------------------
@rule
class WorkerStateSafetyRule(ProjectRule):
    """Mutable globals read by pool workers need a fork-safety story."""

    id = "RPL007"
    name = "worker-state-safety"
    rationale = (
        "PR 4's worst bug: forked workers inherited a parent-populated "
        "DEFAULT_CACHE, silently serving stale batch results.  Any "
        "module-level mutable object that worker-reachable code reads "
        "and parent code mutates is the same hazard.  Every such "
        "global needs one of: a module-level lock around every "
        "mutation, a reset in the pool's worker initializer, or an "
        "explicit '# reprolint: fork-safe' marker stating why it is "
        "safe (e.g. populated only at import time)."
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        submit_roots = [key for key, _, _ in graph.worker_entries("submit")]
        if not submit_roots:
            return
        init_roots = [key for key, _, _ in graph.worker_entries("initializer")]
        reach_worker = graph.reachable_from(submit_roots)
        reach_init = graph.reachable_from(init_roots)
        mutations = self._resolved_mutations(graph)
        for module_name in sorted(graph.modules):
            summary = graph.modules[module_name]
            for var in summary.module_globals:
                if not var.mutable or var.fork_safe:
                    continue
                key = (module_name, var.name)
                # Import-time (<module>) mutations run before any fork
                # and are inherently single-threaded; only mutations
                # from function bodies are hazardous.
                sites = [
                    s for s in mutations.get(key, []) if s[1] != "<module>"
                ]
                if not sites:
                    continue
                witness = self._worker_witness(graph, reach_worker, key)
                if witness is None:
                    continue
                if self._reset_in_initializer(reach_init, sites):
                    continue
                if self._all_mutations_locked(graph, sites):
                    continue
                mutated_at = ", ".join(
                    sorted(
                        {
                            f"{mod}.{fn} (line {site.lineno})"
                            for mod, fn, site in sites
                        }
                    )
                )
                chain = " -> ".join(witness)
                yield from self.project_finding(
                    graph,
                    summary.path,
                    var.lineno,
                    1,
                    f"module-level mutable state {var.name!r} is read by "
                    f"process-pool worker code ({chain}) but mutated by "
                    f"{mutated_at} without a lock, worker-initializer "
                    f"reset, or '# reprolint: fork-safe' marker; forked "
                    f"workers inherit whatever the parent mutated",
                )

    @staticmethod
    def _resolved_mutations(
        graph: ProjectGraph,
    ) -> Dict[Tuple[str, str], List[Tuple[str, str, MutationSite]]]:
        """Every mutation site, resolved to the global it writes."""
        resolved: Dict[Tuple[str, str], List[Tuple[str, str, MutationSite]]] = {}
        for summary in graph.by_path.values():
            for function in summary.functions:
                for site in function.mutations:
                    target = graph.resolve_global(summary.module, site.target)
                    if target is None:
                        continue
                    key = (target[0], target[1].name)
                    resolved.setdefault(key, []).append(
                        (summary.module, function.name, site)
                    )
        return resolved

    @staticmethod
    def _worker_witness(
        graph: ProjectGraph,
        reach_worker: Dict[FuncKey, Optional[FuncKey]],
        target: Tuple[str, str],
    ) -> Optional[List[str]]:
        """Entry-to-reader chain proving a worker reads the global."""
        for func_key in sorted(reach_worker):
            function = graph.function_at(*func_key)
            if function is None:
                continue
            for ref in function.refs:
                resolved = graph.resolve_global(func_key[0], ref)
                if resolved is not None and (
                    resolved[0],
                    resolved[1].name,
                ) == target:
                    return graph.witness_chain(reach_worker, func_key)
        return None

    @staticmethod
    def _reset_in_initializer(
        reach_init: Dict[FuncKey, Optional[FuncKey]],
        sites: List[Tuple[str, str, MutationSite]],
    ) -> bool:
        """Whether any mutation runs inside the worker initializer."""
        return any((mod, fn) in reach_init for mod, fn, _ in sites)

    @staticmethod
    def _all_mutations_locked(
        graph: ProjectGraph, sites: List[Tuple[str, str, MutationSite]]
    ) -> bool:
        """Whether every mutation is under a module-level lock guard."""
        return all(
            any(graph.is_lock(mod, guard) for guard in site.guards)
            for mod, _, site in sites
        )


# ---------------------------------------------------------------------------
# RPL008 — units-flow
# ---------------------------------------------------------------------------
@rule
class UnitsFlowRule(ProjectRule):
    """Unit suffixes must survive function calls across modules."""

    id = "RPL008"
    name = "units-flow"
    rationale = (
        "RPL001 keeps single expressions dimensionally consistent, but "
        "the suffix discipline also types function signatures: a "
        "hover_time_s value passed to a timeout_ms parameter two "
        "modules away is the same bug with a call boundary hiding it.  "
        "The project graph resolves call sites through imports and "
        "re-exports and checks argument and return suffixes against "
        "the callee's signature."
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for path in sorted(graph.by_path):
            summary = graph.by_path[path]
            for function in summary.functions:
                for call in function.calls:
                    yield from self._check_call(graph, summary, call)

    def _check_call(
        self, graph: ProjectGraph, summary: ModuleSummary, call: "CallSite"
    ) -> Iterator[Finding]:
        resolved = graph.resolve_function(summary.module, call.callee)
        if resolved is None:
            return
        callee_module, callee = resolved
        if callee.decorated or callee.name == "<module>":
            return  # wrappers change signatures; stay conservative
        qualified = f"{callee_module}.{callee.name}"
        if not call.has_star:  # splats shift positions; skip the site
            for arg in call.args:
                param = self._matched_param(callee, arg)
                if param is None:
                    continue
                param_suffix = unit_suffix(param)
                if not param_suffix or param_suffix == arg.suffix:
                    continue
                yield from self.project_finding(
                    graph,
                    summary.path,
                    call.lineno,
                    call.col + 1,
                    self._mismatch_message(
                        arg.display, arg.suffix, param, param_suffix, qualified
                    ),
                )
        if call.assigned_suffix:
            return_suffix = unit_suffix(callee.name)
            if return_suffix and return_suffix != call.assigned_suffix:
                yield from self.project_finding(
                    graph,
                    summary.path,
                    call.lineno,
                    call.col + 1,
                    f"assigns the result of {qualified}() (unit "
                    f"'{return_suffix}') to {call.assigned_display!r} "
                    f"(unit '{call.assigned_suffix}'); convert through "
                    f"repro.units or rename the target",
                )

    @staticmethod
    def _matched_param(callee: FunctionSummary, arg: "CallArg") -> Optional[str]:
        if arg.position >= 0:
            index = arg.position
            if callee.is_method:
                index += 1  # account for self/cls
            if index < callee.n_positional and index < len(callee.params):
                name = callee.params[index]
                return None if name in ("self", "cls") else name
            return None  # lands in *args (or is out of range)
        if arg.keyword in callee.params:
            return arg.keyword
        return None  # absorbed by **kwargs, or a signature mismatch

    @staticmethod
    def _mismatch_message(
        display: str, arg_suffix: str, param: str, param_suffix: str, callee: str
    ) -> str:
        arg_dim = UNIT_DIMENSIONS[arg_suffix]
        param_dim = UNIT_DIMENSIONS[param_suffix]
        if arg_dim != param_dim:
            return (
                f"passes {display!r} ({arg_dim}, '{arg_suffix}') to "
                f"parameter {param!r} ({param_dim}, '{param_suffix}') of "
                f"{callee}(); convert through repro.units first"
            )
        return (
            f"passes {display!r} (unit '{arg_suffix}') to parameter "
            f"{param!r} (unit '{param_suffix}') of {callee}(); same "
            f"dimension but a different scale — convert through "
            f"repro.units first"
        )


# ---------------------------------------------------------------------------
# RPL009 — export/reachability drift
# ---------------------------------------------------------------------------
@rule
class ExportDriftRule(ProjectRule):
    """Exports, imports, docs and private helpers must stay reachable."""

    id = "RPL009"
    name = "export-drift"
    rationale = (
        "As the package grew package-by-package (PRs 1-6), __init__ "
        "re-export lists, private helpers and documented symbol names "
        "each drifted at least once.  The project graph makes the "
        "checks exact: every __all__ entry and from-import must "
        "resolve to a real symbol, every top-level private function "
        "must be referenced somewhere, and every backticked repro.* "
        "symbol in the docs must still exist.  The docs pages are "
        "contract surface too: their relative cross-links must "
        "resolve, and every wire *_VERSION constant must be "
        "documented on exactly one docs page (a version constant "
        "described in two places is a spec fork waiting to happen)."
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        docs = self._read_doc_files(graph)
        yield from self._check_all_exports(graph)
        yield from self._check_import_targets(graph)
        yield from self._check_dead_privates(graph)
        yield from self._check_docs(graph, docs)
        yield from self._check_doc_links(docs)
        yield from self._check_wire_constants(graph, docs)

    # -- (a) __all__ entries that no longer resolve ----------------------
    def _check_all_exports(self, graph: ProjectGraph) -> Iterator[Finding]:
        for module_name in sorted(graph.modules):
            summary = graph.modules[module_name]
            if summary.all_names is None or summary.dynamic_exports:
                continue
            if graph.star_sources(module_name):
                continue  # star imports can satisfy anything
            bindings = graph.bindings(module_name)
            for name in summary.all_names:
                if name in bindings:
                    continue
                if f"{module_name}.{name}" in graph.modules:
                    continue  # a submodule export
                yield from self.project_finding(
                    graph,
                    summary.path,
                    summary.all_lineno,
                    1,
                    f"__all__ lists {name!r} but the module neither "
                    f"defines nor imports it; remove the entry or "
                    f"restore the symbol",
                )

    # -- (b) from-imports naming missing symbols -------------------------
    def _check_import_targets(self, graph: ProjectGraph) -> Iterator[Finding]:
        for path in sorted(graph.by_path):
            summary = graph.by_path[path]
            for record in summary.imports:
                if record.kind != "from":
                    continue
                source = graph.absolute_import(summary, record)
                if source is None or source not in graph.modules:
                    continue
                if graph.modules[source].dynamic_exports:
                    continue
                for name, _bound in record.names:
                    if name == "*":
                        continue
                    if graph.resolve_name(source, name) is not None:
                        continue
                    if f"{source}.{name}" in graph.modules:
                        continue
                    yield from self.project_finding(
                        graph,
                        summary.path,
                        record.lineno,
                        1,
                        f"imports {name!r} from {source}, which neither "
                        f"defines nor re-exports it (export drift)",
                    )

    # -- (c) dead private functions --------------------------------------
    def _check_dead_privates(self, graph: ProjectGraph) -> Iterator[Finding]:
        referenced: Set[str] = set()
        for summary in graph.by_path.values():
            referenced.update(summary.all_refs)
        for module_name in sorted(graph.modules):
            summary = graph.modules[module_name]
            for name, kind in sorted(summary.symbols.items()):
                if kind != "function":
                    continue
                if not name.startswith("_") or name.startswith("__"):
                    continue
                function = graph.function_at(module_name, name)
                if function is None or function.decorated:
                    continue
                if name in referenced:
                    continue
                yield from self.project_finding(
                    graph,
                    summary.path,
                    summary.symbol_lines.get(name, function.lineno),
                    1,
                    f"private function {name!r} is never referenced "
                    f"anywhere in the analyzed tree; delete it or wire "
                    f"it back in",
                )

    @staticmethod
    def _read_doc_files(graph: ProjectGraph) -> List[Tuple[Path, str]]:
        """Each configured doc file with its text (unreadable skipped)."""
        docs: List[Tuple[Path, str]] = []
        for doc in graph.config.doc_files:
            doc_path = Path(doc)
            try:
                text = doc_path.read_text(encoding="utf-8")
            except OSError:
                continue  # a missing doc file is not this rule's problem
            docs.append((doc_path, text))
        return docs

    # -- (d) documented symbols that no longer exist ---------------------
    def _check_docs(
        self, graph: ProjectGraph, docs: List[Tuple[Path, str]]
    ) -> Iterator[Finding]:
        for doc_path, text in docs:
            for match in _DOC_SYMBOL_RE.finditer(text):
                dotted = match.group(1)
                missing = self._doc_symbol_missing(graph, dotted)
                if not missing:
                    continue
                line = text.count("\n", 0, match.start()) + 1
                yield Finding(
                    path=doc_path.as_posix(),
                    line=line,
                    col=match.start() - (text.rfind("\n", 0, match.start()) + 1) + 1,
                    rule=self.id,
                    message=(
                        f"documents {dotted!r} but the symbol no longer "
                        f"exists in the analyzed tree; update the doc or "
                        f"restore the symbol"
                    ),
                )

    @staticmethod
    def _doc_symbol_missing(graph: ProjectGraph, dotted: str) -> bool:
        """True when a documented repro.* name resolves to nothing."""
        parts = dotted.split(".")
        prefix_len = 0
        for k in range(len(parts), 0, -1):
            if ".".join(parts[:k]) in graph.modules:
                prefix_len = k
                break
        if prefix_len == 0:
            return False  # module not analyzed; cannot judge
        if prefix_len == len(parts):
            return False  # the doc names a module that exists
        module_name = ".".join(parts[:prefix_len])
        symbol = parts[prefix_len]
        summary = graph.modules[module_name]
        if summary.dynamic_exports or graph.star_sources(module_name):
            return False
        if symbol in graph.bindings(module_name):
            return False
        return True

    # -- (e) doc cross-links that do not resolve -------------------------
    def _check_doc_links(
        self, docs: List[Tuple[Path, str]]
    ) -> Iterator[Finding]:
        """Relative markdown links between doc pages must resolve.

        Only filesystem-relative targets are judged (external URLs and
        ``#fragment`` anchors are skipped): a broken ``(operations.md)``
        link strands readers of the normative spec pages.
        """
        for doc_path, text in docs:
            for match in _DOC_LINK_RE.finditer(text):
                target = match.group(1)
                if target.startswith(
                    ("http://", "https://", "mailto:", "#")
                ):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                if (doc_path.parent / relative).exists():
                    continue
                line = text.count("\n", 0, match.start()) + 1
                col = (
                    match.start()
                    - (text.rfind("\n", 0, match.start()) + 1)
                    + 1
                )
                yield Finding(
                    path=doc_path.as_posix(),
                    line=line,
                    col=col,
                    rule=self.id,
                    message=(
                        f"cross-link target {target!r} does not resolve "
                        f"({relative} is missing next to this page); "
                        f"fix the link or restore the file"
                    ),
                )

    # -- (f) wire version constants pinned to exactly one docs page ------
    def _check_wire_constants(
        self, graph: ProjectGraph, docs: List[Tuple[Path, str]]
    ) -> Iterator[Finding]:
        """Every ``*_VERSION`` wire constant on exactly one docs page.

        The serialization layer's version constants are the handles of
        the normative wire specs; a constant documented nowhere has no
        spec, and one documented on two pages will drift apart.  Only
        pages under a ``docs/`` directory count (the README may mention
        formats generically); the check is skipped entirely when no
        such pages are configured or the serialization module is not in
        the analyzed tree, so partial-tree runs stay quiet.
        """
        module = graph.modules.get(_WIRE_MODULE)
        if module is None:
            return
        pages = [
            (path, text)
            for path, text in docs
            if path.parent.name == "docs"
        ]
        if not pages:
            return
        for name in sorted(module.symbols):
            if module.symbols[name] != "const":
                continue
            if not _WIRE_CONST_RE.match(name):
                continue
            mention = re.compile(rf"\b{re.escape(name)}\b")
            hits = [
                path.name for path, text in pages if mention.search(text)
            ]
            if len(hits) == 1:
                continue
            if not hits:
                message = (
                    f"wire version constant {name!r} is not documented "
                    f"on any docs page; give its format a normative "
                    f"home (see docs/distributed-protocol.md for the "
                    f"pattern)"
                )
            else:
                message = (
                    f"wire version constant {name!r} is documented on "
                    f"{len(hits)} docs pages ({', '.join(sorted(hits))}); "
                    f"pin it to exactly one page so the spec cannot fork"
                )
            yield from self.project_finding(
                graph,
                module.path,
                module.symbol_lines.get(name, 1),
                1,
                message,
            )
