"""Wire-format fingerprints: the data behind RPL003 and its snapshot.

The serialization layer pins every wire format to a version constant
(:data:`repro.io.serialization.MANIFEST_VERSION` et al.).  The guard
has two halves sharing one committed snapshot
(``tests/data/wire_fingerprints.json``):

* **static** (RPL003): a SHA-256 fingerprint of each dict-builder's
  normalized AST (docstrings stripped, no line numbers), so *any*
  structural edit to a builder is visible to the linter without
  importing the code;
* **runtime** (``tests/test_wire_schema.py``): the recursive key/type
  *shape* of sample documents each builder actually produces, so edits
  that change the emitted JSON are caught even when routed around the
  builder's own source.

Either half failing means: bump the matching ``*_VERSION`` constant
and regenerate the snapshot with ``reprolint --update-wire-snapshot``.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError

#: Version of the snapshot document itself.
SNAPSHOT_VERSION = 1

#: Default snapshot location, relative to the repo root (the first
#: ancestor directory of the analyzed file holding ``pyproject.toml``).
DEFAULT_SNAPSHOT_RELPATH = Path("tests") / "data" / "wire_fingerprints.json"


@dataclass(frozen=True)
class WireBuilder:
    """One guarded dict builder in :mod:`repro.io.serialization`."""

    #: Function whose AST is fingerprinted.
    name: str
    #: Module-level version constant that must bump with the shape.
    version_const: str
    #: Module-level constants folded into the fingerprint (field
    #: tuples the builder iterates, so reordering/renaming them is a
    #: structural change even though the function body is untouched).
    includes: Tuple[str, ...] = ()


#: The guarded builders: manifest / shard-record (and the batch-result
#: and design-matrix documents embedded in shard records), trace events
#: and telemetry documents, and the serve HTTP envelopes.
BUILDER_SPECS: Tuple[WireBuilder, ...] = (
    WireBuilder("shard_manifest_to_dict", "MANIFEST_VERSION", ("_MANIFEST_FIELDS",)),
    WireBuilder("shard_record_to_dict", "MANIFEST_VERSION"),
    WireBuilder("design_matrix_to_dict", "MANIFEST_VERSION", ("_MATRIX_COLUMNS",)),
    WireBuilder("batch_result_to_dict", "MANIFEST_VERSION", ("_RESULT_COLUMNS",)),
    WireBuilder(
        "lease_record_to_dict", "DISTRIB_PROTOCOL_VERSION",
        ("_LEASE_FIELDS",),
    ),
    WireBuilder(
        "lease_record_from_dict", "DISTRIB_PROTOCOL_VERSION",
        ("_LEASE_FIELDS",),
    ),
    WireBuilder("trace_event_to_dict", "TRACE_EVENT_VERSION"),
    WireBuilder("telemetry_from_dict", "TELEMETRY_VERSION"),
    # Serve envelopes all share one generic emitter + field table, so
    # each builder folds both into its fingerprint: reshaping any
    # envelope is a structural change wherever it happens.
    WireBuilder(
        "serve_ack_to_dict", "SERVE_PROTOCOL_VERSION",
        ("_serve_envelope", "_SERVE_ENVELOPE_FIELDS"),
    ),
    WireBuilder(
        "serve_status_to_dict", "SERVE_PROTOCOL_VERSION",
        ("_serve_envelope", "_SERVE_ENVELOPE_FIELDS"),
    ),
    WireBuilder(
        "serve_progress_to_dict", "SERVE_PROTOCOL_VERSION",
        ("_serve_envelope", "_SERVE_ENVELOPE_FIELDS"),
    ),
    WireBuilder(
        "serve_error_to_dict", "SERVE_PROTOCOL_VERSION",
        ("_serve_envelope", "_SERVE_ENVELOPE_FIELDS"),
    ),
    WireBuilder(
        "serve_stats_to_dict", "SERVE_PROTOCOL_VERSION",
        ("_serve_envelope", "_SERVE_ENVELOPE_FIELDS"),
    ),
    WireBuilder(
        "serve_envelope_from_dict", "SERVE_PROTOCOL_VERSION",
        ("_SERVE_ENVELOPE_FIELDS", "STUDY_STATES"),
    ),
)


def _strip_docstring(node: ast.AST) -> ast.AST:
    body = getattr(node, "body", None)
    if (
        isinstance(body, list)
        and body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        node.body = body[1:] or [ast.Pass()]  # type: ignore[attr-defined]
    return node


def _find_definition(tree: ast.Module, name: str) -> Optional[ast.AST]:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
        elif isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if name in targets:
                return node
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node
    return None


def function_fingerprint(
    tree: ast.Module, builder: WireBuilder
) -> Optional[str]:
    """SHA-256 of the builder's normalized AST, or None if absent.

    Docstrings are stripped (prose edits never force version bumps) and
    ``ast.dump`` omits line/column attributes by default, so the hash
    moves only when the *structure* of the builder (or one of its
    ``includes`` constants) changes.
    """
    definition = _find_definition(tree, builder.name)
    if definition is None:
        return None
    parts = [ast.dump(_strip_docstring(definition))]
    for const in builder.includes:
        node = _find_definition(tree, const)
        parts.append("<missing>" if node is None else ast.dump(node))
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()


def module_version_value(tree: ast.Module, const: str) -> Optional[int]:
    """The integer value of a module-level ``X_VERSION = n`` constant."""
    node = _find_definition(tree, const)
    value = getattr(node, "value", None)
    if isinstance(value, ast.Constant) and isinstance(value.value, int):
        return value.value
    return None


def ast_snapshot_of_source(source: str) -> Dict[str, Dict[str, Any]]:
    """The ``builders`` section of the snapshot, from module source."""
    tree = ast.parse(source)
    builders: Dict[str, Dict[str, Any]] = {}
    for builder in BUILDER_SPECS:
        fingerprint = function_fingerprint(tree, builder)
        if fingerprint is None:
            continue
        builders[builder.name] = {
            "version_const": builder.version_const,
            "version": module_version_value(tree, builder.version_const),
            "ast_sha256": fingerprint,
        }
    return builders


# ---------------------------------------------------------------------------
# Runtime shapes (the dynamic half; used by tests and --update)
# ---------------------------------------------------------------------------
def shape_of(value: Any) -> Any:
    """A JSON-stable structural descriptor of a wire document.

    Dicts map sorted keys to element shapes, lists collapse to the
    shape of their first element (wire lists are homogeneous columns),
    scalars become their type name.  Two documents with the same keys
    and scalar types anywhere in the tree have equal shapes.
    """
    if isinstance(value, dict):
        return {str(key): shape_of(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return ["empty"] if not value else [shape_of(value[0])]
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    return type(value).__name__


def runtime_shapes() -> Dict[str, Any]:
    """Shapes of sample documents from every live builder.

    Imports the serialization layer and builds one representative
    document per wire format (manifest, shard record, trace event,
    telemetry), shaping each with :func:`shape_of`.  Optional branches
    are exercised (top-k ``local_indices``, extras columns, span
    attributes) so the shapes cover the full key set.
    """
    import numpy as np

    from ..batch.engine import evaluate_matrix
    from ..batch.executor import ShardManifest, ShardResult
    from ..batch.matrix import DesignMatrix
    from ..io import serialization as ser
    from ..obs.tracer import SpanRecord, Tracer

    matrix = DesignMatrix.from_arrays(
        sensing_range_m=(10.0, 12.0),
        a_max=(5.0, 6.0),
        f_sensor_hz=(60.0, 60.0),
        f_compute_hz=(30.0, 45.0),
    )
    batch = evaluate_matrix(matrix, cache=None)
    manifest = ShardManifest(
        kind="study",
        digest="0" * 16,
        total_rows=2,
        chunk_rows=1,
        n_shards=2,
        knee_fraction=None,
        tolerance=0.05,
        reduce={"k": 1, "by": "safe_velocity", "descending": True},
    )
    record = ShardResult(
        index=0,
        start=0,
        stop=4,
        batch=batch,
        local_indices=np.asarray([0, 1], dtype=np.intp),
        extras={"total_mass_g": np.asarray([100.0, 101.0])},
    )
    from ..distrib.lease import LeaseRecord

    lease = LeaseRecord(
        spec_digest="0" * 32,
        shard_index=3,
        owner="host-a-12041",
        lease_ttl_s=30.0,
        heartbeats=7,
    )
    span = SpanRecord(
        name="study.execute",
        start_s=0.0,
        duration_s=0.25,
        tid=1,
        attributes={"rows": 2},
    )
    tracer = Tracer()
    with tracer.span("sample", rows=2):
        pass
    tracer.counter("rows.evaluated").add(2)
    tracer.gauge("rows_per_s").set(8.0)

    from ..serve.protocol import (
        ErrorEnvelope,
        ProgressEvent,
        ServeStats,
        StudyAck,
        StudyStatus,
    )

    progress_doc = {
        "done": 1,
        "total": 2,
        "rows_done": 1,
        "rows_total": 2,
        "elapsed_s": 0.5,
        "rows_per_s": 2.0,
        "eta_s": 0.5,
    }
    ack = StudyAck(
        study_id="study-" + "0" * 16,
        state="queued",
        coalesced=False,
        queue_depth=1,
    )
    status = StudyStatus(
        study_id="study-" + "0" * 16,
        state="running",
        spec_digest="0" * 64,
        queue_position=0,
        progress=progress_doc,
        error=None,
        result_ready=False,
    )
    event = ProgressEvent(
        study_id="study-" + "0" * 16,
        seq=1,
        state="running",
        progress=progress_doc,
        final=False,
    )
    error = ErrorEnvelope(
        status=429,
        error="StudyQueueFullError",
        message="study queue is full",
        retry_after_s=2.0,
    )
    stats = ServeStats(
        counters={"serve.studies.coalesced": 7},
        gauges={"serve.queue_depth": 0.0},
    )
    return {
        "shard_manifest": shape_of(ser.shard_manifest_to_dict(manifest)),
        "shard_record": shape_of(ser.shard_record_to_dict(record)),
        "lease_record": shape_of(ser.lease_record_to_dict(lease)),
        "trace_event": shape_of(ser.trace_event_to_dict(span)),
        "telemetry": shape_of(tracer.to_telemetry()),
        "serve_ack": shape_of(ser.serve_ack_to_dict(ack)),
        "serve_status": shape_of(ser.serve_status_to_dict(status)),
        "serve_progress": shape_of(ser.serve_progress_to_dict(event)),
        "serve_error": shape_of(ser.serve_error_to_dict(error)),
        "serve_stats": shape_of(ser.serve_stats_to_dict(stats)),
    }


# ---------------------------------------------------------------------------
# Snapshot IO
# ---------------------------------------------------------------------------
def find_repo_root(start: Path) -> Optional[Path]:
    """The first ancestor of ``start`` containing ``pyproject.toml``."""
    current = start if start.is_dir() else start.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def default_snapshot_path(near: Path) -> Optional[Path]:
    """The committed snapshot next to the repo root owning ``near``."""
    root = find_repo_root(near.resolve())
    if root is None:
        return None
    path = root / DEFAULT_SNAPSHOT_RELPATH
    return path if path.is_file() else None


def load_snapshot(path: Path) -> Dict[str, Any]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"wire snapshot {str(path)!r}: cannot read: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"wire snapshot field '<root>': must be a mapping, got "
            f"{type(data).__name__}"
        )
    version = data.get("version")
    if version != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"wire snapshot field 'version': unsupported version "
            f"{version!r}; this build reads version {SNAPSHOT_VERSION}"
        )
    for key in ("builders", "shapes"):
        if not isinstance(data.get(key), dict):
            raise ConfigurationError(
                f"wire snapshot field {key!r}: must be a mapping, got "
                f"{type(data.get(key)).__name__}"
            )
    return data


def build_snapshot(serialization_source: str) -> Dict[str, Any]:
    """A fresh snapshot document from live code + given module source."""
    return {
        "version": SNAPSHOT_VERSION,
        "builders": ast_snapshot_of_source(serialization_source),
        "shapes": runtime_shapes(),
    }


def write_snapshot(path: Path, snapshot: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
