"""``reprolint`` — the console entry point of :mod:`repro.analysis`.

Usage::

    reprolint [PATHS ...]              # default: src/repro
    reprolint --json src/repro        # machine-readable report
    reprolint --select RPL001,RPL004  # run a subset of rules
    reprolint --list-rules            # the catalog, one rule per block
    reprolint --update-wire-snapshot  # regenerate the RPL003 snapshot

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
errors (argparse) or unreadable inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..errors import ReproError
from .core import (
    REGISTRY,
    Analyzer,
    AnalyzerConfig,
    iter_python_files,
    report_to_dict,
)
from . import wire


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Repo-specific static analysis for the repro package: "
            "units-suffix consistency, error taxonomy, wire-format "
            "versioning, kernel purity, tracer opt-in discipline and "
            "process-pool picklability."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON on stdout",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--wire-snapshot",
        metavar="PATH",
        help=(
            "wire-fingerprint snapshot for RPL003 (default: "
            "tests/data/wire_fingerprints.json under the repo root)"
        ),
    )
    parser.add_argument(
        "--update-wire-snapshot",
        action="store_true",
        help=(
            "regenerate the wire-fingerprint snapshot from the live "
            "serialization module and exit"
        ),
    )
    return parser


def _list_rules() -> str:
    blocks = []
    for rule_id in sorted(REGISTRY):
        cls = REGISTRY[rule_id]
        blocks.append(f"{rule_id} [{cls.name}]\n    {cls.rationale}")
    return "\n\n".join(blocks)


def _update_snapshot(snapshot_arg: Optional[str]) -> int:
    from ..io import serialization

    source_path = Path(serialization.__file__)
    if snapshot_arg is not None:
        snapshot_path = Path(snapshot_arg)
    else:
        root = wire.find_repo_root(Path.cwd()) or wire.find_repo_root(
            source_path
        )
        if root is None:
            print(
                "reprolint: cannot locate the repo root (pyproject.toml); "
                "pass --wire-snapshot PATH explicitly",
                file=sys.stderr,
            )
            return 2
        snapshot_path = root / wire.DEFAULT_SNAPSHOT_RELPATH
    snapshot = wire.build_snapshot(
        source_path.read_text(encoding="utf-8")
    )
    wire.write_snapshot(snapshot_path, snapshot)
    print(f"reprolint: wrote wire snapshot to {snapshot_path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.update_wire_snapshot:
        return _update_snapshot(args.wire_snapshot)

    paths: List[str] = list(args.paths or [])
    if not paths:
        default = Path("src") / "repro"
        if not default.is_dir():
            parser.error(
                "no paths given and default src/repro does not exist "
                "(run from the repo root or name the tree to lint)"
            )
        paths = [str(default)]

    select = None
    if args.select:
        select = tuple(
            part.strip() for part in args.select.split(",") if part.strip()
        )
    config = AnalyzerConfig(
        select=select,
        wire_snapshot=(
            Path(args.wire_snapshot) if args.wire_snapshot else None
        ),
    )
    try:
        analyzer = Analyzer(config)
        findings = analyzer.check_paths(paths)
    except ReproError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    files_checked = sum(1 for _ in iter_python_files(paths))

    if args.json:
        print(json.dumps(report_to_dict(findings, files_checked), indent=2))
    else:
        for finding in findings:
            print(finding.format())
        summary = (
            f"reprolint: {len(findings)} finding(s) in "
            f"{files_checked} file(s)"
            if findings
            else f"reprolint: clean ({files_checked} file(s), "
            f"{len(analyzer.rules)} rule(s))"
        )
        print(summary, file=sys.stderr if findings else sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - module execution hook
    sys.exit(main())
