"""``reprolint`` — the console entry point of :mod:`repro.analysis`.

Usage::

    reprolint [PATHS ...]              # default: src/repro
    reprolint --json src/repro        # machine-readable report
    reprolint --select RPL001,RPL004  # run a subset of rules
    reprolint --list-rules            # the catalog, one rule per block
    reprolint --update-wire-snapshot  # regenerate the RPL003 snapshot
    reprolint --baseline FILE PATHS   # ratchet: fail only on NEW findings
    reprolint --update-baseline       # accept the current findings
    reprolint --sarif out.sarif PATHS # also write a SARIF 2.1.0 report
    reprolint --no-cache PATHS        # force a cold run
    reprolint --stats PATHS           # print analyzed/cached counts

The incremental cache is on by default (``.reprolint_cache.json`` at
the repo root, gitignored): a file re-analyzes only when its content —
or the content of anything it imports — changed.  Exit status: 0 when
clean (or all findings baselined), 1 when any new finding is reported,
2 on usage errors (argparse) or unreadable inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..errors import ReproError
from .core import (
    REGISTRY,
    Analyzer,
    AnalyzerConfig,
    Finding,
    report_to_dict,
)
from . import baseline as baselinelib
from . import cache as cachelib
from . import sarif as sariflib
from . import wire


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Repo-specific static analysis for the repro package: "
            "units-suffix consistency, error taxonomy, wire-format "
            "versioning, kernel purity, tracer opt-in discipline, "
            "process-pool picklability, and the whole-program rules "
            "(worker-state safety, units-flow, export drift)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON on stdout",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        metavar="PATTERN",
        default=[],
        help=(
            "posix-path substring to skip when walking directories "
            "(repeatable; e.g. --exclude tests/data)"
        ),
    )
    parser.add_argument(
        "--wire-snapshot",
        metavar="PATH",
        help=(
            "wire-fingerprint snapshot for RPL003 (default: "
            "tests/data/wire_fingerprints.json under the repo root)"
        ),
    )
    parser.add_argument(
        "--update-wire-snapshot",
        action="store_true",
        help=(
            "regenerate the wire-fingerprint snapshot from the live "
            "serialization module and exit"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "apply a committed baseline: known findings are accepted, "
            "only new ones fail the run "
            f"(default path: {baselinelib.DEFAULT_BASELINE_NAME} at the "
            f"repo root when --update-baseline is used)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental analysis cache (force a cold run)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        help=(
            "incremental cache location (default: "
            f"{cachelib.DEFAULT_CACHE_NAME} at the repo root; the cache "
            "is skipped when no repo root is found)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print analyzed/cached file counts to stderr",
    )
    parser.add_argument(
        "--docs",
        action="append",
        metavar="PATH",
        default=None,
        help=(
            "markdown files RPL009 checks for documented-symbol drift "
            "(repeatable; default: README.md and docs/*.md at the repo "
            "root)"
        ),
    )
    return parser


def _list_rules() -> str:
    blocks = []
    for rule_id in sorted(REGISTRY):
        cls = REGISTRY[rule_id]
        blocks.append(f"{rule_id} [{cls.name}]\n    {cls.rationale}")
    return "\n\n".join(blocks)


def _update_snapshot(snapshot_arg: Optional[str]) -> int:
    from ..io import serialization

    source_path = Path(serialization.__file__)
    if snapshot_arg is not None:
        snapshot_path = Path(snapshot_arg)
    else:
        root = wire.find_repo_root(Path.cwd()) or wire.find_repo_root(
            source_path
        )
        if root is None:
            print(
                "reprolint: cannot locate the repo root (pyproject.toml); "
                "pass --wire-snapshot PATH explicitly",
                file=sys.stderr,
            )
            return 2
        snapshot_path = root / wire.DEFAULT_SNAPSHOT_RELPATH
    snapshot = wire.build_snapshot(
        source_path.read_text(encoding="utf-8")
    )
    wire.write_snapshot(snapshot_path, snapshot)
    print(f"reprolint: wrote wire snapshot to {snapshot_path}")
    return 0


def _parse_select(
    parser: argparse.ArgumentParser, raw: Optional[str]
) -> Optional[Tuple[str, ...]]:
    if raw is None:
        return None
    select = tuple(
        part.strip() for part in raw.split(",") if part.strip()
    )
    if not select:
        parser.error(
            f"--select names no rules (got {raw!r}); known rule ids: "
            f"{', '.join(sorted(REGISTRY))}"
        )
    return select


def _default_doc_files(root: Optional[Path]) -> Tuple[str, ...]:
    if root is None:
        return ()
    docs: List[str] = []
    readme = root / "README.md"
    if readme.is_file():
        docs.append(str(readme))
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        docs.extend(str(path) for path in sorted(docs_dir.glob("*.md")))
    return tuple(docs)


def _open_cache(
    args: argparse.Namespace, config: AnalyzerConfig
) -> Optional[cachelib.AnalysisCache]:
    if args.no_cache:
        return None
    if args.cache is not None:
        cache_path = Path(args.cache)
    else:
        default = cachelib.default_cache_path()
        if default is None:
            return None  # outside a repo: nowhere sensible to put it
        cache_path = default
    return cachelib.AnalysisCache(
        cache_path, cachelib.compute_config_key(config)
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.update_wire_snapshot:
        return _update_snapshot(args.wire_snapshot)

    paths: List[str] = list(args.paths or [])
    if not paths:
        default = Path("src") / "repro"
        if not default.is_dir():
            parser.error(
                "no paths given and default src/repro does not exist "
                "(run from the repo root or name the tree to lint)"
            )
        paths = [str(default)]

    root = wire.find_repo_root(Path.cwd())
    doc_files = (
        tuple(args.docs) if args.docs is not None else _default_doc_files(root)
    )
    config = AnalyzerConfig(
        select=_parse_select(parser, args.select),
        wire_snapshot=(
            Path(args.wire_snapshot) if args.wire_snapshot else None
        ),
        exclude=tuple(args.exclude),
        doc_files=doc_files,
    )
    baseline_root = root if root is not None else Path.cwd()
    try:
        analyzer = Analyzer(config)
        analysis_cache = _open_cache(args, config)
        findings = analyzer.check_paths(paths, cache=analysis_cache)
    except ReproError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else baseline_root / baselinelib.DEFAULT_BASELINE_NAME
        )
        baselinelib.write_baseline(baseline_path, findings, baseline_root)
        print(
            f"reprolint: wrote baseline accepting {len(findings)} "
            f"finding(s) to {baseline_path}"
        )
        return 0

    baselined: List[Finding] = []
    if args.baseline:
        try:
            entries = baselinelib.load_baseline(Path(args.baseline))
        except ReproError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2
        findings, baselined, stale = baselinelib.apply_baseline(
            findings, entries, baseline_root
        )
        for warning in stale:
            print(f"reprolint: warning: {warning}", file=sys.stderr)

    if args.sarif:
        sariflib.write_sarif(
            Path(args.sarif), findings, baseline_root, baselined
        )

    stats = analyzer.last_stats
    files_checked = stats.files_checked if stats is not None else 0
    if args.stats and stats is not None:
        print(
            f"reprolint: {stats.analyzed} file(s) analyzed, "
            f"{stats.cached} from cache",
            file=sys.stderr,
        )

    if args.json:
        report = report_to_dict(findings, files_checked)
        if args.baseline:
            report["baseline"] = {
                "path": args.baseline,
                "suppressed": len(baselined),
            }
        if stats is not None:
            report["stats"] = stats.to_dict()
        print(json.dumps(report, indent=2))
    else:
        for finding in findings:
            print(finding.format())
        suppressed_note = (
            f", {len(baselined)} baselined" if baselined else ""
        )
        summary = (
            f"reprolint: {len(findings)} finding(s) in "
            f"{files_checked} file(s){suppressed_note}"
            if findings
            else f"reprolint: clean ({files_checked} file(s), "
            f"{len(analyzer.rules)} rule(s){suppressed_note})"
        )
        print(summary, file=sys.stderr if findings else sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - module execution hook
    sys.exit(main())
