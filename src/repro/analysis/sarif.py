"""SARIF 2.1.0 export, so CI can annotate PRs with reprolint findings.

One run, one tool (``reprolint``), one result per finding.  Baselined
findings are still exported — reviewers can see the accepted debt —
but carry a ``suppressions`` entry so SARIF consumers (GitHub code
scanning included) hide them by default.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence

from .core import REGISTRY, Finding
from .baseline import normalize_path

#: The SARIF spec version the exporter emits.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptors() -> List[Dict[str, Any]]:
    descriptors = [
        {
            "id": "RPL000",
            "name": "unparsable-source",
            "shortDescription": {"text": "File cannot be analyzed"},
            "fullDescription": {
                "text": (
                    "The file failed to parse (syntax error) or decode "
                    "(not UTF-8), so no rule could run on it."
                )
            },
        }
    ]
    for rule_id in sorted(REGISTRY):
        cls = REGISTRY[rule_id]
        descriptors.append(
            {
                "id": rule_id,
                "name": cls.name,
                "shortDescription": {"text": cls.name},
                "fullDescription": {"text": cls.rationale},
            }
        )
    return descriptors


def _result(
    finding: Finding, root: Path, suppressed: bool
) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": normalize_path(finding.path, root)
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def to_sarif(
    findings: Sequence[Finding],
    root: Path,
    baselined: Iterable[Finding] = (),
) -> Dict[str, Any]:
    """The SARIF document for one run (``baselined`` ⊆ suppressed)."""
    suppressed = set(baselined)
    results = [
        _result(finding, root, finding in suppressed)
        for finding in sorted((*findings, *suppressed))
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": _rule_descriptors(),
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    path: Path,
    findings: Sequence[Finding],
    root: Path,
    baselined: Iterable[Finding] = (),
) -> None:
    document = to_sarif(findings, root, baselined)
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif", "write_sarif"]
