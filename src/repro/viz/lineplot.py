"""Declarative line plots rendered to SVG.

A :class:`LinePlot` holds series, markers and annotations in data
coordinates; :meth:`render` lays out margins, axes, grid, legend and
draws everything through :class:`SvgCanvas`.  This covers every data
figure in the paper: rooflines with ceilings (h-lines), knee markers
(points), operating points, and payload/TDP sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .axes import Axis, LinearScale, LogScale
from .svg import SvgCanvas

#: Default qualitative palette (colorblind-safe-ish).
PALETTE = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
    "#17becf",
    "#7f7f7f",
)


@dataclass(frozen=True)
class Series:
    """One polyline in data coordinates."""

    label: str
    x: Sequence[float]
    y: Sequence[float]
    color: Optional[str] = None
    dash: Optional[str] = None
    width: float = 2.0

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.label!r}: x and y lengths differ "
                f"({len(self.x)} vs {len(self.y)})"
            )
        if len(self.x) < 2:
            raise ConfigurationError(
                f"series {self.label!r} needs at least two points"
            )


@dataclass(frozen=True)
class Marker:
    """A labeled point in data coordinates."""

    x: float
    y: float
    label: str = ""
    color: str = "#222222"
    radius: float = 4.0


@dataclass(frozen=True)
class HLine:
    """A horizontal annotation line (ceiling)."""

    y: float
    label: str = ""
    color: str = "#888888"
    dash: str = "6,4"


@dataclass(frozen=True)
class VLine:
    """A vertical annotation line (knee throughput)."""

    x: float
    label: str = ""
    color: str = "#888888"
    dash: str = "6,4"


@dataclass
class LinePlot:
    """A single-panel line chart."""

    title: str
    x_label: str
    y_label: str
    log_x: bool = False
    log_y: bool = False
    width: int = 720
    height: int = 480
    series: List[Series] = field(default_factory=list)
    markers: List[Marker] = field(default_factory=list)
    hlines: List[HLine] = field(default_factory=list)
    vlines: List[VLine] = field(default_factory=list)

    _MARGIN_LEFT = 70
    _MARGIN_RIGHT = 20
    _MARGIN_TOP = 40
    _MARGIN_BOTTOM = 55

    def add_series(
        self,
        label: str,
        x: Sequence[float],
        y: Sequence[float],
        color: Optional[str] = None,
        dash: Optional[str] = None,
        width: float = 2.0,
    ) -> None:
        """Append a polyline series."""
        self.series.append(
            Series(label=label, x=list(x), y=list(y), color=color, dash=dash, width=width)
        )

    def add_marker(
        self, x: float, y: float, label: str = "", color: str = "#222222"
    ) -> None:
        """Append a labeled point."""
        self.markers.append(Marker(x=x, y=y, label=label, color=color))

    def add_hline(self, y: float, label: str = "", color: str = "#888888") -> None:
        """Append a horizontal ceiling line."""
        self.hlines.append(HLine(y=y, label=label, color=color))

    def add_vline(self, x: float, label: str = "", color: str = "#888888") -> None:
        """Append a vertical marker line."""
        self.vlines.append(VLine(x=x, label=label, color=color))

    # ------------------------------------------------------------------
    def _data_extent(self) -> Tuple[float, float, float, float]:
        xs: List[float] = []
        ys: List[float] = []
        for series in self.series:
            xs.extend(series.x)
            ys.extend(series.y)
        xs.extend(marker.x for marker in self.markers)
        ys.extend(marker.y for marker in self.markers)
        xs.extend(vline.x for vline in self.vlines)
        ys.extend(hline.y for hline in self.hlines)
        if not xs:
            raise ConfigurationError("nothing to plot")
        return min(xs), max(xs), min(ys), max(ys)

    def _axes(self) -> Tuple[Axis, Axis]:
        x_lo, x_hi, y_lo, y_hi = self._data_extent()
        if self.log_x:
            x_axis = Axis(self.x_label, LogScale(x_lo, x_hi))
        else:
            pad = 0.05 * (x_hi - x_lo or 1.0)
            x_axis = Axis(self.x_label, LinearScale(x_lo - pad, x_hi + pad))
        if self.log_y:
            y_axis = Axis(self.y_label, LogScale(y_lo, y_hi))
        else:
            hi = y_hi + 0.08 * (y_hi - min(y_lo, 0.0) or 1.0)
            lo = min(y_lo, 0.0)
            y_axis = Axis(self.y_label, LinearScale(lo, hi))
        return x_axis, y_axis

    def render(self) -> SvgCanvas:
        """Lay out and draw the figure."""
        canvas = SvgCanvas(self.width, self.height)
        x_axis, y_axis = self._axes()
        x_px = (self._MARGIN_LEFT, self.width - self._MARGIN_RIGHT)
        y_px = (self.height - self._MARGIN_BOTTOM, self._MARGIN_TOP)

        plot_w = x_px[1] - x_px[0]
        plot_h = y_px[0] - y_px[1]
        canvas.rect(x_px[0], y_px[1], plot_w, plot_h, stroke="#333333")

        # Grid + ticks.
        for tick in x_axis.scale.ticks():
            px = x_axis.to_pixels(tick, x_px)
            canvas.line(px, y_px[0], px, y_px[1], stroke="#dddddd")
            canvas.text(
                px,
                y_px[0] + 18,
                x_axis.scale.format_tick(tick),
                size=11,
                anchor="middle",
            )
        for tick in y_axis.scale.ticks():
            py = y_axis.to_pixels(tick, y_px)
            canvas.line(x_px[0], py, x_px[1], py, stroke="#dddddd")
            canvas.text(
                x_px[0] - 8,
                py + 4,
                y_axis.scale.format_tick(tick),
                size=11,
                anchor="end",
            )

        # Axis labels + title.
        canvas.text(
            (x_px[0] + x_px[1]) / 2,
            self.height - 12,
            self.x_label,
            size=13,
            anchor="middle",
        )
        canvas.text(
            18,
            (y_px[0] + y_px[1]) / 2,
            self.y_label,
            size=13,
            anchor="middle",
            rotate=-90.0,
        )
        canvas.text(
            (x_px[0] + x_px[1]) / 2,
            24,
            self.title,
            size=15,
            anchor="middle",
            bold=True,
        )

        # Annotation lines.
        for hline in self.hlines:
            py = y_axis.to_pixels(hline.y, y_px)
            canvas.line(
                x_px[0], py, x_px[1], py, stroke=hline.color, dash=hline.dash
            )
            if hline.label:
                canvas.text(
                    x_px[1] - 4, py - 5, hline.label, size=11, anchor="end",
                    fill=hline.color,
                )
        for vline in self.vlines:
            px = x_axis.to_pixels(vline.x, x_px)
            canvas.line(
                px, y_px[0], px, y_px[1], stroke=vline.color, dash=vline.dash
            )
            if vline.label:
                canvas.text(
                    px + 5, y_px[1] + 14, vline.label, size=11,
                    fill=vline.color,
                )

        # Series.
        for index, series in enumerate(self.series):
            color = series.color or PALETTE[index % len(PALETTE)]
            points = [
                (x_axis.to_pixels(x, x_px), y_axis.to_pixels(y, y_px))
                for x, y in zip(series.x, series.y)
            ]
            canvas.polyline(
                points, stroke=color, width=series.width, dash=series.dash
            )

        # Markers.
        for marker in self.markers:
            px = x_axis.to_pixels(marker.x, x_px)
            py = y_axis.to_pixels(marker.y, y_px)
            canvas.circle(px, py, marker.radius, fill=marker.color)
            if marker.label:
                canvas.text(px + 7, py - 7, marker.label, size=11)

        # Legend.
        legend_y = y_px[1] + 16
        for index, series in enumerate(self.series):
            color = series.color or PALETTE[index % len(PALETTE)]
            lx = x_px[0] + 10
            ly = legend_y + index * 16
            canvas.line(lx, ly - 4, lx + 22, ly - 4, stroke=color, width=3)
            canvas.text(lx + 28, ly, series.label, size=11)

        return canvas

    def save(self, path: str) -> str:
        """Render and write the SVG; returns ``path``."""
        self.render().save(path)
        return path
