"""Terminal (ASCII) line plots for the Skyline CLI.

Renders one or more series onto a character grid with optional log-x.
Deliberately simple: the SVG renderer is the faithful output; this is
the quick look the interactive web tool's chart becomes in a TTY.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

_GLYPHS = "*o+x#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ConfigurationError("log axis requires positive values")
        return math.log10(value)
    return value


def ascii_plot(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    x_label: str = "",
    y_label: str = "",
    title: str = "",
) -> str:
    """Render ``(label, xs, ys)`` series to a text chart.

    Returns a multi-line string; each series uses its own glyph, listed
    in the legend below the chart.
    """
    if not series:
        raise ConfigurationError("nothing to plot")
    if width < 16 or height < 4:
        raise ConfigurationError("chart must be at least 16x4 characters")

    xs_all: List[float] = []
    ys_all: List[float] = []
    for _, xs, ys in series:
        if len(xs) != len(ys):
            raise ConfigurationError("x and y lengths differ")
        xs_all.extend(_transform(x, log_x) for x in xs)
        ys_all.extend(ys)
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (_, xs, ys) in enumerate(series):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in zip(xs, ys):
            tx = _transform(x, log_x)
            col = int((tx - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title.center(width + 10))
    top_label = f"{y_hi:8.2f} |"
    bottom_label = f"{y_lo:8.2f} |"
    mid_pad = " " * 9 + "|"
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label
        elif row_index == height - 1:
            prefix = bottom_label
        else:
            prefix = mid_pad
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "-" * width)
    left = f"{10**x_lo:.3g}" if log_x else f"{x_lo:.3g}"
    right = f"{10**x_hi:.3g}" if log_x else f"{x_hi:.3g}"
    axis_note = f"{x_label}{' (log)' if log_x else ''}"
    lines.append(
        " " * 10 + left + axis_note.center(width - len(left) - len(right)) + right
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {label}"
        for i, (label, _, _) in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.append(" " * 10 + f"y: {y_label}")
    return "\n".join(lines)
