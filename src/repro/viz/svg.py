"""Minimal SVG document builder.

Emits standalone SVG 1.1 with only the primitives the plotting layer
needs: lines, polylines, rects, circles, text and dashed variants.
Coordinates are in CSS pixels with the origin at the top-left.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..units import require_positive

Point = Tuple[float, float]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _fmt(value: float) -> str:
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SvgCanvas:
    """An append-only SVG element buffer with fixed pixel dimensions."""

    def __init__(self, width: int, height: int, background: str = "white"):
        require_positive("width", width)
        require_positive("height", height)
        self.width = width
        self.height = height
        self._elements: List[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        width: float = 1.0,
        dash: str | None = None,
        opacity: float = 1.0,
    ) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" stroke="{stroke}" '
            f'stroke-width="{_fmt(width)}" opacity="{_fmt(opacity)}"'
            f"{dash_attr} />"
        )

    def polyline(
        self,
        points: Sequence[Point],
        stroke: str = "black",
        width: float = 1.5,
        dash: str | None = None,
    ) -> None:
        if len(points) < 2:
            return
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{_fmt(width)}"{dash_attr} '
            'stroke-linejoin="round" />'
        )

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill: str = "none",
        stroke: str = "black",
        opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(width)}" '
            f'height="{_fmt(height)}" fill="{fill}" stroke="{stroke}" '
            f'opacity="{_fmt(opacity)}" />'
        )

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str = "black",
        stroke: str = "none",
    ) -> None:
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f'fill="{fill}" stroke="{stroke}" />'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int = 12,
        anchor: str = "start",
        fill: str = "#222222",
        rotate: float | None = None,
        bold: bool = False,
    ) -> None:
        transform = (
            f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"'
            if rotate is not None
            else ""
        )
        weight = ' font-weight="bold"' if bold else ""
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="Helvetica, Arial, sans-serif"{weight}'
            f"{transform}>{_escape(content)}</text>"
        )

    def to_svg(self) -> str:
        """Serialize the document."""
        body = "\n  ".join(self._elements)
        return (
            '<?xml version="1.0" encoding="UTF-8"?>\n'
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n  {body}\n</svg>\n'
        )

    def save(self, path: str) -> None:
        """Write the SVG document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_svg())
