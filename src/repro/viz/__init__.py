"""Plotting substrate: pure-Python SVG figures and ASCII plots.

Matplotlib is not available in this environment, so the library ships
its own renderer.  :class:`LinePlot` covers everything the paper's
figures need — log/linear axes, multiple series, horizontal ceilings,
vertical knee markers, point annotations — and renders to standalone
SVG files; :func:`ascii_plot` gives a terminal-friendly view used by
the Skyline CLI.
"""

from .ascii_plot import ascii_plot
from .axes import Axis, LinearScale, LogScale
from .lineplot import LinePlot, Series
from .svg import SvgCanvas

__all__ = [
    "ascii_plot",
    "Axis",
    "LinearScale",
    "LogScale",
    "LinePlot",
    "Series",
    "SvgCanvas",
]
