"""Axis scales and tick generation for the plotting layer.

:class:`LinearScale` produces 1-2-5 ticks; :class:`LogScale` produces
decade ticks — the F-1 plot's x-axis is log throughput, its y-axis
linear velocity, exactly this pair.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError


class Scale(ABC):
    """Maps data coordinates to the unit interval [0, 1]."""

    @abstractmethod
    def normalize(self, value: float) -> float:
        """Data value -> [0, 1] position along the axis."""

    @abstractmethod
    def ticks(self) -> List[float]:
        """Nicely spaced tick values covering the domain."""

    @abstractmethod
    def format_tick(self, value: float) -> str:
        """Human-friendly tick label."""


@dataclass(frozen=True)
class LinearScale(Scale):
    """A linear axis over [lo, hi] with ~1-2-5 spaced ticks."""

    lo: float
    hi: float
    target_ticks: int = 6

    def __post_init__(self) -> None:
        if not self.hi > self.lo:
            raise ConfigurationError(
                f"linear scale needs hi > lo, got [{self.lo}, {self.hi}]"
            )

    def normalize(self, value: float) -> float:
        return (value - self.lo) / (self.hi - self.lo)

    def _step(self) -> float:
        raw = (self.hi - self.lo) / max(self.target_ticks - 1, 1)
        magnitude = 10.0 ** math.floor(math.log10(raw))
        for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
            if raw <= multiple * magnitude:
                return multiple * magnitude
        return 10.0 * magnitude

    def ticks(self) -> List[float]:
        step = self._step()
        first = math.ceil(self.lo / step) * step
        values = []
        value = first
        while value <= self.hi + step * 1e-9:
            values.append(round(value, 10))
            value += step
        return values

    def format_tick(self, value: float) -> str:
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:g}"


@dataclass(frozen=True)
class LogScale(Scale):
    """A log10 axis over [lo, hi] with decade ticks."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo <= 0 or self.hi <= self.lo:
            raise ConfigurationError(
                f"log scale needs 0 < lo < hi, got [{self.lo}, {self.hi}]"
            )

    def normalize(self, value: float) -> float:
        return (math.log10(value) - math.log10(self.lo)) / (
            math.log10(self.hi) - math.log10(self.lo)
        )

    def ticks(self) -> List[float]:
        first = math.ceil(math.log10(self.lo) - 1e-9)
        last = math.floor(math.log10(self.hi) + 1e-9)
        return [10.0**exp for exp in range(first, last + 1)]

    def format_tick(self, value: float) -> str:
        if value >= 1:
            return f"{value:g}"
        return f"{value:.10f}".rstrip("0")


@dataclass(frozen=True)
class Axis:
    """An axis: label, scale, and pixel range mapping helpers."""

    label: str
    scale: Scale

    def to_pixels(
        self, value: float, pixel_range: Tuple[float, float]
    ) -> float:
        """Map a data value to a pixel coordinate (handles inverted
        ranges, e.g. SVG y grows downward)."""
        start, end = pixel_range
        fraction = min(max(self.scale.normalize(value), -0.05), 1.05)
        return start + fraction * (end - start)
