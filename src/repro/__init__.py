"""repro — the F-1 roofline model for autonomous UAVs.

A complete reproduction of *"Roofline Model for UAVs: A Bottleneck
Analysis Tool for Onboard Compute Characterization of Autonomous
Unmanned Aerial Vehicles"* (ISPASS 2022): the analytic F-1 model, the
UAV / compute / autonomy substrates it depends on, a flight simulator
standing in for the paper's validation flights, the Skyline analysis
tool, and a harness regenerating every table and figure.

Quickstart::

    from repro import Skyline

    session = Skyline.from_preset("dji-spark", compute_name="intel-ncs")
    report = session.evaluate_algorithm("dronet")
    print(report.text())
"""

from .batch import (
    BatchCache,
    BatchResult,
    DesignMatrix,
    evaluate_matrix,
    scenario_grid,
)
from .core import (
    F1Model,
    FixedAcceleration,
    FractionOfRoofKnee,
    KneePoint,
    SensorComputeControl,
    ThrustMarginModel,
    heatsink_mass_g,
    physics_roof,
    required_action_throughput,
    safe_velocity,
    safe_velocity_at_rate,
)
from .errors import (
    CalibrationError,
    ConfigurationError,
    InfeasibleDesignError,
    ReproError,
    ShardExecutionError,
    SimulationError,
    UnknownComponentError,
)
from .obs import Progress, ProgressPrinter, Tracer, metrics_report
from .skyline import Knobs, Skyline
from .study import (
    DesignSpec,
    FilterClause,
    RankClause,
    ScenarioSpec,
    StudyResult,
    StudySpec,
    compile_spec,
    run_study,
)
from .uav import (
    UAVConfiguration,
    asctec_pelican,
    custom_s500,
    dji_spark,
    get_preset,
    nano_uav,
)

__version__ = "1.0.0"

__all__ = [
    "BatchCache",
    "BatchResult",
    "DesignMatrix",
    "evaluate_matrix",
    "scenario_grid",
    "F1Model",
    "FixedAcceleration",
    "FractionOfRoofKnee",
    "KneePoint",
    "SensorComputeControl",
    "ThrustMarginModel",
    "heatsink_mass_g",
    "physics_roof",
    "required_action_throughput",
    "safe_velocity",
    "safe_velocity_at_rate",
    "CalibrationError",
    "ConfigurationError",
    "InfeasibleDesignError",
    "ReproError",
    "ShardExecutionError",
    "SimulationError",
    "UnknownComponentError",
    "Progress",
    "ProgressPrinter",
    "Tracer",
    "metrics_report",
    "Knobs",
    "Skyline",
    "DesignSpec",
    "FilterClause",
    "RankClause",
    "ScenarioSpec",
    "StudyResult",
    "StudySpec",
    "compile_spec",
    "run_study",
    "UAVConfiguration",
    "asctec_pelican",
    "custom_s500",
    "dji_spark",
    "get_preset",
    "nano_uav",
    "__version__",
]
