"""Skyline's automatic analysis and optimization tips (Sec. V-D).

Given a UAV's F-1 model, produce what the web tool's analysis pane
showed: the knee, the achievable safe velocity, which bound applies,
and concrete optimization guidance — including the Sec. VI-A TDP
reduction scenario evaluated quantitatively (halve the TDP, shrink the
heatsink, recompute the roofline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.bounds import BoundKind
from ..core.model import F1Model
from ..core.optimality import DesignStatus, OptimalityReport
from ..uav.configuration import UAVConfiguration


@dataclass(frozen=True)
class AnalysisResult:
    """Everything the analysis pane displays."""

    model: F1Model
    bound: BoundKind
    optimality: OptimalityReport
    tips: List[str]
    tdp_scenario: Optional[str]


def _tdp_reduction_scenario(
    uav: UAVConfiguration, f_compute_hz: float
) -> Optional[str]:
    """Quantify halving the compute TDP (Sec. VI-A's optimization)."""
    compute = uav.compute
    if not compute.needs_heatsink or compute.tdp_w < 2.0:
        return None
    lighter = compute.with_tdp(compute.tdp_w / 2.0)
    candidate = uav.with_compute(lighter, name=uav.name)
    before = uav.f1(f_compute_hz)
    after = candidate.f1(f_compute_hz)
    saved = uav.compute_payload_g - candidate.compute_payload_g
    gain = (after.roof_velocity / before.roof_velocity - 1.0) * 100.0
    return (
        f"halving TDP to {lighter.tdp_w:g} W saves {saved:.0f} g of "
        f"heatsink, raising the physics roof by {gain:.0f}% "
        f"({before.roof_velocity:.2f} -> {after.roof_velocity:.2f} m/s)"
    )


def analyze_design(
    uav: UAVConfiguration, f_compute_hz: float
) -> AnalysisResult:
    """Run the full analysis for one (UAV, compute throughput) pair."""
    model = uav.f1(f_compute_hz)
    bound = model.bound
    optimality = model.optimality()
    knee = model.knee
    tips: List[str] = []

    if bound is BoundKind.COMPUTE:
        speedup = knee.throughput_hz / model.pipeline.f_compute_hz
        tips.append(
            f"compute-bound: improve the algorithm/platform throughput by "
            f"{speedup:.1f}x (from {model.pipeline.f_compute_hz:.2f} Hz to "
            f"the {knee.throughput_hz:.1f} Hz knee) to unlock "
            f"{knee.velocity:.2f} m/s"
        )
    elif bound is BoundKind.SENSOR:
        tips.append(
            f"sensor-bound: the {model.pipeline.f_sensor_hz:.0f} Hz sensor "
            f"caps the pipeline below the {knee.throughput_hz:.1f} Hz knee; "
            "no compute optimization helps until the sensor is upgraded"
        )
    elif bound is BoundKind.CONTROL:
        tips.append(
            "control-bound: raise the flight-controller loop rate — an "
            "unusual situation worth double-checking"
        )
    else:  # PHYSICS
        tips.append(
            "physics-bound: faster decisions cannot raise the safe "
            "velocity; improve thrust-to-weight or shed payload instead"
        )
        if optimality.status is DesignStatus.OVER_PROVISIONED:
            tips.append(
                f"compute is over-provisioned by "
                f"{model.compute_overprovision_factor:.1f}x — trade the "
                "excess throughput for a lower TDP (smaller heatsink, "
                "lighter payload, higher roof)"
            )

    scenario = _tdp_reduction_scenario(uav, f_compute_hz)
    if scenario is not None and bound is BoundKind.PHYSICS:
        tips.append(scenario)

    return AnalysisResult(
        model=model,
        bound=bound,
        optimality=optimality,
        tips=tips,
        tdp_scenario=scenario,
    )
