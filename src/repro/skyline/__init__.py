"""Skyline: the interactive F-1 exploration tool (Sec. V), as a
scriptable API + CLI instead of the paper's web page."""

from .analysis import AnalysisResult, analyze_design
from .knobs import Knobs
from .plotting import roofline_figure
from .report import render_report
from .sweep import (
    GridCrossover,
    GridResult,
    SweepResult,
    sweep_grid,
    sweep_knob,
)
from .tool import Skyline, SkylineReport

__all__ = [
    "AnalysisResult",
    "analyze_design",
    "Knobs",
    "roofline_figure",
    "render_report",
    "GridCrossover",
    "GridResult",
    "SweepResult",
    "sweep_grid",
    "sweep_knob",
    "Skyline",
    "SkylineReport",
]
