"""Shared F-1 figure construction (Skyline's visualization area).

Builds the paper-style roofline chart — log-x action throughput vs
safe velocity — for one or more UAV design points, with knee markers,
stage ceilings and operating points.  Used by the Skyline tool, the
examples and every figure-reproduction experiment.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.model import F1Model
from ..viz.lineplot import PALETTE, LinePlot


def roofline_figure(
    entries: Sequence[Tuple[str, F1Model]],
    title: str = "F-1 roofline",
    f_min_hz: float = 0.5,
    f_max_hz: float = 1000.0,
    mark_knees: bool = True,
    mark_operating_points: bool = True,
    operating_labels: Optional[Sequence[str]] = None,
    points: int = 192,
) -> LinePlot:
    """Build the F-1 chart for several (label, model) design points."""
    plot = LinePlot(
        title=title,
        x_label="Action Throughput (Hz)",
        y_label="Safe Velocity (m/s)",
        log_x=True,
    )
    for index, (label, model) in enumerate(entries):
        curve = model.curve(f_min_hz=f_min_hz, f_max_hz=f_max_hz, points=points)
        color = PALETTE[index % len(PALETTE)]
        plot.add_series(
            label,
            list(curve.throughput_hz),
            list(curve.velocity),
            color=color,
        )
        if mark_knees:
            knee = model.knee
            if f_min_hz <= knee.throughput_hz <= f_max_hz:
                plot.add_marker(
                    knee.throughput_hz,
                    knee.velocity,
                    label="knee" if index == 0 else "",
                    color=color,
                )
        if mark_operating_points:
            f_op, v_op = model.operating_point
            if f_min_hz <= f_op <= f_max_hz:
                op_label = (
                    operating_labels[index]
                    if operating_labels is not None
                    else f"{f_op:.0f} Hz"
                )
                plot.add_marker(f_op, v_op, label=op_label, color=color)
    return plot
