"""The Skyline session object: knobs in, analysis + figure out.

The web tool's three panes (Sec. V-A) map to:

* *UAV system parameter knobs* — a preset (:mod:`repro.uav.registry`)
  plus algorithm/compute selection, or a fully custom
  :class:`~repro.skyline.knobs.Knobs` set;
* *visualization area* — :meth:`Skyline.figure` (SVG) and
  :meth:`Skyline.ascii` (terminal);
* *analysis pane* — :meth:`Skyline.report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..autonomy.workloads import get_algorithm
from ..compute.platforms import get_platform
from ..core.model import F1Model
from ..errors import ConfigurationError
from ..uav.configuration import UAVConfiguration
from ..uav.registry import get_preset
from ..units import require_positive
from ..viz.ascii_plot import ascii_plot
from ..viz.lineplot import LinePlot
from .analysis import AnalysisResult, analyze_design
from .knobs import Knobs
from .plotting import roofline_figure
from .report import render_report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..batch.executor import ParallelExecutor
    from ..obs.progress import ProgressCallback
    from ..obs.tracer import Tracer
    from ..study import StudyResult, StudySpec


@dataclass(frozen=True)
class SkylineReport:
    """A fully evaluated design point."""

    uav: UAVConfiguration
    algorithm_name: str
    f_compute_hz: float
    analysis: AnalysisResult

    @property
    def model(self) -> F1Model:
        return self.analysis.model

    def text(self) -> str:
        """The analysis pane as text."""
        return render_report(self)

    def to_dict(self) -> "dict[str, object]":
        """The report as a JSON-compatible dict (stable names).

        The document behind both ``repro-skyline analyze --json`` and
        the serving layer's ``POST /v1/analyze`` responses.
        """
        from ..io.serialization import configuration_to_dict

        analysis = self.analysis
        model = analysis.model
        return {
            "uav": configuration_to_dict(self.uav),
            "algorithm": self.algorithm_name,
            "f_compute_hz": self.f_compute_hz,
            "analysis": {
                "safe_velocity": model.safe_velocity,
                "roof_velocity": model.roof_velocity,
                "knee_hz": model.knee.throughput_hz,
                "knee_velocity": model.knee.velocity,
                "action_throughput_hz": model.action_throughput_hz,
                "bound": analysis.bound.value,
                "status": analysis.optimality.status.value,
                "provisioning_factor": (
                    analysis.optimality.provisioning_factor
                ),
                "tips": list(analysis.tips),
                "tdp_scenario": analysis.tdp_scenario,
            },
        }


class Skyline:
    """A Skyline exploration session."""

    def __init__(self, uav: UAVConfiguration) -> None:
        self.uav = uav
        self._reports: List[SkylineReport] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_preset(
        cls,
        uav_name: str,
        compute_name: Optional[str] = None,
        sensor_range_m: Optional[float] = None,
        sensor_framerate_hz: Optional[float] = None,
    ) -> "Skyline":
        """Start a session from a registered UAV preset."""
        uav = get_preset(uav_name)
        if compute_name is not None:
            uav = uav.with_compute(get_platform(compute_name))
        if sensor_range_m is not None:
            uav = uav.with_sensor_range(sensor_range_m)
        if sensor_framerate_hz is not None:
            uav = uav.with_sensor(
                uav.sensor.with_framerate(sensor_framerate_hz)
            )
        return cls(uav)

    @classmethod
    def from_knobs(cls, knobs: Knobs) -> "Skyline":
        """Start a session from a fully custom Table II knob set."""
        return cls(knobs.build_uav())

    # ------------------------------------------------------------------
    # Declarative studies
    # ------------------------------------------------------------------
    @staticmethod
    def study(
        spec: "StudySpec",
        executor: Optional["ParallelExecutor"] = None,
        chunk_rows: Optional[int] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        tracer: Optional["Tracer"] = None,
        progress: Optional["ProgressCallback"] = None,
    ) -> "StudyResult":
        """Execute a declarative :class:`~repro.study.spec.StudySpec`.

        The spec-first face of the session API: anything a sweep or a
        DSE exploration can do is expressible (and JSON-serializable)
        as a spec, and runs through the shared vectorized planner.

        ``executor`` / ``chunk_rows`` / ``checkpoint`` / ``resume``
        opt into sharded (optionally parallel, optionally resumable)
        execution, exactly as in :func:`repro.study.run_study` — the
        result is bitwise identical to the single-pass path.
        ``tracer`` / ``progress`` opt into :mod:`repro.obs`
        instrumentation (phase spans, metrics, per-shard progress),
        again exactly as in :func:`repro.study.run_study`.
        """
        from ..study import run_study

        return run_study(
            spec,
            executor=executor,
            chunk_rows=chunk_rows,
            checkpoint=checkpoint,
            resume=resume,
            tracer=tracer,
            progress=progress,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_algorithm(self, algorithm_name: str) -> SkylineReport:
        """Characterize a registered algorithm on this UAV's computer."""
        algorithm = get_algorithm(algorithm_name)
        f_compute = algorithm.throughput_on(self.uav.compute)
        return self.evaluate_throughput(f_compute, label=algorithm_name)

    def evaluate_throughput(
        self, f_compute_hz: float, label: str = "custom"
    ) -> SkylineReport:
        """Characterize a direct compute-throughput value (runtime knob)."""
        require_positive("f_compute_hz", f_compute_hz)
        report = SkylineReport(
            uav=self.uav,
            algorithm_name=label,
            f_compute_hz=f_compute_hz,
            analysis=analyze_design(self.uav, f_compute_hz),
        )
        self._reports.append(report)
        return report

    @property
    def reports(self) -> List[SkylineReport]:
        """Every report produced in this session."""
        return list(self._reports)

    # ------------------------------------------------------------------
    # Visualization
    # ------------------------------------------------------------------
    def _entries(self) -> List[Tuple[str, F1Model]]:
        if not self._reports:
            raise ConfigurationError(
                "session field 'reports' is empty: evaluate at least "
                "one algorithm before plotting"
            )
        return [
            (f"{r.algorithm_name} @ {r.f_compute_hz:.0f} Hz", r.model)
            for r in self._reports
        ]

    def figure(self, title: Optional[str] = None) -> LinePlot:
        """The F-1 chart of everything evaluated so far."""
        return roofline_figure(
            self._entries(), title=title or f"F-1: {self.uav.name}"
        )

    def ascii(self, width: int = 72, height: int = 18) -> str:
        """Terminal rendering of the session's F-1 curves."""
        series = []
        for label, model in self._entries():
            curve = model.curve(f_min_hz=0.5, f_max_hz=1000.0, points=96)
            series.append(
                (label, list(curve.throughput_hz), list(curve.velocity))
            )
        return ascii_plot(
            series,
            width=width,
            height=height,
            log_x=True,
            x_label="Action Throughput (Hz)",
            y_label="Safe Velocity (m/s)",
            title=f"F-1: {self.uav.name}",
        )
