"""Knob sweeps: the exploratory studies the web tool's sliders enabled.

Sweep any Table II knob over a range of values and collect the F-1
consequences (safe velocity, knee, bound) into a table + figure, ready
for the kind of what-if exploration Sec. V demonstrates interactively.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import List, Sequence

from ..core.bounds import BoundKind
from ..errors import ConfigurationError
from ..io.tables import format_table
from ..viz.lineplot import LinePlot
from .knobs import Knobs

#: Knobs that may be swept (all numeric fields of :class:`Knobs`).
SWEEPABLE_KNOBS = tuple(
    f.name for f in fields(Knobs) if f.name != "rotor_count"
)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated knob value."""

    value: float
    safe_velocity: float
    roof_velocity: float
    knee_hz: float
    action_throughput_hz: float
    bound: BoundKind


@dataclass(frozen=True)
class SweepResult:
    """All points of one knob sweep."""

    knob: str
    base: Knobs
    points: Sequence[SweepPoint]

    def table(self) -> str:
        """Aligned text table of the sweep."""
        return format_table(
            (self.knob, "v_safe (m/s)", "roof (m/s)", "knee (Hz)", "bound"),
            [
                (
                    f"{p.value:g}",
                    f"{p.safe_velocity:.2f}",
                    f"{p.roof_velocity:.2f}",
                    f"{p.knee_hz:.1f}",
                    p.bound.value,
                )
                for p in self.points
            ],
        )

    def figure(self) -> LinePlot:
        """Safe velocity (and roof) vs the swept knob."""
        plot = LinePlot(
            title=f"Sweep: {self.knob}",
            x_label=self.knob,
            y_label="Velocity (m/s)",
        )
        xs = [p.value for p in self.points]
        plot.add_series("v_safe", xs, [p.safe_velocity for p in self.points])
        plot.add_series(
            "physics roof", xs, [p.roof_velocity for p in self.points],
            dash="6,4",
        )
        return plot

    def crossover_values(self) -> List[float]:
        """Knob values where the bound classification changes."""
        crossovers = []
        for previous, current in zip(self.points, self.points[1:]):
            if previous.bound is not current.bound:
                crossovers.append(current.value)
        return crossovers


def sweep_knob(
    base: Knobs, knob: str, values: Sequence[float]
) -> SweepResult:
    """Evaluate the F-1 model at each value of one knob."""
    if knob not in SWEEPABLE_KNOBS:
        known = ", ".join(SWEEPABLE_KNOBS)
        raise ConfigurationError(
            f"cannot sweep {knob!r}; sweepable knobs: {known}"
        )
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    points = []
    for value in values:
        knobs = replace(base, **{knob: value})
        uav = knobs.build_uav()
        model = uav.f1(knobs.f_compute_hz)
        points.append(
            SweepPoint(
                value=value,
                safe_velocity=model.safe_velocity,
                roof_velocity=model.roof_velocity,
                knee_hz=model.knee.throughput_hz,
                action_throughput_hz=model.action_throughput_hz,
                bound=model.bound,
            )
        )
    return SweepResult(knob=knob, base=base, points=points)
