"""Knob sweeps: the exploratory studies the web tool's sliders enabled.

Sweep any Table II knob — or a Cartesian grid of several at once —
and collect the F-1 consequences (safe velocity, knee, bound) into
tables, figures and crossover reports, ready for the kind of what-if
exploration Sec. V demonstrates interactively.

Both :func:`sweep_knob` and :func:`sweep_grid` are thin builders over
the declarative :mod:`repro.study` layer: they assemble a
:class:`~repro.study.spec.StudySpec` and hand it to
:func:`~repro.study.runner.run_study`, which compiles the same
columnar :class:`~repro.batch.assembly.KnobMatrix` chain and one-pass
:mod:`repro.batch` evaluation these functions used to wire by hand —
public signatures and numerics unchanged, but every sweep is now also
expressible (and serializable) as a spec.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..batch.assembly import KnobMatrix
from ..batch.grid import AxisLike
from ..batch.kernels import BOUND_KINDS
from ..batch.matrix import DesignMatrix
from ..batch.result import BatchResult
from ..core.bounds import BoundKind
from ..errors import ConfigurationError
from ..io.tables import format_table
from ..study import DesignSpec, StudySpec, run_study
from ..viz.lineplot import LinePlot
from .knobs import Knobs

#: Knobs that may be swept: every *float* field of :class:`Knobs`.
#: ``rotor_count`` is excluded deliberately — it is the one integer
#: knob (a quadcopter does not fly with 4.5 rotors), and sweeping the
#: airframe topology is a different study than wiggling a Table II
#: slider; change it by constructing a new :class:`Knobs` instead.
SWEEPABLE_KNOBS = tuple(
    f.name for f in fields(Knobs) if f.name != "rotor_count"
)

#: Result columns a :class:`GridResult` can reshape onto the grid.
GRID_VALUE_COLUMNS = (
    "safe_velocity",
    "roof_velocity",
    "knee_hz",
    "knee_velocity",
    "action_throughput_hz",
    "provisioning_factor",
)


def _require_sweepable(knob: str) -> None:
    if knob not in SWEEPABLE_KNOBS:
        known = ", ".join(SWEEPABLE_KNOBS)
        raise ConfigurationError(
            f"cannot sweep {knob!r}; sweepable knobs: {known}"
        )


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated knob value."""

    value: float
    safe_velocity: float
    roof_velocity: float
    knee_hz: float
    action_throughput_hz: float
    bound: BoundKind


@dataclass(frozen=True)
class SweepResult:
    """All points of one knob sweep."""

    knob: str
    base: Knobs
    points: Sequence[SweepPoint]

    def table(self) -> str:
        """Aligned text table of the sweep."""
        return format_table(
            (self.knob, "v_safe (m/s)", "roof (m/s)", "knee (Hz)", "bound"),
            [
                (
                    f"{p.value:g}",
                    f"{p.safe_velocity:.2f}",
                    f"{p.roof_velocity:.2f}",
                    f"{p.knee_hz:.1f}",
                    p.bound.value,
                )
                for p in self.points
            ],
        )

    def figure(self) -> LinePlot:
        """Safe velocity (and roof) vs the swept knob."""
        plot = LinePlot(
            title=f"Sweep: {self.knob}",
            x_label=self.knob,
            y_label="Velocity (m/s)",
        )
        xs = [p.value for p in self.points]
        plot.add_series("v_safe", xs, [p.safe_velocity for p in self.points])
        plot.add_series(
            "physics roof", xs, [p.roof_velocity for p in self.points],
            dash="6,4",
        )
        return plot

    def crossover_values(self) -> List[float]:
        """Knob values where the bound classification changes."""
        crossovers = []
        for previous, current in zip(self.points, self.points[1:]):
            if previous.bound is not current.bound:
                crossovers.append(current.value)
        return crossovers


def sweep_matrix(
    base: Knobs, knob: str, values: Sequence[float]
) -> DesignMatrix:
    """Columnize a knob sweep into one design matrix.

    The whole Knobs->UAV accounting chain (mass, heatsink, thrust,
    acceleration) runs vectorized through
    :class:`~repro.batch.assembly.KnobMatrix` — no per-value
    ``build_uav`` loop — and is numerically identical to one.
    """
    _require_sweepable(knob)
    if len(values) == 0:  # len, not truthiness: values may be a numpy array
        raise ConfigurationError("sweep needs at least one value")
    return KnobMatrix.from_base(
        base,
        labels=[f"{knob}={value:g}" for value in values],
        **{knob: values},
    ).assemble()


def _sweep_points(
    batch: BatchResult, values: Sequence[float], indices: np.ndarray
) -> List[SweepPoint]:
    """Materialize one line of a batch result as sweep points."""
    return [
        SweepPoint(
            value=float(value),
            safe_velocity=float(batch.safe_velocity[i]),
            roof_velocity=float(batch.roof_velocity[i]),
            knee_hz=float(batch.knee_hz[i]),
            action_throughput_hz=float(batch.action_throughput_hz[i]),
            bound=batch.bound_at(int(i)),
        )
        for value, i in zip(values, indices)
    ]


def sweep_knob(
    base: Knobs, knob: str, values: Sequence[float]
) -> SweepResult:
    """Evaluate the F-1 model at each value of one knob.

    A thin builder over :mod:`repro.study`: equivalent to running
    ``StudySpec(design=DesignSpec.knob_axes(base, {knob: values}))``.
    """
    _require_sweepable(knob)
    spec = StudySpec(design=DesignSpec.knob_axes(base, {knob: values}))
    study = run_study(spec)
    points = _sweep_points(
        study.batch, values, np.arange(len(study.batch))
    )
    return SweepResult(knob=knob, base=base, points=points)


# ---------------------------------------------------------------------------
# Multi-knob Cartesian grids
# ---------------------------------------------------------------------------
# eq=False: the `fixed` dict is unhashable, which would break the
# frozen-dataclass-generated __hash__; identity semantics apply instead.
@dataclass(frozen=True, eq=False)
class GridCrossover:
    """One grid-cell boundary where the bound classification flips.

    ``fixed`` pins every non-crossing knob to its cell value; the flip
    happens between knob values ``at`` (classified ``from_bound``) and
    ``value`` (classified ``to_bound``).
    """

    knob: str
    fixed: Dict[str, float]
    at: float
    value: float
    from_bound: BoundKind
    to_bound: BoundKind


# eq=False: ndarray fields; identity semantics, like the batch types.
@dataclass(frozen=True, eq=False)
class GridResult:
    """A Cartesian multi-knob sweep, evaluated in one vectorized pass.

    Rows are laid out row-major over ``knobs`` (the last knob varies
    fastest), so every result column reshapes onto ``shape``.
    """

    base: Knobs
    knobs: Tuple[str, ...]
    axes: Tuple[np.ndarray, ...]
    matrix: DesignMatrix
    batch: BatchResult

    @property
    def shape(self) -> Tuple[int, ...]:
        """Points per knob axis, in ``knobs`` order."""
        return tuple(axis.size for axis in self.axes)

    def __len__(self) -> int:
        return len(self.matrix)

    def axis(self, knob: str) -> np.ndarray:
        """The swept values of one knob."""
        return self.axes[self._axis_index(knob)]

    def _axis_index(self, knob: str) -> int:
        try:
            return self.knobs.index(knob)
        except ValueError:
            swept = ", ".join(self.knobs)
            raise ConfigurationError(
                f"{knob!r} is not a grid axis; swept knobs: {swept}"
            ) from None

    # ------------------------------------------------------------------
    # Per-cell views
    # ------------------------------------------------------------------
    def values(self, column: str = "safe_velocity") -> np.ndarray:
        """One result column reshaped onto the grid."""
        if column not in GRID_VALUE_COLUMNS:
            known = ", ".join(GRID_VALUE_COLUMNS)
            raise ConfigurationError(
                f"unknown grid column {column!r}; known columns: {known}"
            )
        return getattr(self.batch, column).reshape(self.shape)

    def bound_grid(self) -> np.ndarray:
        """Per-cell bound classification codes on the grid shape.

        Decode with :data:`repro.batch.BOUND_KINDS`, or use
        :meth:`bound_at` for one cell.
        """
        return self.batch.bound_codes.reshape(self.shape)

    def bound_at(self, *indices: int) -> BoundKind:
        """The bound classification of one grid cell."""
        flat = int(np.ravel_multi_index(tuple(indices), self.shape))
        return self.batch.bound_at(flat)

    def bound_counts(self) -> Dict[BoundKind, int]:
        """How many grid cells fall under each bound."""
        return self.batch.bound_counts()

    # ------------------------------------------------------------------
    # Slicing back to 1-D sweeps
    # ------------------------------------------------------------------
    def slice(self, knob: str, **fixed: float) -> SweepResult:
        """A 1-D :class:`SweepResult` along ``knob``.

        Every other grid axis is pinned to the value given in
        ``fixed`` (which must be one of that axis' swept values) or, if
        unspecified, to its first value.  The returned sweep reuses the
        already-evaluated grid cells — no re-evaluation.
        """
        along = self._axis_index(knob)
        unknown = sorted(set(fixed) - set(self.knobs))
        if unknown:
            raise ConfigurationError(
                f"cannot fix {', '.join(map(repr, unknown))}: not grid axes"
            )
        if knob in fixed:
            raise ConfigurationError(
                f"cannot fix the sliced knob {knob!r}"
            )
        indices: List[np.ndarray] = []
        pinned: Dict[str, float] = {}
        for position, (name, axis) in enumerate(zip(self.knobs, self.axes)):
            if position == along:
                indices.append(np.arange(axis.size))
                continue
            if name in fixed:
                matches = np.flatnonzero(axis == float(fixed[name]))
                if matches.size == 0:
                    raise ConfigurationError(
                        f"{fixed[name]!r} is not on the {name} axis "
                        f"{axis.tolist()}"
                    )
                index = int(matches[0])
            else:
                index = 0
            pinned[name] = float(axis[index])
            indices.append(np.full(self.axes[along].size, index))
        flat = np.ravel_multi_index(tuple(indices), self.shape)
        points = _sweep_points(self.batch, self.axes[along], flat)
        return SweepResult(
            knob=knob,
            base=replace(self.base, **pinned),
            points=points,
        )

    # ------------------------------------------------------------------
    # Crossover surfaces
    # ------------------------------------------------------------------
    def crossovers(self, knob: Optional[str] = None) -> List[GridCrossover]:
        """Cell boundaries where the bound flips along an axis.

        With ``knob`` given, scans only that axis; otherwise scans
        every axis.  The returned records form the discrete crossover
        surfaces separating bound regions of the grid — e.g. where a
        TDP/payload trade turns a compute-bound region physics bound.
        """
        if knob is not None:
            return self._crossovers_along(self._axis_index(knob))
        found: List[GridCrossover] = []
        for position in range(len(self.knobs)):
            found.extend(self._crossovers_along(position))
        return found

    def _crossovers_along(self, along: int) -> List[GridCrossover]:
        codes = np.moveaxis(self.bound_grid(), along, -1)
        flips = np.nonzero(codes[..., 1:] != codes[..., :-1])
        axis = self.axes[along]
        others = [
            (name, self.axes[i])
            for i, name in enumerate(self.knobs)
            if i != along
        ]
        found = []
        for *cell, j in zip(*flips):
            fixed = {
                name: float(other_axis[int(c)])
                for (name, other_axis), c in zip(others, cell)
            }
            before = codes[tuple(cell) + (int(j),)]
            after = codes[tuple(cell) + (int(j) + 1,)]
            found.append(
                GridCrossover(
                    knob=self.knobs[along],
                    fixed=fixed,
                    at=float(axis[int(j)]),
                    value=float(axis[int(j) + 1]),
                    from_bound=_decode_bound(int(before)),
                    to_bound=_decode_bound(int(after)),
                )
            )
        return found

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def table(self, limit: Optional[int] = 20) -> str:
        """An aligned text table of (up to ``limit``) grid cells."""
        return self.batch.table(limit=limit)

    def describe(self) -> str:
        """A one-paragraph summary of the grid."""
        dims = " x ".join(
            f"{name}[{axis.size}]"
            for name, axis in zip(self.knobs, self.axes)
        )
        return f"grid {dims}: {self.batch.describe()}"


def _decode_bound(code: int) -> BoundKind:
    return BOUND_KINDS[code]


def sweep_grid(
    base: Knobs, axes: Mapping[str, AxisLike]
) -> GridResult:
    """Cross several Table II knobs in one vectorized call.

    ``axes`` maps knob names to 1-D value axes (scalars allowed); the
    Cartesian product is expanded row-major (last knob fastest) through
    the :mod:`repro.study` planner — a thin builder over
    ``StudySpec(design=DesignSpec.knob_axes(base, axes))`` — assembled
    columnar by :class:`~repro.batch.assembly.KnobMatrix` and
    evaluated in one batch pass.
    """
    if not axes:
        raise ConfigurationError("sweep_grid needs at least one knob axis")
    for knob in axes:
        _require_sweepable(knob)
    normalized = {
        knob: np.atleast_1d(np.asarray(values, dtype=np.float64))
        for knob, values in axes.items()
    }
    spec = StudySpec(design=DesignSpec.knob_axes(base, normalized))
    study = run_study(spec)
    return GridResult(
        base=base,
        knobs=tuple(axes),
        axes=tuple(normalized.values()),
        matrix=study.batch.matrix,
        batch=study.batch,
    )
