"""Knob sweeps: the exploratory studies the web tool's sliders enabled.

Sweep any Table II knob over a range of values and collect the F-1
consequences (safe velocity, knee, bound) into a table + figure, ready
for the kind of what-if exploration Sec. V demonstrates interactively.
Knob values are columnized into a :class:`~repro.batch.matrix.DesignMatrix`
and evaluated by the vectorized :mod:`repro.batch` engine in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import List, Sequence

from ..batch.engine import evaluate_matrix
from ..batch.matrix import DesignMatrix
from ..core.bounds import BoundKind
from ..errors import ConfigurationError
from ..io.tables import format_table
from ..viz.lineplot import LinePlot
from .knobs import Knobs

#: Knobs that may be swept: every *float* field of :class:`Knobs`.
#: ``rotor_count`` is excluded deliberately — it is the one integer
#: knob (a quadcopter does not fly with 4.5 rotors), and sweeping the
#: airframe topology is a different study than wiggling a Table II
#: slider; change it by constructing a new :class:`Knobs` instead.
SWEEPABLE_KNOBS = tuple(
    f.name for f in fields(Knobs) if f.name != "rotor_count"
)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated knob value."""

    value: float
    safe_velocity: float
    roof_velocity: float
    knee_hz: float
    action_throughput_hz: float
    bound: BoundKind


@dataclass(frozen=True)
class SweepResult:
    """All points of one knob sweep."""

    knob: str
    base: Knobs
    points: Sequence[SweepPoint]

    def table(self) -> str:
        """Aligned text table of the sweep."""
        return format_table(
            (self.knob, "v_safe (m/s)", "roof (m/s)", "knee (Hz)", "bound"),
            [
                (
                    f"{p.value:g}",
                    f"{p.safe_velocity:.2f}",
                    f"{p.roof_velocity:.2f}",
                    f"{p.knee_hz:.1f}",
                    p.bound.value,
                )
                for p in self.points
            ],
        )

    def figure(self) -> LinePlot:
        """Safe velocity (and roof) vs the swept knob."""
        plot = LinePlot(
            title=f"Sweep: {self.knob}",
            x_label=self.knob,
            y_label="Velocity (m/s)",
        )
        xs = [p.value for p in self.points]
        plot.add_series("v_safe", xs, [p.safe_velocity for p in self.points])
        plot.add_series(
            "physics roof", xs, [p.roof_velocity for p in self.points],
            dash="6,4",
        )
        return plot

    def crossover_values(self) -> List[float]:
        """Knob values where the bound classification changes."""
        crossovers = []
        for previous, current in zip(self.points, self.points[1:]):
            if previous.bound is not current.bound:
                crossovers.append(current.value)
        return crossovers


def sweep_matrix(
    base: Knobs, knob: str, values: Sequence[float]
) -> DesignMatrix:
    """Columnize a knob sweep into one design matrix.

    Each value still assembles its UAV (mass/thrust accounting is
    per-vehicle Python), but all F-1 math downstream is one
    vectorized pass.
    """
    if knob not in SWEEPABLE_KNOBS:
        known = ", ".join(SWEEPABLE_KNOBS)
        raise ConfigurationError(
            f"cannot sweep {knob!r}; sweepable knobs: {known}"
        )
    if len(values) == 0:  # len, not truthiness: values may be a numpy array
        raise ConfigurationError("sweep needs at least one value")
    models = []
    for value in values:
        knobs = replace(base, **{knob: value})
        models.append(knobs.build_uav().f1(knobs.f_compute_hz))
    return DesignMatrix.from_models(
        models, labels=[f"{knob}={value:g}" for value in values]
    )


def sweep_knob(
    base: Knobs, knob: str, values: Sequence[float]
) -> SweepResult:
    """Evaluate the F-1 model at each value of one knob."""
    matrix = sweep_matrix(base, knob, values)
    batch = evaluate_matrix(matrix)
    points = [
        SweepPoint(
            value=value,
            safe_velocity=float(batch.safe_velocity[i]),
            roof_velocity=float(batch.roof_velocity[i]),
            knee_hz=float(batch.knee_hz[i]),
            action_throughput_hz=float(batch.action_throughput_hz[i]),
            bound=batch.bound_at(i),
        )
        for i, value in enumerate(values)
    ]
    return SweepResult(knob=knob, base=base, points=points)
