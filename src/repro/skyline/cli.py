"""Command-line interface for the Skyline tool.

Examples::

    repro-skyline analyze --uav dji-spark --compute intel-ncs \\
        --algorithm dronet --plot spark.svg
    repro-skyline analyze --uav asctec-pelican --runtime 0.909 --json
    repro-skyline sweep --knob compute_tdp_w --values 1 5 15 30
    repro-skyline sweep --knob compute_tdp_w --values 1 5 15 30 --json
    repro-skyline study --spec study.json --out result.json
    repro-skyline study --knob compute_runtime_s --values 0.01 0.1 1.0
    repro-skyline study --spec big.json --workers 4 --chunk-rows 65536 \\
        --checkpoint ckpt/
    repro-skyline study --spec big.json --workers 4 --resume ckpt/
    repro-skyline study --spec big.json --workers 4 --chunk-rows 65536 \\
        --trace trace.json --metrics --progress --json > result.json
    repro-skyline study --spec big.json --distributed \\
        --work-dir /mnt/shared/run1 --lease-ttl 30 --json
    repro-skyline worker --work-dir /mnt/shared/run1 --wait 60
    repro-skyline serve --port 8351 --max-concurrent 2 --max-queue 32
    repro-skyline list
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..autonomy.workloads import ALGORITHMS
from ..compute.platforms import PLATFORMS
from ..errors import ReproError
from ..uav.registry import UAV_PRESETS
from .tool import Skyline


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skyline",
        description="F-1 roofline analysis for autonomous UAVs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="characterize one UAV + compute + algorithm"
    )
    analyze.add_argument(
        "--uav", required=True, choices=sorted(UAV_PRESETS),
        help="UAV preset",
    )
    analyze.add_argument(
        "--compute", choices=sorted(PLATFORMS),
        help="onboard computer (default: the preset's)",
    )
    group = analyze.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS),
        help="pre-configured autonomy algorithm",
    )
    group.add_argument(
        "--runtime", type=float,
        help="compute runtime knob (seconds per decision)",
    )
    analyze.add_argument(
        "--sensor-range", type=float, help="sensor range override (m)"
    )
    analyze.add_argument(
        "--sensor-fps", type=float, help="sensor framerate override (Hz)"
    )
    analyze.add_argument("--plot", help="write the F-1 chart to this SVG path")
    analyze.add_argument(
        "--ascii", action="store_true", help="print a terminal chart"
    )
    analyze.add_argument(
        "--json", action="store_true",
        help="emit the full characterization as JSON on stdout",
    )

    sweep = sub.add_parser(
        "sweep", help="sweep one Table II knob over a value range"
    )
    from .sweep import SWEEPABLE_KNOBS

    sweep.add_argument(
        "--knob", required=True, choices=sorted(SWEEPABLE_KNOBS)
    )
    sweep.add_argument(
        "--values", required=True, type=float, nargs="+",
        help="knob values to evaluate",
    )
    sweep.add_argument("--plot", help="write the sweep chart to this SVG")
    sweep.add_argument(
        "--json", action="store_true",
        help="emit the full study result as JSON on stdout",
    )

    study = sub.add_parser(
        "study",
        help="run a declarative StudySpec (JSON file or quick flags)",
    )
    source = study.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--spec", help="path to a StudySpec JSON document ('-' = stdin)"
    )
    source.add_argument(
        "--knob", choices=sorted(SWEEPABLE_KNOBS),
        help="quick mode: sweep one knob of the default Knobs",
    )
    study.add_argument(
        "--values", type=float, nargs="+",
        help="knob values for --knob quick mode",
    )
    study.add_argument(
        "--limit", type=int, default=20,
        help="table rows to print (default 20)",
    )
    study.add_argument(
        "--json", action="store_true",
        help="emit the full study result as JSON on stdout",
    )
    study.add_argument(
        "--out", help="also write the result JSON to this path"
    )
    study.add_argument(
        "--workers", type=int,
        help="fan shards out over this many workers (>= 1)",
    )
    study.add_argument(
        "--chunk-rows", type=int,
        help="rows per shard (>= 1; default scales with --workers, "
        "capped to bound memory)",
    )
    study.add_argument(
        "--backend", choices=("process", "thread", "serial"),
        help="worker backend (requires --workers; default: process)",
    )
    resume_group = study.add_mutually_exclusive_group()
    resume_group.add_argument(
        "--checkpoint", metavar="DIR",
        help="write one JSONL record per completed shard to DIR "
        "(re-running reuses completed shards)",
    )
    resume_group.add_argument(
        "--resume", metavar="DIR",
        help="resume from DIR's completed shards (DIR must hold a "
        "matching run's manifest)",
    )
    study.add_argument(
        "--distributed", action="store_true",
        help="pull shards from a shared --work-dir under the lease "
        "protocol instead of a local pool (other hosts join with "
        "'repro-skyline worker'; see docs/distributed-protocol.md)",
    )
    study.add_argument(
        "--work-dir", metavar="DIR",
        help="shared work directory for --distributed (manifest, "
        "spec.json, shard records and leases)",
    )
    study.add_argument(
        "--worker-id",
        help="this worker's id in lease files "
        "(default: <hostname>-<pid>)",
    )
    study.add_argument(
        "--lease-ttl", type=float, metavar="SECONDS",
        help="seconds without a heartbeat before a worker's shard "
        "lease is re-claimable (default 30)",
    )
    study.add_argument(
        "--trace", metavar="FILE",
        help="record phase/shard spans and write a chrome://tracing "
        "trace JSON to FILE (load it in Perfetto)",
    )
    study.add_argument(
        "--metrics", action="store_true",
        help="print a span/counter metrics table to stderr after the run",
    )
    study.add_argument(
        "--progress", action="store_true",
        help="print per-shard progress lines (shards done, rows/s, ETA) "
        "to stderr while the study runs",
    )

    worker = sub.add_parser(
        "worker",
        help="join a distributed study: pull shards from a shared "
        "work dir until every shard has a record",
    )
    worker.add_argument(
        "--work-dir", metavar="DIR", required=True,
        help="the shared work directory of the study to join",
    )
    worker.add_argument(
        "--worker-id",
        help="this worker's id in lease files "
        "(default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--lease-ttl", type=float, metavar="SECONDS",
        help="seconds without a heartbeat before this worker's shard "
        "leases are re-claimable (default 30)",
    )
    worker.add_argument(
        "--poll", type=float, metavar="SECONDS",
        help="seconds between polls for remotely-leased shards "
        "(default: lease-ttl / 4, capped at 1)",
    )
    worker.add_argument(
        "--wait", type=float, default=0.0, metavar="SECONDS",
        help="wait up to this long for the initiator to publish the "
        "study before giving up (default 0: fail fast)",
    )
    worker.add_argument(
        "--json", action="store_true",
        help="emit the worker report as JSON on stdout",
    )

    serve = sub.add_parser(
        "serve",
        help="run the skyline HTTP service (inline analyze + queued "
        "studies with coalescing and progress streaming)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8351,
        help="TCP port (default 8351; 0 picks a free port)",
    )
    serve.add_argument(
        "--workers", type=int,
        help="fan each study's shards over this many workers (>= 1; "
        "default: in-process serial)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=16,
        help="queued studies before new submissions get 429 "
        "(default 16)",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=1,
        help="studies executing at once (default 1)",
    )
    serve.add_argument(
        "--backend", choices=("process", "thread", "serial"),
        help="worker backend (requires --workers; default: process)",
    )
    serve.add_argument(
        "--chunk-rows", type=int,
        help="rows per shard (>= 1; default scales with study size)",
    )
    serve.add_argument(
        "--checkpoint-root", metavar="DIR",
        help="write per-study shard checkpoints under DIR "
        "(restarting the server reuses completed shards)",
    )
    serve.add_argument(
        "--distrib-root", metavar="DIR",
        help="run each study as a distributed work dir under DIR "
        "(external 'repro-skyline worker' processes can join; "
        "mutually exclusive with --checkpoint-root)",
    )

    sub.add_parser("list", help="list presets, platforms and algorithms")
    return parser


def _run_analyze(args: argparse.Namespace) -> int:
    session = Skyline.from_preset(
        args.uav,
        compute_name=args.compute,
        sensor_range_m=args.sensor_range,
        sensor_framerate_hz=args.sensor_fps,
    )
    if args.algorithm is not None:
        report = session.evaluate_algorithm(args.algorithm)
    else:
        report = session.evaluate_throughput(
            1.0 / args.runtime, label=f"runtime={args.runtime:g}s"
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.text())
        if args.ascii:
            print()
            print(session.ascii())
    if args.plot:
        session.figure().save(args.plot)
        # Keep stdout pure JSON in --json mode.
        stream = sys.stderr if args.json else sys.stdout
        print(f"\nF-1 chart written to {args.plot}", file=stream)
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    from .knobs import Knobs
    from .sweep import sweep_knob

    if args.json:
        # The same sweep, expressed as a study; the shared batch cache
        # means a --plot render below re-evaluates nothing.
        from ..study import DesignSpec, StudySpec, run_study

        spec = StudySpec(
            design=DesignSpec.knob_axes(Knobs(), {args.knob: args.values})
        )
        print(json.dumps(run_study(spec).to_dict()))
    else:
        result = sweep_knob(Knobs(), args.knob, args.values)
        print(result.table())
        crossovers = result.crossover_values()
        if crossovers:
            print(f"\nbound changes at {args.knob} = "
                  + ", ".join(f"{v:g}" for v in crossovers))
    if args.plot:
        result = sweep_knob(Knobs(), args.knob, args.values)
        result.figure().save(args.plot)
        stream = sys.stderr if args.json else sys.stdout
        print(f"sweep chart written to {args.plot}", file=stream)
    return 0


def _run_study(args: argparse.Namespace) -> int:
    from ..study import DesignSpec, StudySpec, run_study

    if args.workers is not None and args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.chunk_rows is not None and args.chunk_rows < 1:
        print(
            f"error: --chunk-rows must be >= 1, got {args.chunk_rows}",
            file=sys.stderr,
        )
        return 2
    if args.backend is not None and args.workers is None:
        print(
            "error: --backend requires --workers (without workers the "
            "study runs single-process)",
            file=sys.stderr,
        )
        return 2
    if args.distributed:
        if args.work_dir is None:
            print(
                "error: --distributed needs --work-dir (the shared "
                "directory all workers meet in)",
                file=sys.stderr,
            )
            return 2
        if args.backend is not None:
            print(
                "error: --backend applies to local worker pools; a "
                "--distributed run computes its shards in-process "
                "(parallelism comes from more workers joining)",
                file=sys.stderr,
            )
            return 2
        if args.checkpoint is not None or args.resume is not None:
            print(
                "error: --checkpoint/--resume do not combine with "
                "--distributed (the --work-dir already is the "
                "checkpoint; re-running with the same --work-dir "
                "resumes)",
                file=sys.stderr,
            )
            return 2
        if args.lease_ttl is not None and not args.lease_ttl > 0:
            print(
                f"error: --lease-ttl must be > 0, got {args.lease_ttl}",
                file=sys.stderr,
            )
            return 2
    else:
        for flag, value in (
            ("--work-dir", args.work_dir),
            ("--worker-id", args.worker_id),
            ("--lease-ttl", args.lease_ttl),
        ):
            if value is not None:
                print(
                    f"error: {flag} requires --distributed",
                    file=sys.stderr,
                )
                return 2
    if args.spec is not None:
        if args.values is not None:
            print(
                "error: --values only applies to --knob quick mode",
                file=sys.stderr,
            )
            return 2
        if args.spec == "-":
            text = sys.stdin.read()
        else:
            from pathlib import Path

            text = Path(args.spec).read_text(encoding="utf-8")
        spec = StudySpec.from_json(text)
    else:
        if not args.values:
            print(
                "error: --knob quick mode needs --values", file=sys.stderr
            )
            return 2
        spec = StudySpec(
            design=DesignSpec.knob_axes(axes={args.knob: args.values})
        )

    tracer = None
    if args.trace or args.metrics:
        from ..obs import Tracer

        tracer = Tracer()
    progress = None
    if args.progress:
        from ..obs import ProgressPrinter

        # Progress (like every diagnostic) goes to stderr so --json
        # stdout stays machine-parseable.
        progress = ProgressPrinter()

    executor = None
    chunk_rows = args.chunk_rows
    if args.distributed:
        from ..batch.executor import CheckpointStore
        from ..distrib import DEFAULT_LEASE_TTL_S, DistributedExecutor

        if chunk_rows is None:
            # Re-running against an existing work dir resumes it, so
            # an unspecified chunking adopts the manifest's (mirroring
            # --resume) instead of re-deriving a possibly different one.
            existing = CheckpointStore.peek_manifest(args.work_dir)
            if existing is not None:
                chunk_rows = existing.chunk_rows
        executor = DistributedExecutor(
            args.work_dir,
            worker_id=args.worker_id,
            lease_ttl_s=(
                args.lease_ttl
                if args.lease_ttl is not None
                else DEFAULT_LEASE_TTL_S
            ),
            n_workers=args.workers or 1,
        )
    elif args.workers is not None:
        from ..batch.executor import ParallelExecutor

        executor = ParallelExecutor(
            n_workers=args.workers, backend=args.backend or "process"
        )
    try:
        result = run_study(
            spec,
            executor=executor,
            chunk_rows=chunk_rows,
            checkpoint=args.resume or args.checkpoint,
            resume=args.resume is not None,
            tracer=tracer,
            progress=progress,
        )
    finally:
        if executor is not None:
            executor.close()
    if args.trace:
        from ..obs import write_chrome_trace

        write_chrome_trace(args.trace, tracer)
    if args.metrics:
        from ..obs import metrics_report

        print(metrics_report(tracer), file=sys.stderr)
    if args.out:
        result.save(args.out)
    if args.json:
        print(json.dumps(result.to_dict()))
    else:
        print(result.describe())
        print()
        print(result.table(limit=args.limit))
        if args.out:
            print(f"\nstudy result written to {args.out}")
        if args.trace:
            print(f"trace written to {args.trace}")
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    if args.lease_ttl is not None and not args.lease_ttl > 0:
        print(
            f"error: --lease-ttl must be > 0, got {args.lease_ttl}",
            file=sys.stderr,
        )
        return 2
    if args.poll is not None and not args.poll > 0:
        print(
            f"error: --poll must be > 0, got {args.poll}",
            file=sys.stderr,
        )
        return 2
    if args.wait < 0:
        print(
            f"error: --wait must be >= 0, got {args.wait}",
            file=sys.stderr,
        )
        return 2
    from ..distrib import DEFAULT_LEASE_TTL_S, run_worker

    report = run_worker(
        args.work_dir,
        worker_id=args.worker_id,
        lease_ttl_s=(
            args.lease_ttl
            if args.lease_ttl is not None
            else DEFAULT_LEASE_TTL_S
        ),
        poll_interval_s=args.poll,
        wait_s=args.wait,
    )
    if args.json:
        import dataclasses

        print(json.dumps(dataclasses.asdict(report)))
    else:
        print(
            f"worker {report.worker_id}: study {report.spec_digest} "
            f"complete ({report.shards_total} shards: "
            f"{report.computed} computed here, {report.loaded} by "
            f"other workers, {report.resumed} already checkpointed) "
            f"in {report.elapsed_s:.2f}s"
        )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from time import sleep

    if not 0 <= args.port <= 65535:
        print(
            f"error: --port must be in [0, 65535], got {args.port}",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.max_queue < 1:
        print(
            f"error: --max-queue must be >= 1, got {args.max_queue}",
            file=sys.stderr,
        )
        return 2
    if args.max_concurrent < 1:
        print(
            f"error: --max-concurrent must be >= 1, got "
            f"{args.max_concurrent}",
            file=sys.stderr,
        )
        return 2
    if args.chunk_rows is not None and args.chunk_rows < 1:
        print(
            f"error: --chunk-rows must be >= 1, got {args.chunk_rows}",
            file=sys.stderr,
        )
        return 2
    if args.backend is not None and args.workers is None:
        print(
            "error: --backend requires --workers (without workers "
            "each study runs in-process)",
            file=sys.stderr,
        )
        return 2
    if args.distrib_root is not None and args.checkpoint_root is not None:
        print(
            "error: --distrib-root and --checkpoint-root are mutually "
            "exclusive (a distributed work dir already checkpoints "
            "every shard)",
            file=sys.stderr,
        )
        return 2

    from ..serve import ServeConfig, ServerHandle

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        study_workers=args.workers,
        backend=args.backend or "process",
        chunk_rows=args.chunk_rows,
        checkpoint_root=args.checkpoint_root,
        distrib_root=args.distrib_root,
    )
    handle = ServerHandle(config).start()
    # Diagnostics to stderr, like every other subcommand.
    print(
        f"repro-skyline serve listening on "
        f"http://{args.host}:{handle.port} "
        f"(max_concurrent={args.max_concurrent}, "
        f"max_queue={args.max_queue})",
        file=sys.stderr,
    )
    try:
        while True:
            sleep(3600)
    except KeyboardInterrupt:
        print("repro-skyline serve: shutting down", file=sys.stderr)
    finally:
        handle.stop()
    return 0


def _run_list() -> int:
    print("UAV presets:")
    for name in sorted(UAV_PRESETS):
        print(f"  {name}")
    print("\nCompute platforms:")
    for name, platform in sorted(PLATFORMS.items()):
        print(f"  {name:<16s} {platform.tdp_w:7.3f} W  "
              f"{platform.flight_mass_g:7.1f} g flight mass")
    print("\nAutonomy algorithms:")
    for name in sorted(ALGORITHMS):
        print(f"  {name}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "analyze":
            return _run_analyze(args)
        if args.command == "sweep":
            return _run_sweep(args)
        if args.command == "study":
            return _run_study(args)
        if args.command == "worker":
            return _run_worker(args)
        if args.command == "serve":
            return _run_serve(args)
        return _run_list()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
