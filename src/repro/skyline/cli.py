"""Command-line interface for the Skyline tool.

Examples::

    repro-skyline analyze --uav dji-spark --compute intel-ncs \\
        --algorithm dronet --plot spark.svg
    repro-skyline analyze --uav asctec-pelican --runtime 0.909
    repro-skyline sweep --knob compute_tdp_w --values 1 5 15 30
    repro-skyline list
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..autonomy.workloads import ALGORITHMS
from ..compute.platforms import PLATFORMS
from ..errors import ReproError
from ..uav.registry import UAV_PRESETS
from .tool import Skyline


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skyline",
        description="F-1 roofline analysis for autonomous UAVs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="characterize one UAV + compute + algorithm"
    )
    analyze.add_argument(
        "--uav", required=True, choices=sorted(UAV_PRESETS),
        help="UAV preset",
    )
    analyze.add_argument(
        "--compute", choices=sorted(PLATFORMS),
        help="onboard computer (default: the preset's)",
    )
    group = analyze.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS),
        help="pre-configured autonomy algorithm",
    )
    group.add_argument(
        "--runtime", type=float,
        help="compute runtime knob (seconds per decision)",
    )
    analyze.add_argument(
        "--sensor-range", type=float, help="sensor range override (m)"
    )
    analyze.add_argument(
        "--sensor-fps", type=float, help="sensor framerate override (Hz)"
    )
    analyze.add_argument("--plot", help="write the F-1 chart to this SVG path")
    analyze.add_argument(
        "--ascii", action="store_true", help="print a terminal chart"
    )

    sweep = sub.add_parser(
        "sweep", help="sweep one Table II knob over a value range"
    )
    from .sweep import SWEEPABLE_KNOBS

    sweep.add_argument(
        "--knob", required=True, choices=sorted(SWEEPABLE_KNOBS)
    )
    sweep.add_argument(
        "--values", required=True, type=float, nargs="+",
        help="knob values to evaluate",
    )
    sweep.add_argument("--plot", help="write the sweep chart to this SVG")

    sub.add_parser("list", help="list presets, platforms and algorithms")
    return parser


def _run_analyze(args: argparse.Namespace) -> int:
    session = Skyline.from_preset(
        args.uav,
        compute_name=args.compute,
        sensor_range_m=args.sensor_range,
        sensor_framerate_hz=args.sensor_fps,
    )
    if args.algorithm is not None:
        report = session.evaluate_algorithm(args.algorithm)
    else:
        report = session.evaluate_throughput(
            1.0 / args.runtime, label=f"runtime={args.runtime:g}s"
        )
    print(report.text())
    if args.ascii:
        print()
        print(session.ascii())
    if args.plot:
        session.figure().save(args.plot)
        print(f"\nF-1 chart written to {args.plot}")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    from .knobs import Knobs
    from .sweep import sweep_knob

    result = sweep_knob(Knobs(), args.knob, args.values)
    print(result.table())
    crossovers = result.crossover_values()
    if crossovers:
        print(f"\nbound changes at {args.knob} = "
              + ", ".join(f"{v:g}" for v in crossovers))
    if args.plot:
        result.figure().save(args.plot)
        print(f"sweep chart written to {args.plot}")
    return 0


def _run_list() -> int:
    print("UAV presets:")
    for name in sorted(UAV_PRESETS):
        print(f"  {name}")
    print("\nCompute platforms:")
    for name, platform in sorted(PLATFORMS.items()):
        print(f"  {name:<16s} {platform.tdp_w:7.3f} W  "
              f"{platform.flight_mass_g:7.1f} g flight mass")
    print("\nAutonomy algorithms:")
    for name in sorted(ALGORITHMS):
        print(f"  {name}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "analyze":
            return _run_analyze(args)
        if args.command == "sweep":
            return _run_sweep(args)
        return _run_list()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
