"""Text rendering of a Skyline report (the analysis pane)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..io.tables import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .tool import SkylineReport


def render_report(report: "SkylineReport") -> str:
    """Multi-section text report for one evaluated design point."""
    uav = report.uav
    model = report.analysis.model
    knee = model.knee

    config_table = format_table(
        ("parameter", "value"),
        (
            ("UAV", uav.name),
            ("all-up mass", f"{uav.total_mass_g:.0f} g"),
            ("rated thrust", f"{uav.total_thrust_g:.0f} g"),
            ("max acceleration", f"{uav.max_acceleration:.3f} m/s^2"),
            ("sensor", f"{uav.sensor.framerate_hz:.0f} Hz / "
                       f"{uav.sensor.range_m:.1f} m"),
            ("compute", uav.compute.name),
            ("compute payload", f"{uav.compute_payload_g:.0f} g "
                                f"(x{uav.compute_redundancy})"),
            ("algorithm", report.algorithm_name),
            ("compute throughput", f"{report.f_compute_hz:.2f} Hz"),
        ),
    )

    result_table = format_table(
        ("metric", "value"),
        (
            ("physics roof", f"{model.roof_velocity:.2f} m/s"),
            ("knee point", f"{knee.throughput_hz:.1f} Hz -> "
                           f"{knee.velocity:.2f} m/s"),
            ("action throughput", f"{model.action_throughput_hz:.2f} Hz"),
            ("safe velocity", f"{model.safe_velocity:.2f} m/s"),
            ("bound", report.analysis.bound.value),
            ("verdict", report.analysis.optimality.status.value),
        ),
    )

    lines = [
        f"=== Skyline analysis: {uav.name} / {report.algorithm_name} ===",
        "",
        config_table,
        "",
        result_table,
        "",
        "Optimization tips:",
    ]
    lines.extend(f"  - {tip}" for tip in report.analysis.tips)
    return "\n".join(lines)
