"""Skyline's user-defined parameter knobs (Table II of the paper).

Each knob mirrors one Table II row; :meth:`Knobs.build_uav` assembles a
custom :class:`UAVConfiguration` from them, sizing the compute payload
(incl. TDP-derived heatsink) exactly the way the web tool did.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uav.components import (
    Battery,
    ComputePlatform,
    FlightControllerBoard,
    Frame,
    Motor,
    Sensor,
)
from ..uav.configuration import UAVConfiguration
from ..units import require_nonnegative, require_positive


@dataclass(frozen=True)
class Knobs:
    """Table II knob set.

    =====================  =====  ==========================================
    Knob                   Unit   Paper description
    =====================  =====  ==========================================
    sensor_framerate_hz    Hz     Throughput of the sensor
    compute_tdp_w          W      Max TDP; used to size the heatsink
    compute_runtime_s      s      Autonomy-algorithm latency per decision
    sensor_range_m         m      Maximum range of the sensor
    drone_weight_g         g      UAV weight without extra payload
    rotor_pull_g           g      Thrust produced by one rotor
    payload_weight_g       g      Non-compute payload (sensors, battery...)
    =====================  =====  ==========================================
    """

    sensor_framerate_hz: float = 60.0
    compute_tdp_w: float = 7.5
    compute_runtime_s: float = 0.01
    sensor_range_m: float = 5.0
    drone_weight_g: float = 1000.0
    rotor_pull_g: float = 435.0
    payload_weight_g: float = 0.0
    compute_mass_g: float = 85.0
    rotor_count: int = 4

    def __post_init__(self) -> None:
        require_positive("sensor_framerate_hz", self.sensor_framerate_hz)
        require_positive("compute_tdp_w", self.compute_tdp_w)
        require_positive("compute_runtime_s", self.compute_runtime_s)
        require_positive("sensor_range_m", self.sensor_range_m)
        require_positive("drone_weight_g", self.drone_weight_g)
        require_positive("rotor_pull_g", self.rotor_pull_g)
        require_nonnegative("payload_weight_g", self.payload_weight_g)
        require_positive("compute_mass_g", self.compute_mass_g)

    @property
    def f_compute_hz(self) -> float:
        """Compute throughput implied by the runtime knob."""
        return 1.0 / self.compute_runtime_s

    def build_uav(self, name: str = "custom-knobs") -> UAVConfiguration:
        """Assemble a custom UAV from the knob values."""
        compute = ComputePlatform(
            name="knob-compute",
            mass_g=self.compute_mass_g,
            tdp_w=self.compute_tdp_w,
            peak_gflops=1.0,  # unused: runtime knob supplies throughput
            mem_bandwidth_gbs=1.0,
        )
        return UAVConfiguration(
            name=name,
            frame=Frame(
                name="knob-frame",
                base_mass_g=self.drone_weight_g,
                size_mm=450.0,
            ),
            motor=Motor(name="knob-motor", rated_pull_g=self.rotor_pull_g),
            battery=Battery(
                name="knob-battery",
                capacity_mah=5000.0,
                voltage_v=11.1,
                mass_g=0.0,  # battery weight folded into payload knob
            ),
            sensor=Sensor(
                name="knob-sensor",
                framerate_hz=self.sensor_framerate_hz,
                range_m=self.sensor_range_m,
            ),
            compute=compute,
            flight_controller=FlightControllerBoard(name="knob-fc"),
            extra_payload_g=self.payload_weight_g,
        )
