"""Sense-Plan-Act pipelines (Sec. II-E, Sec. VII of the paper).

An SPA algorithm decomposes into named stages — perception (SLAM),
mapping (OctoMap), motion planning and control — whose latencies the
paper characterizes on an Nvidia TX2 using MAVBench's package-delivery
application.  Stages run back-to-back on the shared onboard computer,
so the decision latency is the *sum* of stage latencies (this is why
Navion's 172 FPS SLAM stage still yields only a 1.23 Hz pipeline:
Sec. VII's central pitfall).

For platforms other than the characterized TX2, stage latencies are
scaled by relative attainable compute (a deliberately coarse model,
consistent with F-1's early-phase role).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..compute.platforms import get_platform
from ..errors import ConfigurationError
from ..uav.components import ComputePlatform
from ..units import require_positive
from .base import AutonomyAlgorithm, Paradigm

#: The platform on which the paper characterizes SPA stage latencies.
REFERENCE_PLATFORM = "jetson-tx2"


@dataclass(frozen=True)
class SPAStage:
    """One SPA stage with its measured latency on the reference TX2.

    ``fixed_function`` marks stages served by a dedicated accelerator
    (e.g. Navion): their latency does not scale with the main onboard
    computer's speed.
    """

    name: str
    latency_s: float
    fixed_function: bool = False

    def __post_init__(self) -> None:
        require_positive("latency_s", self.latency_s)

    def latency_on(self, platform: ComputePlatform) -> float:
        """Latency of this stage when hosted on ``platform``."""
        if self.fixed_function:
            return self.latency_s
        reference = get_platform(REFERENCE_PLATFORM)
        scale = reference.peak_gflops / platform.peak_gflops
        return self.latency_s * scale


@dataclass(frozen=True)
class SPAPipeline(AutonomyAlgorithm):
    """A named sequence of SPA stages executing sequentially."""

    name: str
    stages: Tuple[SPAStage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("an SPA pipeline needs >= 1 stage")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate SPA stage names in {names}"
            )

    @property
    def paradigm(self) -> Paradigm:
        return Paradigm.SPA

    def stage(self, name: str) -> SPAStage:
        """Look up a stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        known = ", ".join(s.name for s in self.stages)
        raise ConfigurationError(
            f"no SPA stage named {name!r}; stages: {known}"
        )

    def latency_on(self, platform: ComputePlatform) -> float:
        """End-to-end decision latency (s): sum of stage latencies."""
        return sum(stage.latency_on(platform) for stage in self.stages)

    def throughput_on(self, platform: ComputePlatform) -> float:
        return 1.0 / self.latency_on(platform)

    def stage_breakdown_on(
        self, platform: ComputePlatform
    ) -> Dict[str, float]:
        """Per-stage latencies (s) on ``platform``, in pipeline order."""
        return {
            stage.name: stage.latency_on(platform) for stage in self.stages
        }

    def with_accelerated_stage(
        self,
        stage_name: str,
        latency_s: float,
        suffix: Optional[str] = None,
    ) -> "SPAPipeline":
        """Replace one stage with a fixed-function accelerator.

        Models Sec. VII's Navion scenario: the SLAM stage drops to the
        accelerator's latency (and stops scaling with the host CPU),
        while every other stage is untouched.
        """
        require_positive("latency_s", latency_s)
        self.stage(stage_name)  # validate existence
        new_stages = tuple(
            replace(stage, latency_s=latency_s, fixed_function=True)
            if stage.name == stage_name
            else stage
            for stage in self.stages
        )
        return SPAPipeline(
            name=f"{self.name}+{suffix or stage_name + '-accel'}",
            stages=new_stages,
        )

    def describe(self) -> str:
        parts = ", ".join(
            f"{stage.name} {stage.latency_s * 1000:.1f} ms"
            for stage in self.stages
        )
        return f"{self.name} (SPA: {parts})"


# ---------------------------------------------------------------------------
# MAVBench package delivery (the paper's SPA exemplar)
# ---------------------------------------------------------------------------

#: Stage latencies on the TX2 (s).  The split is chosen so the total is
#: exactly the paper's 1/1.1 Hz = 909.1 ms, and so replacing SLAM with
#: Navion's 5.81 ms (172 FPS) yields the paper's 810 ms / 1.23 Hz.
_MAVBENCH_STAGES = (
    SPAStage(name="slam", latency_s=0.10600),
    SPAStage(name="octomap", latency_s=0.28540),
    SPAStage(name="planning", latency_s=0.42100),
    SPAStage(name="control", latency_s=0.09669),
)

#: Navion's per-frame VIO latency: 172 FPS (Sec. VII).
NAVION_SLAM_LATENCY_S = 1.0 / 172.0


def mavbench_package_delivery() -> SPAPipeline:
    """The MAVBench package-delivery SPA pipeline (Sec. VI-B)."""
    return SPAPipeline(
        name="spa-package-delivery", stages=_MAVBENCH_STAGES
    )


def mavbench_with_navion() -> SPAPipeline:
    """Package delivery with Navion serving the SLAM stage (Sec. VII)."""
    return mavbench_package_delivery().with_accelerated_stage(
        "slam", NAVION_SLAM_LATENCY_S, suffix="navion"
    )
