"""Concrete network definitions for the paper's E2E algorithms.

Architectures follow the publications the paper cites; minor details
(padding conventions) are approximated, which is fine for the
order-of-magnitude workload model the roofline estimator needs:

* DroNet (Loquercio et al., RA-L 2018): ResNet-8 on 200x200 gray.
* TrailNet (Smolyanskiy et al., IROS 2017): s-ResNet-18 on 320x180.
* CAD2RL (Sadeghi & Levine, 2016): small conv policy on 227x227.
* VGG16 (Simonyan & Zisserman): the classic 224x224 backbone the
  paper uses as a heavyweight E2E stand-in (Fig. 1 / Fig. 15).
"""

from __future__ import annotations

from functools import lru_cache

from .nn_estimator import Conv2d, Dense, LayerStack, Pool2d


@lru_cache(maxsize=None)
def dronet_network() -> LayerStack:
    """DroNet: 5x5 stem + three residual blocks + steering/collision FC."""
    layers = [
        Conv2d(32, kernel=5, stride=2),
        Pool2d(3, stride=2),
        # residual block 1 (32 ch, stride 2)
        Conv2d(32, kernel=3, stride=2),
        Conv2d(32, kernel=3),
        # residual block 2 (64 ch, stride 2)
        Conv2d(64, kernel=3, stride=2),
        Conv2d(64, kernel=3),
        # residual block 3 (128 ch, stride 2)
        Conv2d(128, kernel=3, stride=2),
        Conv2d(128, kernel=3),
        Pool2d(6),
        Dense(2),
    ]
    return LayerStack("dronet", input_shape=(1, 200, 200), layers=layers)


@lru_cache(maxsize=None)
def trailnet_network() -> LayerStack:
    """TrailNet: an s-ResNet-18-style trunk on 320x180 RGB."""
    layers = [
        Conv2d(64, kernel=7, stride=2),
        Pool2d(3, stride=2),
        Conv2d(64, kernel=3),
        Conv2d(64, kernel=3),
        Conv2d(64, kernel=3),
        Conv2d(64, kernel=3),
        Conv2d(128, kernel=3, stride=2),
        Conv2d(128, kernel=3),
        Conv2d(128, kernel=3),
        Conv2d(128, kernel=3),
        Conv2d(256, kernel=3, stride=2),
        Conv2d(256, kernel=3),
        Conv2d(256, kernel=3),
        Conv2d(256, kernel=3),
        Conv2d(512, kernel=3, stride=2),
        Conv2d(512, kernel=3),
        Conv2d(512, kernel=3),
        Conv2d(512, kernel=3),
        Pool2d(5),
        Dense(6),
    ]
    return LayerStack("trailnet", input_shape=(3, 180, 320), layers=layers)


@lru_cache(maxsize=None)
def cad2rl_network() -> LayerStack:
    """CAD2RL: a compact conv Q-network over 227x227 gray frames."""
    layers = [
        Conv2d(32, kernel=9, stride=4),
        Conv2d(48, kernel=5, stride=2),
        Conv2d(64, kernel=3, stride=2),
        Conv2d(96, kernel=3, stride=2),
        Dense(512),
        Dense(41),  # velocity-direction action bins
    ]
    return LayerStack("cad2rl", input_shape=(1, 227, 227), layers=layers)


@lru_cache(maxsize=None)
def vgg16_network() -> LayerStack:
    """VGG16: 13 conv + 3 FC layers on 224x224 RGB (~15.5 GFLOPs)."""
    layers = [
        Conv2d(64, kernel=3),
        Conv2d(64, kernel=3),
        Pool2d(2),
        Conv2d(128, kernel=3),
        Conv2d(128, kernel=3),
        Pool2d(2),
        Conv2d(256, kernel=3),
        Conv2d(256, kernel=3),
        Conv2d(256, kernel=3),
        Pool2d(2),
        Conv2d(512, kernel=3),
        Conv2d(512, kernel=3),
        Conv2d(512, kernel=3),
        Pool2d(2),
        Conv2d(512, kernel=3),
        Conv2d(512, kernel=3),
        Conv2d(512, kernel=3),
        Pool2d(2),
        Dense(4096),
        Dense(4096),
        Dense(1000),
    ]
    return LayerStack("vgg16", input_shape=(3, 224, 224), layers=layers)
