"""Autonomy algorithm models: E2E networks and SPA pipelines."""

from .base import AutonomyAlgorithm, Paradigm
from .e2e import E2EAlgorithm
from .mapping import OccupancyGrid
from .nn_estimator import Conv2d, Dense, LayerStack, Pool2d
from .planning import PlanningError, astar, simplify_path
from .spa_profile import SPAProfile, profile_spa_stages
from .networks import cad2rl_network, dronet_network, trailnet_network, vgg16_network
from .spa import SPAPipeline, SPAStage, mavbench_package_delivery
from .workloads import ALGORITHMS, get_algorithm

__all__ = [
    "AutonomyAlgorithm",
    "Paradigm",
    "E2EAlgorithm",
    "OccupancyGrid",
    "Conv2d",
    "Dense",
    "LayerStack",
    "Pool2d",
    "PlanningError",
    "astar",
    "simplify_path",
    "SPAProfile",
    "profile_spa_stages",
    "cad2rl_network",
    "dronet_network",
    "trailnet_network",
    "vgg16_network",
    "SPAPipeline",
    "SPAStage",
    "mavbench_package_delivery",
    "ALGORITHMS",
    "get_algorithm",
]
