"""Registry of the paper's pre-configured autonomy algorithms.

This is Skyline's algorithm drop-down: DroNet, TrailNet, CAD2RL and
VGG16 as E2E workloads, plus the MAVBench package-delivery SPA
pipeline (and its Navion-accelerated variant).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import UnknownComponentError
from .base import AutonomyAlgorithm
from .e2e import E2EAlgorithm
from .networks import (
    cad2rl_network,
    dronet_network,
    trailnet_network,
    vgg16_network,
)
from .spa import mavbench_package_delivery, mavbench_with_navion

ALGORITHMS: Dict[str, Callable[[], AutonomyAlgorithm]] = {
    "dronet": lambda: E2EAlgorithm("dronet", dronet_network()),
    "trailnet": lambda: E2EAlgorithm("trailnet", trailnet_network()),
    "cad2rl": lambda: E2EAlgorithm("cad2rl", cad2rl_network()),
    "vgg16": lambda: E2EAlgorithm("vgg16", vgg16_network()),
    "spa-package-delivery": mavbench_package_delivery,
    "spa-package-delivery+navion": mavbench_with_navion,
}


def get_algorithm(name: str) -> AutonomyAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise UnknownComponentError(
            f"unknown autonomy algorithm {name!r}; known: {known}"
        ) from None
    return factory()
