"""End-to-End learned autonomy algorithms (Sec. II-E).

An E2E algorithm wraps a network workload model; its throughput on a
platform prefers the paper's measured characterization and falls back
to the classic-roofline estimate of the network's inference time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compute.characterization import (
    MEASURED_THROUGHPUT_HZ,
    has_measurement,
)
from ..compute.latency_estimator import estimate_throughput_hz
from ..uav.components import ComputePlatform
from .base import AutonomyAlgorithm, Paradigm
from .nn_estimator import LayerStack


@dataclass(frozen=True)
class E2EAlgorithm(AutonomyAlgorithm):
    """A learned sensor->action policy characterized by its network."""

    name: str
    network: LayerStack
    paradigm: Paradigm = field(default=Paradigm.E2E, init=False)

    def throughput_on(self, platform: ComputePlatform) -> float:
        if has_measurement(self.name, platform.name):
            return MEASURED_THROUGHPUT_HZ[(self.name, platform.name)]
        estimate = estimate_throughput_hz(
            self.network.gflops, self.network.gbytes, platform
        )
        return estimate.throughput_hz

    def describe(self) -> str:
        return (
            f"{self.name} (E2E, {self.network.gflops:.2f} GFLOP/inference, "
            f"{self.network.total_params / 1e6:.2f} MParam)"
        )
