"""Occupancy-grid mapping: the SPA paradigm's "sensing" stage.

A log-odds occupancy grid updated by ray-casting range scans — the
standard core of the mapping stage the paper's SPA pipeline (SLAM +
OctoMap) performs.  This is a real, runnable implementation so the SPA
stage latencies can be *measured* on the host rather than only taken
from the characterization table (see :mod:`repro.autonomy.spa_profile`).

Cells hold log-odds; a cell is considered occupied above
``OCCUPIED_PROBABILITY`` and free below ``FREE_PROBABILITY``; anything
between is unknown.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import require_positive

Cell = Tuple[int, int]
Point = Tuple[float, float]

#: Probability thresholds for the ternary occupied/free/unknown view.
OCCUPIED_PROBABILITY = 0.65
FREE_PROBABILITY = 0.35

#: Log-odds increments per observation and saturation clamp.
LOG_ODDS_HIT = 0.85
LOG_ODDS_MISS = -0.4
LOG_ODDS_CLAMP = 4.0


def bresenham(a: Cell, b: Cell) -> Iterator[Cell]:
    """Integer line rasterization from cell ``a`` to cell ``b``
    (inclusive of both endpoints)."""
    x0, y0 = a
    x1, y1 = b
    dx, dy = abs(x1 - x0), abs(y1 - y0)
    sx = 1 if x0 < x1 else -1
    sy = 1 if y0 < y1 else -1
    error = dx - dy
    x, y = x0, y0
    while True:
        yield (x, y)
        if (x, y) == (x1, y1):
            return
        doubled = 2 * error
        if doubled > -dy:
            error -= dy
            x += sx
        if doubled < dx:
            error += dx
            y += sy


class OccupancyGrid:
    """A 2-D log-odds occupancy grid over a rectangular world."""

    def __init__(
        self,
        width_m: float,
        height_m: float,
        resolution_m: float = 0.1,
    ) -> None:
        require_positive("width_m", width_m)
        require_positive("height_m", height_m)
        require_positive("resolution_m", resolution_m)
        self.width_m = width_m
        self.height_m = height_m
        self.resolution_m = resolution_m
        self.cols = max(1, int(round(width_m / resolution_m)))
        self.rows = max(1, int(round(height_m / resolution_m)))
        self._log_odds = np.zeros((self.rows, self.cols), dtype=float)

    # ------------------------------------------------------------------
    # Coordinate transforms
    # ------------------------------------------------------------------
    def world_to_cell(self, point: Point) -> Cell:
        """World (x, y) in meters -> (col, row) cell indices."""
        x, y = point
        col = int(x / self.resolution_m)
        row = int(y / self.resolution_m)
        if not self.in_bounds((col, row)):
            raise ConfigurationError(
                f"point {point} outside the {self.width_m}x"
                f"{self.height_m} m world"
            )
        return (col, row)

    def cell_to_world(self, cell: Cell) -> Point:
        """Cell indices -> the cell's center in world meters."""
        col, row = cell
        return (
            (col + 0.5) * self.resolution_m,
            (row + 0.5) * self.resolution_m,
        )

    def in_bounds(self, cell: Cell) -> bool:
        col, row = cell
        return 0 <= col < self.cols and 0 <= row < self.rows

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def integrate_scan(
        self,
        origin: Point,
        angles_rad: Sequence[float],
        ranges_m: Sequence[Optional[float]],
        max_range_m: float,
    ) -> None:
        """Fuse one range scan taken from ``origin``.

        ``ranges_m[i]`` is the hit distance along ``angles_rad[i]`` or
        ``None`` for no return within ``max_range_m``.  Cells along
        each beam are updated free; the terminal cell (if a hit)
        occupied.
        """
        if len(angles_rad) != len(ranges_m):
            raise ConfigurationError("angles and ranges lengths differ")
        require_positive("max_range_m", max_range_m)
        origin_cell = self.world_to_cell(origin)
        for angle, distance in zip(angles_rad, ranges_m):
            hit = distance is not None
            reach = distance if hit else max_range_m
            end = (
                origin[0] + reach * math.cos(angle),
                origin[1] + reach * math.sin(angle),
            )
            end_cell = self._clip_cell(end)
            cells = list(bresenham(origin_cell, end_cell))
            for cell in cells[:-1]:
                self._update(cell, LOG_ODDS_MISS)
            if hit:
                self._update(cells[-1], LOG_ODDS_HIT)
            else:
                self._update(cells[-1], LOG_ODDS_MISS)

    def _clip_cell(self, point: Point) -> Cell:
        col = min(max(int(point[0] / self.resolution_m), 0), self.cols - 1)
        row = min(max(int(point[1] / self.resolution_m), 0), self.rows - 1)
        return (col, row)

    def _update(self, cell: Cell, delta: float) -> None:
        col, row = cell
        value = self._log_odds[row, col] + delta
        self._log_odds[row, col] = min(
            max(value, -LOG_ODDS_CLAMP), LOG_ODDS_CLAMP
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def occupancy_probability(self, cell: Cell) -> float:
        """P(occupied) for one cell (0.5 = unknown)."""
        col, row = cell
        return 1.0 / (1.0 + math.exp(-self._log_odds[row, col]))

    def is_occupied(self, cell: Cell) -> bool:
        return self.occupancy_probability(cell) >= OCCUPIED_PROBABILITY

    def is_free(self, cell: Cell) -> bool:
        return self.occupancy_probability(cell) <= FREE_PROBABILITY

    def occupied_cells(self) -> List[Cell]:
        """All cells currently above the occupied threshold."""
        threshold = math.log(OCCUPIED_PROBABILITY / (1 - OCCUPIED_PROBABILITY))
        rows, cols = np.nonzero(self._log_odds >= threshold)
        return [(int(c), int(r)) for r, c in zip(rows, cols)]

    def blocked_mask(self, inflation_radius_m: float = 0.0) -> np.ndarray:
        """Boolean (rows x cols) mask of untraversable cells.

        Occupied cells are dilated by ``inflation_radius_m`` so a
        point-robot plan keeps physical clearance.
        """
        threshold = math.log(OCCUPIED_PROBABILITY / (1 - OCCUPIED_PROBABILITY))
        blocked = self._log_odds >= threshold
        radius_cells = int(math.ceil(inflation_radius_m / self.resolution_m))
        if radius_cells <= 0:
            return blocked
        inflated = blocked.copy()
        rows, cols = np.nonzero(blocked)
        for row, col in zip(rows, cols):
            r0 = max(0, row - radius_cells)
            r1 = min(self.rows, row + radius_cells + 1)
            c0 = max(0, col - radius_cells)
            c1 = min(self.cols, col + radius_cells + 1)
            inflated[r0:r1, c0:c1] = True
        return inflated

    @property
    def known_fraction(self) -> float:
        """Fraction of cells observed at least once (not at 0.5)."""
        return float(np.mean(self._log_odds != 0.0))
