"""Grid path planning: the SPA paradigm's "planning" stage.

An 8-connected A* over an occupancy grid's blocked mask, with an
optional line-of-sight path simplification pass.  Together with
:mod:`repro.autonomy.mapping` this makes the SPA pipeline executable,
so its stage latencies can be measured rather than assumed.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ReproError
from .mapping import Cell, bresenham

SQRT2 = math.sqrt(2.0)

#: 8-connected neighborhood: (dc, dr, step cost).
_NEIGHBORS = (
    (1, 0, 1.0), (-1, 0, 1.0), (0, 1, 1.0), (0, -1, 1.0),
    (1, 1, SQRT2), (1, -1, SQRT2), (-1, 1, SQRT2), (-1, -1, SQRT2),
)


class PlanningError(ReproError):
    """No traversable path exists between the requested cells."""


def _octile(a: Cell, b: Cell) -> float:
    """Admissible heuristic for 8-connected grids."""
    dx, dy = abs(a[0] - b[0]), abs(a[1] - b[1])
    return max(dx, dy) + (SQRT2 - 1.0) * min(dx, dy)


def astar(
    blocked: np.ndarray,
    start: Cell,
    goal: Cell,
    heuristic: Callable[[Cell, Cell], float] = _octile,
) -> List[Cell]:
    """Shortest 8-connected path on a boolean blocked mask.

    ``blocked`` is indexed ``[row, col]``; cells are ``(col, row)``.
    Returns the cell sequence start..goal inclusive; raises
    :class:`PlanningError` when unreachable or an endpoint is blocked.
    """
    rows, cols = blocked.shape

    def passable(cell: Cell) -> bool:
        col, row = cell
        return 0 <= col < cols and 0 <= row < rows and not blocked[row, col]

    for name, cell in (("start", start), ("goal", goal)):
        if not passable(cell):
            raise PlanningError(f"{name} cell {cell} is blocked or outside")

    open_heap: List[Tuple[float, int, Cell]] = []
    counter = 0
    g_score: Dict[Cell, float] = {start: 0.0}
    came_from: Dict[Cell, Cell] = {}
    heapq.heappush(open_heap, (heuristic(start, goal), counter, start))
    closed = set()

    while open_heap:
        _, _, current = heapq.heappop(open_heap)
        if current == goal:
            return _reconstruct(came_from, current)
        if current in closed:
            continue
        closed.add(current)
        col, row = current
        for dc, dr, step in _NEIGHBORS:
            neighbor = (col + dc, row + dr)
            if not passable(neighbor) or neighbor in closed:
                continue
            # Forbid cutting corners diagonally between two blocked cells.
            if dc != 0 and dr != 0:
                if not (passable((col + dc, row)) and passable((col, row + dr))):
                    continue
            tentative = g_score[current] + step
            if tentative < g_score.get(neighbor, math.inf):
                g_score[neighbor] = tentative
                came_from[neighbor] = current
                counter += 1
                heapq.heappush(
                    open_heap,
                    (tentative + heuristic(neighbor, goal), counter, neighbor),
                )
    raise PlanningError(f"no path from {start} to {goal}")


def _reconstruct(came_from: Dict[Cell, Cell], current: Cell) -> List[Cell]:
    path = [current]
    while current in came_from:
        current = came_from[current]
        path.append(current)
    path.reverse()
    return path


def path_length_cells(path: List[Cell]) -> float:
    """Length of a cell path in cell units (diagonals = sqrt 2)."""
    return sum(
        math.hypot(b[0] - a[0], b[1] - a[1])
        for a, b in zip(path, path[1:])
    )


def line_of_sight(blocked: np.ndarray, a: Cell, b: Cell) -> bool:
    """Whether the straight ray between two cells crosses no block."""
    rows, cols = blocked.shape
    for col, row in bresenham(a, b):
        if not (0 <= col < cols and 0 <= row < rows):
            return False
        if blocked[row, col]:
            return False
    return True


def simplify_path(
    blocked: np.ndarray, path: List[Cell], max_lookahead: Optional[int] = None
) -> List[Cell]:
    """Greedy line-of-sight shortcutting of an A* path.

    Keeps the first and last cells; repeatedly jumps to the farthest
    visible waypoint (optionally capped at ``max_lookahead`` steps).
    The result is never longer than the input.
    """
    if len(path) <= 2:
        return list(path)
    simplified = [path[0]]
    index = 0
    while index < len(path) - 1:
        horizon = len(path) - 1
        if max_lookahead is not None:
            horizon = min(horizon, index + max_lookahead)
        best = index + 1
        for candidate in range(horizon, index, -1):
            if line_of_sight(blocked, path[index], path[candidate]):
                best = candidate
                break
        simplified.append(path[best])
        index = best
    return simplified
