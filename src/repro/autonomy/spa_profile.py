"""Host-measured SPA stage characterization.

The paper's SPA latencies come from MAVBench runs on a TX2.  Because
this repository ships *executable* mapping and planning stages, the
same characterization can be performed on the current machine: build a
synthetic scene, time each stage, and hand the resulting decision rate
to the F-1 model — turning "this laptop" into one more onboard-compute
candidate.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import ConfigurationError
from ..units import require_positive
from .mapping import OccupancyGrid
from .planning import astar, simplify_path


@dataclass(frozen=True)
class SPAProfile:
    """Measured per-stage latencies (s) of the executable SPA stack."""

    stage_latency_s: Dict[str, float]
    grid_cells: int
    scan_beams: int

    @property
    def total_latency_s(self) -> float:
        return sum(self.stage_latency_s.values())

    @property
    def decision_rate_hz(self) -> float:
        """The compute throughput this host sustains for the pipeline."""
        return 1.0 / self.total_latency_s

    def table_rows(self):
        """(stage, latency ms) rows for reporting."""
        return [
            (name, latency * 1000.0)
            for name, latency in self.stage_latency_s.items()
        ]


def _synthetic_scene(
    grid: OccupancyGrid, beams: int, rng: np.random.Generator
) -> tuple:
    """A scan from the world center against random walls."""
    origin = (grid.width_m / 2.0, grid.height_m / 2.0)
    angles = [2.0 * math.pi * i / beams for i in range(beams)]
    max_range = min(grid.width_m, grid.height_m) / 2.0 * 0.9
    ranges = [
        float(rng.uniform(0.3 * max_range, max_range)) if rng.random() < 0.7
        else None
        for _ in range(beams)
    ]
    return origin, angles, ranges, max_range


def profile_spa_stages(
    world_size_m: float = 20.0,
    resolution_m: float = 0.1,
    scan_beams: int = 180,
    repeats: int = 5,
    seed: int = 0,
) -> SPAProfile:
    """Time mapping, planning and control on this machine.

    Stages mirror the MAVBench decomposition: *slam* = scan
    integration into the occupancy grid, *octomap* = blocked-mask
    extraction with inflation, *planning* = A* across the world +
    line-of-sight simplification, *control* = waypoint-to-setpoint
    conversion (trivially cheap, as on the TX2).  Median-of-repeats
    timing keeps the numbers stable on a noisy host.
    """
    require_positive("world_size_m", world_size_m)
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats!r}")
    rng = np.random.default_rng(seed)
    grid = OccupancyGrid(world_size_m, world_size_m, resolution_m)
    origin, angles, ranges, max_range = _synthetic_scene(grid, scan_beams, rng)

    def timed(fn) -> float:
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return float(np.median(samples))

    slam_s = timed(
        lambda: grid.integrate_scan(origin, angles, ranges, max_range)
    )

    blocked_holder = {}

    def extract() -> None:
        blocked_holder["mask"] = grid.blocked_mask(inflation_radius_m=0.3)

    octomap_s = timed(extract)
    blocked = blocked_holder["mask"]

    margin = int(1.0 / resolution_m)
    start_cell = (margin, margin)
    goal_cell = (grid.cols - margin - 1, grid.rows - margin - 1)
    blocked[start_cell[1], start_cell[0]] = False
    blocked[goal_cell[1], goal_cell[0]] = False

    path_holder = {}

    def plan() -> None:
        path = astar(blocked, start_cell, goal_cell)
        path_holder["path"] = simplify_path(blocked, path)

    planning_s = timed(plan)

    waypoints = path_holder["path"]

    def control() -> None:
        # Convert the next waypoint into a velocity setpoint.
        (c0, r0), (c1, r1) = waypoints[0], waypoints[min(1, len(waypoints) - 1)]
        heading = math.atan2(r1 - r0, c1 - c0)
        _ = (math.cos(heading), math.sin(heading))

    control_s = max(timed(control), 1e-7)

    return SPAProfile(
        stage_latency_s={
            "slam": slam_s,
            "octomap": octomap_s,
            "planning": planning_s,
            "control": control_s,
        },
        grid_cells=grid.rows * grid.cols,
        scan_beams=scan_beams,
    )
