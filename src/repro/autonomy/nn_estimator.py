"""Layer-level FLOPs / memory-traffic estimation for E2E networks.

A :class:`LayerStack` propagates an input tensor shape through a
sequence of conv / pool / dense layers, accumulating per-inference
FLOPs (multiply and add counted separately, so 1 MAC = 2 FLOPs),
parameter counts and memory traffic.  The totals feed the
classic-roofline throughput estimator for (algorithm, platform) pairs
the paper did not measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import require_positive

#: Bytes per tensor element (fp16 inference is the norm on edge GPUs).
DTYPE_BYTES = 2


@dataclass(frozen=True)
class TensorShape:
    """A (channels, height, width) activation shape."""

    channels: int
    height: int
    width: int

    def __post_init__(self) -> None:
        for field_name in ("channels", "height", "width"):
            if getattr(self, field_name) < 1:
                raise ConfigurationError(
                    f"{field_name} must be >= 1, got "
                    f"{getattr(self, field_name)!r}"
                )

    @property
    def elements(self) -> int:
        return self.channels * self.height * self.width


@dataclass(frozen=True)
class LayerCost:
    """Cost of one layer: FLOPs, parameters and activation traffic."""

    name: str
    flops: float
    params: int
    activation_bytes: float
    output_shape: TensorShape


def _conv_output_dim(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ConfigurationError(
            f"kernel {kernel}/stride {stride} reduces dimension {size} "
            "below 1"
        )
    return out


@dataclass(frozen=True)
class Conv2d:
    """A 2-D convolution layer (square kernels)."""

    out_channels: int
    kernel: int
    stride: int = 1
    padding: int | None = None  # None -> 'same'-style kernel//2

    def apply(self, shape: TensorShape, name: str) -> LayerCost:
        pad = self.kernel // 2 if self.padding is None else self.padding
        out_h = _conv_output_dim(shape.height, self.kernel, self.stride, pad)
        out_w = _conv_output_dim(shape.width, self.kernel, self.stride, pad)
        out_shape = TensorShape(self.out_channels, out_h, out_w)
        macs = (
            self.kernel
            * self.kernel
            * shape.channels
            * self.out_channels
            * out_h
            * out_w
        )
        params = (
            self.kernel * self.kernel * shape.channels * self.out_channels
            + self.out_channels
        )
        traffic = (shape.elements + out_shape.elements + params) * DTYPE_BYTES
        return LayerCost(
            name=name,
            flops=2.0 * macs,
            params=params,
            activation_bytes=float(traffic),
            output_shape=out_shape,
        )


@dataclass(frozen=True)
class Pool2d:
    """Max/avg pooling (costless in FLOPs terms except traffic)."""

    kernel: int
    stride: int | None = None

    def apply(self, shape: TensorShape, name: str) -> LayerCost:
        stride = self.stride or self.kernel
        out_h = _conv_output_dim(shape.height, self.kernel, stride, 0)
        out_w = _conv_output_dim(shape.width, self.kernel, stride, 0)
        out_shape = TensorShape(shape.channels, out_h, out_w)
        traffic = (shape.elements + out_shape.elements) * DTYPE_BYTES
        return LayerCost(
            name=name,
            flops=float(shape.elements),  # one compare/add per input
            params=0,
            activation_bytes=float(traffic),
            output_shape=out_shape,
        )


@dataclass(frozen=True)
class Dense:
    """A fully connected layer; flattens its input."""

    out_features: int

    def apply(self, shape: TensorShape, name: str) -> LayerCost:
        in_features = shape.elements
        out_shape = TensorShape(self.out_features, 1, 1)
        macs = in_features * self.out_features
        params = macs + self.out_features
        traffic = (in_features + self.out_features + params) * DTYPE_BYTES
        return LayerCost(
            name=name,
            flops=2.0 * macs,
            params=params,
            activation_bytes=float(traffic),
            output_shape=out_shape,
        )


Layer = Conv2d | Pool2d | Dense


class LayerStack:
    """An ordered network description with accumulated costs."""

    def __init__(
        self,
        name: str,
        input_shape: Tuple[int, int, int],
        layers: Sequence[Layer],
    ) -> None:
        require_positive("input channels", input_shape[0])
        self.name = name
        self.input_shape = TensorShape(*input_shape)
        self.layers: List[LayerCost] = []
        shape = self.input_shape
        for index, layer in enumerate(layers):
            cost = layer.apply(shape, name=f"{type(layer).__name__}-{index}")
            self.layers.append(cost)
            shape = cost.output_shape
        self.output_shape = shape

    @property
    def total_flops(self) -> float:
        """FLOPs per inference (MAC = 2 FLOPs)."""
        return sum(layer.flops for layer in self.layers)

    @property
    def total_params(self) -> int:
        """Trainable parameter count."""
        return sum(layer.params for layer in self.layers)

    @property
    def total_bytes(self) -> float:
        """Approximate memory traffic per inference (bytes)."""
        return sum(layer.activation_bytes for layer in self.layers)

    @property
    def gflops(self) -> float:
        """Per-inference GFLOPs."""
        return self.total_flops / 1e9

    @property
    def gbytes(self) -> float:
        """Per-inference GB of traffic."""
        return self.total_bytes / 1e9

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte moved — x-axis of the classic roofline."""
        return self.total_flops / self.total_bytes

    def summary(self) -> str:
        """Multi-line per-layer cost table."""
        lines = [
            f"{self.name}: input "
            f"{self.input_shape.channels}x{self.input_shape.height}"
            f"x{self.input_shape.width}"
        ]
        for layer in self.layers:
            shape = layer.output_shape
            lines.append(
                f"  {layer.name:<14s} -> {shape.channels}x{shape.height}"
                f"x{shape.width}  {layer.flops / 1e6:9.1f} MFLOP  "
                f"{layer.params / 1e3:8.1f} kParam"
            )
        lines.append(
            f"  total: {self.gflops:.3f} GFLOP, "
            f"{self.total_params / 1e6:.2f} MParam, "
            f"OI {self.operational_intensity:.1f} FLOP/B"
        )
        return "\n".join(lines)
