"""Common interface for autonomy algorithms (Sec. II-E of the paper).

Autonomy algorithms come in two paradigms: Sense-Plan-Act (SPA)
pipelines with distinct mapping/planning/control stages, and
End-to-End (E2E) learned policies that map sensor input directly to
actions.  Either way, the F-1 model only needs the algorithm's
*compute throughput* on a given platform.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum

from ..uav.components import ComputePlatform


class Paradigm(Enum):
    """The two autonomy paradigms the paper considers."""

    SPA = "sense-plan-act"
    E2E = "end-to-end"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AutonomyAlgorithm(ABC):
    """An autonomy algorithm characterizable on onboard computers."""

    name: str
    paradigm: Paradigm

    @abstractmethod
    def throughput_on(self, platform: ComputePlatform) -> float:
        """Decision throughput (Hz) of this algorithm on ``platform``.

        Prefers the paper's measured characterization when available,
        falling back to model-based estimation.
        """

    @abstractmethod
    def describe(self) -> str:
        """One-line human-readable description."""
