"""Joining workers: pull shards of a study someone else initiated.

``repro-skyline worker --work-dir DIR`` is this module's CLI face: it
waits for the initiator's ``manifest.json`` + ``spec.json`` to appear,
rebuilds the shard list locally (the spec is the *whole* study — no
row data crosses the wire), and runs the same drive loop as
:class:`~repro.distrib.executor.DistributedExecutor` until every shard
has a record.  Workers are stateless and interchangeable: any number
may join, leave, or crash at any point without coordination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter, sleep
from typing import Dict, Optional, Tuple, Union

from ..batch.executor import CheckpointStore, ShardManifest, iter_chunks
from ..errors import ConfigurationError
from ..obs.tracer import Tracer
from .executor import (
    SPEC_FILE_NAME,
    _drive,
    _HeartbeatPump,
    _study_evaluator,
    default_worker_id,
)
from .lease import DEFAULT_LEASE_TTL_S, LeaseStore


@dataclass(frozen=True)
class WorkerReport:
    """What one worker contributed to a study."""

    worker_id: str
    spec_digest: str
    shards_total: int
    computed: int
    loaded: int
    resumed: int
    rows_computed: int
    elapsed_s: float
    counters: Dict[str, int] = field(default_factory=dict)


def open_study(
    work_dir: Union[str, Path],
    wait_s: float = 0.0,
    poll_interval_s: float = 0.25,
) -> Tuple["ShardManifest", object]:
    """The (manifest, spec) published in a distributed work dir.

    Waits up to ``wait_s`` for both files to appear (workers routinely
    start before the initiator has stamped the directory), then
    validates that the spec actually matches the manifest digest —
    naming both digests on mismatch, since "which study is this
    directory running?" is the first operator question.
    """
    directory = Path(work_dir)
    spec_path = directory / SPEC_FILE_NAME
    deadline = perf_counter() + max(0.0, wait_s)
    while True:
        manifest = CheckpointStore.peek_manifest(directory)
        if manifest is not None and spec_path.exists():
            break
        if perf_counter() >= deadline:
            raise ConfigurationError(
                f"no distributed study at {directory} (needs "
                f"manifest.json and {SPEC_FILE_NAME}); start one with "
                "'repro-skyline study --distributed --work-dir "
                f"{directory}', or raise --wait if the initiator is "
                "still starting"
            )
        sleep(poll_interval_s)
    if manifest.kind != "study":
        raise ConfigurationError(
            f"work dir {directory} holds a {manifest.kind!r} "
            "checkpoint; distributed workers can only join 'study' "
            "runs (their shards rebuild from the published spec)"
        )
    from ..study.spec import StudySpec

    spec = StudySpec.from_json(spec_path.read_text(encoding="utf-8"))
    found = spec.content_digest()
    if found != manifest.digest:
        raise ConfigurationError(
            f"work dir {directory} is inconsistent: manifest digest is "
            f"{manifest.digest!r} but {SPEC_FILE_NAME} digest is "
            f"{found!r} (the directory was mixed from two runs; pass a "
            "fresh --work-dir)"
        )
    return manifest, spec


def run_worker(
    work_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_interval_s: Optional[float] = None,
    wait_s: float = 0.0,
    tracer: Optional[Tracer] = None,
) -> WorkerReport:
    """Join the study in ``work_dir`` and pull shards until it's done.

    Returns once every shard of the study has a record on disk —
    whether this worker computed it, another worker did, or it was
    already checkpointed.  Safe to run any number of times, from any
    number of hosts, concurrently with the initiator.
    """
    if poll_interval_s is None:
        poll_interval_s = min(1.0, lease_ttl_s / 4.0)
    if not poll_interval_s > 0:
        raise ConfigurationError(
            f"poll_interval_s must be > 0, got {poll_interval_s}"
        )
    manifest, spec = open_study(
        work_dir, wait_s=wait_s, poll_interval_s=min(0.25, poll_interval_s)
    )
    owner = worker_id or default_worker_id()
    shards = list(
        iter_chunks(
            spec, chunk_rows=manifest.chunk_rows, reduce=manifest.reduce
        )
    )
    store = CheckpointStore.open(work_dir, manifest)
    leases = LeaseStore(
        work_dir,
        manifest.digest,
        owner,
        lease_ttl_s=lease_ttl_s,
        tracer=tracer,
    )
    pump = _HeartbeatPump(leases, lease_ttl_s / 3.0, tracer=tracer)
    events = {"computed": 0, "loaded": 0, "resumed": 0}
    rows_computed = 0
    started = perf_counter()
    pump.start()
    try:
        for event, result in _drive(
            store,
            leases,
            shards,
            _study_evaluator(tracer),
            poll_interval_s,
            pump,
            tracer=tracer,
        ):
            events[event] += 1
            if event == "computed":
                rows_computed += result.stop - result.start
    finally:
        pump.stop()
    return WorkerReport(
        worker_id=owner,
        spec_digest=manifest.digest,
        shards_total=len(shards),
        computed=events["computed"],
        loaded=events["loaded"],
        resumed=events["resumed"],
        rows_computed=rows_computed,
        elapsed_s=perf_counter() - started,
        counters=(
            tracer.counters_snapshot() if tracer is not None else {}
        ),
    )
