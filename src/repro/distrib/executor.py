"""The distributed executor: N hosts pulling shards of one study.

:class:`DistributedExecutor` exposes the same ``map_shards`` contract
as :class:`~repro.batch.executor.ParallelExecutor`, so it plugs into
``run_study(executor=)`` unchanged — but instead of fanning shards out
to a local pool it *pulls* them from a shared work directory under the
lease protocol (see :mod:`repro.distrib.lease` and
``docs/distributed-protocol.md``):

1. publish (or adopt) the work dir's manifest + ``spec.json``;
2. loop over unfinished shards: skip ones whose record exists, claim a
   lease, compute, publish the record atomically, release;
3. when only remotely-leased shards remain, poll for their records
   (re-claiming any whose lease expires);
4. sweep leftover leases once every shard record exists.

A shard is *done* when its record file exists — never when a lease
says so — which is what makes every crash recoverable: the claim →
compute → record → release sequence can stop anywhere and another
worker resumes from the record check.
"""

from __future__ import annotations

import os
import socket
import threading
import zlib
from pathlib import Path
from time import perf_counter, sleep
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from ..batch.executor import (
    CheckpointStore,
    Shard,
    ShardManifest,
    ShardResult,
    _atomic_write,
    _evaluate_shard,
)
from ..errors import ConfigurationError, StaleLeaseError
from ..obs.progress import Progress, ProgressCallback
from ..obs.tracer import Tracer, maybe_span
from .lease import DEFAULT_LEASE_TTL_S, LeaseStore

#: Name of the published spec file next to ``manifest.json`` — joining
#: workers rebuild their shard list from it.
SPEC_FILE_NAME = "spec.json"

#: Fault-injection knob for crash tests and the CI smoke: a float
#: number of seconds to sleep *inside* each shard computation (after
#: the lease is claimed, before the record is written), widening the
#: window in which a kill lands mid-shard.
INJECT_DELAY_ENV = "REPRO_DISTRIB_INJECT_SHARD_DELAY_S"


def default_worker_id() -> str:
    """A host-and-process-unique worker id, e.g. ``"host-a-12041"``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _injected_delay_s() -> float:
    raw = os.environ.get(INJECT_DELAY_ENV)
    if not raw:
        return 0.0
    try:
        return max(0.0, float(raw))
    except ValueError:
        return 0.0


class _HeartbeatPump:
    """A daemon thread refreshing every lease this worker holds.

    Heartbeats continue while the drive loop is deep inside a shard
    computation, so a slow shard is not mistaken for a dead worker.
    A heartbeat that discovers its lease stolen simply drops the index
    — the compute thread learns the same thing at release time.
    """

    def __init__(
        self,
        leases: LeaseStore,
        interval_s: float,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._leases = leases
        self._interval_s = interval_s
        self._tracer = tracer
        self._held: Set[int] = set()
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def add(self, index: int) -> None:
        with self._lock:
            self._held.add(index)

    def discard(self, index: int) -> None:
        with self._lock:
            self._held.discard(index)

    def start(self) -> None:
        self._wake.clear()
        self._thread = threading.Thread(
            target=self._run, name="distrib-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._wake.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _run(self) -> None:
        while not self._wake.wait(self._interval_s):
            with self._lock:
                held = sorted(self._held)
            for index in held:
                try:
                    self._leases.heartbeat(index)
                except StaleLeaseError:
                    if self._tracer is not None:
                        self._tracer.counter("distrib.leases.stale").add()
                    self.discard(index)
                except OSError:  # pragma: no cover - transient fs hiccup
                    pass


def _release_quietly(
    leases: LeaseStore, index: int, tracer: Optional[Tracer]
) -> None:
    """Release a lease, absorbing a takeover (the record settles it)."""
    try:
        leases.release(index)
    except StaleLeaseError:
        if tracer is not None:
            tracer.counter("distrib.leases.stale").add()


def _rotated(indices: List[int], owner: str) -> List[int]:
    """The index list rotated by a stable per-owner offset.

    Workers starting simultaneously would otherwise all race for shard
    0, then shard 1, …, paying a failed-claim syscall per collision;
    distinct starting offsets spread the first claims apart.  This is
    an ordering heuristic only — claims stay safe in any order.
    """
    if not indices:
        return indices
    offset = zlib.crc32(owner.encode("utf-8")) % len(indices)
    return indices[offset:] + indices[:offset]


def _drive(
    store: CheckpointStore,
    leases: LeaseStore,
    shards: Iterable[Shard],
    evaluate: Callable[[Shard], ShardResult],
    poll_interval_s: float,
    pump: _HeartbeatPump,
    tracer: Optional[Tracer] = None,
) -> Iterator[Tuple[str, ShardResult]]:
    """Pull shards to completion, yielding ``(event, result)`` pairs.

    Events: ``"resumed"`` (record predated this call), ``"loaded"``
    (another worker published the record while we ran), ``"computed"``
    (this worker evaluated it).  The loop terminates when every shard
    in ``shards`` has a record; it never returns early, so the caller
    always sees a complete result set.
    """
    pending: Dict[int, Shard] = {shard.index: shard for shard in shards}
    for index in sorted(store.load_completed()):
        if index not in pending:
            continue
        result = store.load_shard(index)
        if result is None:  # pragma: no cover - raced with a torn write
            continue
        del pending[index]
        leases.sweep((index,))
        if tracer is not None:
            tracer.counter("distrib.shards.resumed").add()
        yield "resumed", result
    while pending:
        progressed = False
        for index in _rotated(sorted(pending), leases.owner):
            if index not in pending:  # pragma: no cover - defensive
                continue
            result = store.load_shard(index)
            if result is not None:
                del pending[index]
                leases.sweep((index,))
                progressed = True
                if tracer is not None:
                    tracer.counter("distrib.shards.loaded").add()
                yield "loaded", result
                continue
            if leases.try_claim(index) is None:
                continue
            # Re-check under the lease: the record may have landed (and
            # its holder released) between our probe and our claim.
            result = store.load_shard(index)
            if result is None:
                pump.add(index)
                try:
                    delay_s = _injected_delay_s()
                    if delay_s > 0:
                        sleep(delay_s)
                    result = evaluate(pending[index])
                    store.write(result)
                except BaseException:
                    _release_quietly(leases, index, tracer)
                    raise
                finally:
                    pump.discard(index)
                event = "computed"
                counter = "distrib.shards.computed"
            else:
                event = "loaded"
                counter = "distrib.shards.loaded"
            _release_quietly(leases, index, tracer)
            del pending[index]
            progressed = True
            if tracer is not None:
                tracer.counter(counter).add()
            yield event, result
        if pending and not progressed:
            if tracer is not None:
                tracer.counter("distrib.wait_polls").add()
            with maybe_span(tracer, "distrib.wait", pending=len(pending)):
                sleep(poll_interval_s)
    # Every shard has a record now; any surviving lease (ours released
    # above, a crashed worker's otherwise) is litter.
    leases.sweep([shard.index for shard in shards])


def _study_evaluator(
    tracer: Optional[Tracer],
) -> Callable[[Shard], ShardResult]:
    """Build the in-process shard evaluator (serial-backend semantics).

    Streaming mode keeps peak memory at one chunk (matching the serial
    backend: the process-wide default cache must not quietly pin the
    whole grid), and an in-process tracer track records worker-side
    spans directly.
    """

    def evaluate(shard: Shard) -> ShardResult:
        task: Dict[str, Any] = {**shard.task, "streaming": True}
        if tracer is not None:
            task["tracer"] = tracer.track(shard.index + 1)
        outcome = _evaluate_shard(task)
        return ShardResult(
            index=shard.index,
            start=shard.start,
            stop=shard.stop,
            batch=outcome["batch"],
            local_indices=outcome["local_indices"],
            extras=outcome["extras"],
        )

    return evaluate


def resolve_study_manifest(
    work_dir: Union[str, Path], shards: List[Shard]
) -> Tuple[ShardManifest, Any]:
    """The work dir's manifest for these shards (adopted or inferred).

    An existing manifest wins — the incoming shard list must then match
    its digest and chunking (mismatches name both values).  On a fresh
    directory the manifest is inferred from the shard list, which must
    cover ``[0, total_rows)`` contiguously: a distributed work dir
    advertises the *whole* study to joining workers, so seeding it from
    a partial shard list would strand them.  Returns
    ``(manifest, spec)``.
    """
    if not shards:
        raise ConfigurationError(
            "distributed execution needs at least one shard"
        )
    for shard in shards:
        if shard.task.get("kind") != "study":
            raise ConfigurationError(
                "distributed execution requires StudySpec shards (their "
                "tasks are rebuilt from the spec on any host); got a "
                f"{shard.task.get('kind')!r} shard — run the study via "
                "a StudySpec instead of a materialized DesignMatrix"
            )
    ordered = sorted(shards, key=lambda shard: shard.index)
    first = ordered[0]
    spec = first.task["spec"]
    digest = spec.content_digest()
    existing = CheckpointStore.peek_manifest(work_dir)
    if existing is not None:
        if existing.digest != digest:
            raise ConfigurationError(
                f"work dir {Path(work_dir)} holds a different study: "
                f"manifest digest is {existing.digest!r}, this run's "
                f"spec digest is {digest!r} (pass a fresh --work-dir, "
                "or re-run with the original spec)"
            )
        return existing, spec
    expected_start = 0
    for shard in ordered:
        if shard.start != expected_start:
            raise ConfigurationError(
                f"cannot seed a distributed work dir from a partial "
                f"shard list: rows [{expected_start}, {shard.start}) "
                "are missing"
            )
        expected_start = shard.stop
    if ordered[0].index != 0 or ordered[-1].index != len(ordered) - 1:
        raise ConfigurationError(
            "cannot seed a distributed work dir from a partial shard "
            "list: shard indices must run 0..n-1"
        )
    manifest = ShardManifest(
        kind="study",
        digest=digest,
        total_rows=ordered[-1].stop,
        chunk_rows=len(ordered[0]),
        n_shards=len(ordered),
        knee_fraction=first.task["knee_fraction"],
        tolerance=first.task["tolerance"],
        reduce=first.task["reduce"],
    )
    return manifest, spec


def publish_spec(work_dir: Union[str, Path], spec: Any) -> None:
    """Write ``spec.json`` next to the manifest (idempotent, atomic).

    Joining workers rebuild the shard list from it; an existing file is
    verified by digest rather than overwritten, so two initiators
    racing on one directory cannot disagree silently.
    """
    path = Path(work_dir) / SPEC_FILE_NAME
    if path.exists():
        from ..study.spec import StudySpec

        found = StudySpec.from_json(path.read_text(encoding="utf-8"))
        if found.content_digest() != spec.content_digest():
            raise ConfigurationError(
                f"work dir {Path(work_dir)} already publishes a "
                f"different spec: {SPEC_FILE_NAME} digest is "
                f"{found.content_digest()!r}, this run's spec digest "
                f"is {spec.content_digest()!r}"
            )
        return
    _atomic_write(path, spec.to_json(indent=2) + "\n")


class DistributedExecutor:
    """Pull shards of one study from a shared work directory.

    Drop-in for :class:`~repro.batch.executor.ParallelExecutor` in
    ``run_study(executor=)``: ``map_shards`` yields every requested
    shard's result, computing the ones this worker wins leases for and
    absorbing records other workers publish.  ``n_workers`` is the
    *expected fleet size* — it only informs default chunk sizing, never
    correctness; workers may join and leave freely.
    """

    def __init__(
        self,
        work_dir: Union[str, Path],
        worker_id: Optional[str] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        n_workers: int = 1,
        poll_interval_s: Optional[float] = None,
        heartbeat_interval_s: Optional[float] = None,
    ) -> None:
        if not lease_ttl_s > 0:
            raise ConfigurationError(
                f"lease_ttl_s must be > 0, got {lease_ttl_s}"
            )
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if poll_interval_s is None:
            poll_interval_s = min(1.0, lease_ttl_s / 4.0)
        if not poll_interval_s > 0:
            raise ConfigurationError(
                f"poll_interval_s must be > 0, got {poll_interval_s}"
            )
        if heartbeat_interval_s is None:
            heartbeat_interval_s = lease_ttl_s / 3.0
        if not 0 < heartbeat_interval_s <= lease_ttl_s / 2.0:
            raise ConfigurationError(
                f"heartbeat_interval_s must be in (0, lease_ttl_s/2] "
                f"so a live worker can never look dead, got "
                f"{heartbeat_interval_s} against ttl {lease_ttl_s}"
            )
        self.work_dir = Path(work_dir)
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl_s = float(lease_ttl_s)
        self.n_workers = int(n_workers)
        self.poll_interval_s = float(poll_interval_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """No pool to tear down; present for executor-contract parity."""

    def map_shards(
        self,
        shards: Iterable[Shard],
        tracer: Optional[Tracer] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> Iterator[ShardResult]:
        """Yield every requested shard's result via the lease protocol.

        Results arrive in completion order (resumed records first),
        exactly like ``ParallelExecutor.map_shards``; consumers needing
        global order collect by :attr:`ShardResult.index`.  The call
        blocks until *all* requested shards have records, re-claiming
        stragglers whose leases expire along the way.
        """
        shard_list = list(shards)
        if not shard_list:
            return
        manifest, spec = resolve_study_manifest(self.work_dir, shard_list)
        self._check_chunking(manifest, shard_list)
        store = CheckpointStore.open(self.work_dir, manifest)
        publish_spec(self.work_dir, spec)
        leases = LeaseStore(
            self.work_dir,
            manifest.digest,
            self.worker_id,
            lease_ttl_s=self.lease_ttl_s,
            tracer=tracer,
        )
        pump = _HeartbeatPump(
            leases, self.heartbeat_interval_s, tracer=tracer
        )
        total = len(shard_list)
        rows_total = sum(len(shard) for shard in shard_list)
        done = 0
        rows_done = 0
        started = perf_counter()
        pump.start()
        try:
            for _event, result in _drive(
                store,
                leases,
                shard_list,
                _study_evaluator(tracer),
                self.poll_interval_s,
                pump,
                tracer=tracer,
            ):
                done += 1
                rows_done += result.stop - result.start
                if progress is not None:
                    progress(
                        Progress(
                            done=done,
                            total=total,
                            rows_done=rows_done,
                            rows_total=rows_total,
                            elapsed_s=perf_counter() - started,
                        )
                    )
                yield result
        finally:
            pump.stop()

    def _check_chunking(
        self, manifest: ShardManifest, shard_list: List[Shard]
    ) -> None:
        """Reject shards cut differently than the work dir's manifest."""
        for shard in shard_list:
            start = shard.index * manifest.chunk_rows
            stop = min(start + manifest.chunk_rows, manifest.total_rows)
            if (
                shard.index >= manifest.n_shards
                or (shard.start, shard.stop) != (start, stop)
            ):
                raise ConfigurationError(
                    f"shard {shard.index} rows [{shard.start}, "
                    f"{shard.stop}) do not match the work dir manifest "
                    f"chunking (chunk_rows={manifest.chunk_rows}, "
                    f"expected [{start}, {stop})); pass "
                    f"chunk_rows={manifest.chunk_rows} or a fresh "
                    "work dir"
                )
