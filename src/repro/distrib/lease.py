"""Shard leases over a shared checkpoint directory.

The PR-4 checkpoint protocol already makes a directory of atomic
``shard-<index>.jsonl`` records a coordination-free description of
*what is done*; this module adds the complementary claim layer for
*who is working on what*.  A lease is a small JSON file under
``<work-dir>/leases/`` whose **creation** (``O_CREAT | O_EXCL``) is the
claim arbitration, whose **mtime** is the liveness signal (refreshed
atomically by heartbeats), and whose **deletion** is the release.

Correctness never depends on leases: shard evaluation is deterministic
and records are published with write-then-rename, so two workers
computing the same shard produce byte-identical records and the second
rename is a no-op.  Leases exist purely to keep N hosts from wasting
work on the same shard, which is why every failure path here degrades
to "treat as free and re-claim" rather than wedging a shard.

Clocks: wall-clock timestamps are banned from the wire (hosts disagree
about them).  Staleness is judged entirely on the *shared filesystem's*
clock, by comparing a lease file's mtime against the mtime of a probe
file freshly written to the same directory.  Both stamps come from the
same fileserver, so worker clock skew cancels out.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from ..errors import ConfigurationError, LeaseConflictError, StaleLeaseError
from ..io.serialization import lease_record_from_dict, lease_record_to_dict
from ..obs.tracer import Tracer

#: Subdirectory of the work dir holding lease files (and the clock
#: probes); kept apart from the shard records so ``shard-*.jsonl``
#: globs never see lease traffic.
LEASE_DIR_NAME = "leases"

#: Default lease time-to-live.  A worker that misses heartbeats for
#: this long is presumed dead and its shard becomes claimable.
DEFAULT_LEASE_TTL_S = 30.0


@dataclass(frozen=True)
class LeaseRecord:
    """The body of one lease file (see :mod:`repro.io.serialization`).

    The body is identity and diagnostics only — liveness lives in the
    file's mtime, never in these fields.
    """

    spec_digest: str
    shard_index: int
    owner: str
    lease_ttl_s: float
    heartbeats: int


class LeaseStore:
    """Claim, heartbeat, steal and release shard leases in a work dir.

    One instance per (worker, study): ``owner`` names this worker in
    every lease it takes, ``spec_digest`` pins the store to one study
    so a lease from a different study in the same directory is treated
    as foreign (corrupt) rather than honored.

    All mutating operations are single-syscall-atomic (``O_EXCL``
    create, ``os.replace`` rewrite, ``os.replace`` steal-rename,
    unlink), so any interleaving with other workers — or a crash at any
    point — leaves the directory in a state the protocol recovers from.
    """

    def __init__(
        self,
        work_dir: Union[str, Path],
        spec_digest: str,
        owner: str,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not spec_digest:
            raise ConfigurationError("lease store needs a non-empty digest")
        if not owner or any(sep in owner for sep in ("/", "\\", "\0")):
            raise ConfigurationError(
                f"worker id {owner!r} must be non-empty and contain no "
                "path separators (it names files in the work dir)"
            )
        if not lease_ttl_s > 0:
            raise ConfigurationError(
                f"lease_ttl_s must be > 0, got {lease_ttl_s}"
            )
        self.directory = Path(work_dir) / LEASE_DIR_NAME
        self.spec_digest = spec_digest
        self.owner = owner
        self.lease_ttl_s = float(lease_ttl_s)
        self._tracer = tracer
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- paths and the filesystem clock --------------------------------
    def lease_path(self, index: int) -> Path:
        return self.directory / f"shard-{index:06d}.lease.json"

    def clock_s(self) -> float:
        """Now, according to the work dir's filesystem.

        Writes (atomically replaces) this worker's private probe file
        and returns its mtime: the same clock that stamps every lease
        file, so expiry comparisons are skew-free across hosts.
        """
        probe = self.directory / f".clock-{self.owner}"
        tmp = self.directory / f".clock-{self.owner}.tmp"
        tmp.write_text("", encoding="utf-8")
        os.replace(tmp, probe)
        return probe.stat().st_mtime

    # -- reading -------------------------------------------------------
    def _inspect(
        self, path: Path, now_s: Optional[float] = None
    ) -> Tuple[str, Optional[LeaseRecord]]:
        """(state, record) for one lease file.

        States: ``"missing"``, ``"held"`` (live), ``"expired"`` (no
        heartbeat within the holder's declared ttl), or ``"corrupt"``
        (unparseable, torn, or from a different study/protocol — always
        claimable, never trusted).
        """
        try:
            raw = path.read_text(encoding="utf-8")
            mtime_s = path.stat().st_mtime
        except OSError:
            return "missing", None
        try:
            record = lease_record_from_dict(json.loads(raw))
        except (json.JSONDecodeError, ConfigurationError):
            return "corrupt", None
        if record.spec_digest != self.spec_digest:
            return "corrupt", record
        if now_s is None:
            now_s = self.clock_s()
        if now_s - mtime_s > record.lease_ttl_s:
            return "expired", record
        return "held", record

    def holder(self, index: int) -> Optional[LeaseRecord]:
        """The live holder of a shard's lease, if any."""
        state, record = self._inspect(self.lease_path(index))
        return record if state == "held" else None

    def active(self) -> Dict[int, LeaseRecord]:
        """Every live lease in the directory, keyed by shard index."""
        now_s = self.clock_s()
        live: Dict[int, LeaseRecord] = {}
        for path in sorted(self.directory.glob("shard-*.lease.json")):
            state, record = self._inspect(path, now_s=now_s)
            if state == "held" and record is not None:
                live[record.shard_index] = record
        return live

    # -- claiming ------------------------------------------------------
    def try_claim(self, index: int) -> Optional[LeaseRecord]:
        """Claim a shard's lease; ``None`` if a live worker holds it.

        Free shard: a single ``O_EXCL`` create wins or loses the race
        outright.  Expired or corrupt lease: the old file is first
        renamed aside to a per-owner tombstone — ``os.replace`` of a
        vanished source raises, so exactly one of N concurrent stealers
        gets to retire the old lease and contend for the fresh claim.
        A corrupt (torn, truncated, foreign) lease is *warned about*
        and treated as expired; it must never wedge its shard.
        """
        path = self.lease_path(index)
        record = LeaseRecord(
            spec_digest=self.spec_digest,
            shard_index=index,
            owner=self.owner,
            lease_ttl_s=self.lease_ttl_s,
            heartbeats=0,
        )
        payload = json.dumps(lease_record_to_dict(record)) + "\n"
        if self._create_exclusive(path, payload):
            self._count("distrib.leases.claimed")
            return record
        state, existing = self._inspect(path)
        if state == "held":
            return None
        if state == "missing":
            # Released between our failed create and the inspect; one
            # immediate retry, then defer to the next claim pass.
            if self._create_exclusive(path, payload):
                self._count("distrib.leases.claimed")
                return record
            return None
        if state == "corrupt":
            warnings.warn(
                f"lease file {path.name} is corrupt or torn; treating "
                f"shard {index} as unclaimed",
                RuntimeWarning,
                stacklevel=2,
            )
            self._count("distrib.leases.corrupt")
        tombstone = path.with_name(path.name + f".stale-{self.owner}")
        try:
            os.replace(path, tombstone)
        except OSError:
            return None  # another stealer retired it first
        tombstone.unlink(missing_ok=True)
        if self._create_exclusive(path, payload):
            self._count("distrib.leases.claimed")
            if state == "expired":
                self._count("distrib.leases.stolen")
                if existing is not None:
                    warnings.warn(
                        f"lease on shard {index} held by "
                        f"{existing.owner!r} expired (no heartbeat "
                        f"within {existing.lease_ttl_s:g}s); re-claiming",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            return record
        return None

    def claim(self, index: int) -> LeaseRecord:
        """Like :meth:`try_claim`, but a refusal raises.

        Raises :class:`~repro.errors.LeaseConflictError` naming the
        live holder when the shard is taken.
        """
        record = self.try_claim(index)
        if record is not None:
            return record
        holder = self.holder(index)
        owner = holder.owner if holder is not None else None
        held_by = f" by {owner!r}" if owner is not None else ""
        raise LeaseConflictError(
            f"shard {index} is already leased{held_by}; it becomes "
            f"claimable if its holder misses heartbeats for "
            f"{self.lease_ttl_s:g}s",
            shard_index=index,
            owner=owner,
        )

    # -- holding -------------------------------------------------------
    def heartbeat(self, index: int) -> LeaseRecord:
        """Refresh a held lease's liveness (atomic rewrite, mtime bump).

        Raises :class:`~repro.errors.StaleLeaseError` if the lease has
        vanished or was re-claimed by another worker — the signal to
        abandon the shard (its record, if we still publish one, is
        byte-identical to the thief's, so nothing is lost).
        """
        path = self.lease_path(index)
        state, record = self._inspect(path)
        if record is None or state == "missing":
            raise StaleLeaseError(
                f"lease on shard {index} vanished (released or stolen "
                f"after missed heartbeats)",
                shard_index=index,
                owner=self.owner,
            )
        if record.owner != self.owner:
            raise StaleLeaseError(
                f"lease on shard {index} now belongs to "
                f"{record.owner!r} (this worker {self.owner!r} was "
                f"presumed dead and its lease re-claimed)",
                shard_index=index,
                owner=record.owner,
            )
        refreshed = replace(record, heartbeats=record.heartbeats + 1)
        tmp = path.with_name(path.name + f".hb-{self.owner}")
        tmp.write_text(
            json.dumps(lease_record_to_dict(refreshed)) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        self._count("distrib.heartbeats")
        return refreshed

    def release(self, index: int) -> bool:
        """Drop this worker's lease on a shard.

        Returns ``False`` if the lease is already gone (releases are
        idempotent; a completed shard's lease may be swept by whichever
        worker observes the record first).  Raises
        :class:`~repro.errors.StaleLeaseError` if another live worker
        holds the shard now — deleting *their* lease would invite a
        third claim.
        """
        path = self.lease_path(index)
        state, record = self._inspect(path)
        if state == "missing":
            return False
        if record is not None and record.owner != self.owner:
            if state == "held":
                raise StaleLeaseError(
                    f"cannot release shard {index}: its lease now "
                    f"belongs to {record.owner!r} (this worker "
                    f"{self.owner!r} was presumed dead)",
                    shard_index=index,
                    owner=record.owner,
                )
            return False  # expired foreign lease; leave it to a stealer
        path.unlink(missing_ok=True)
        self._count("distrib.leases.released")
        return True

    def sweep(self, indices: Iterable[int]) -> int:
        """Remove leases (any owner's) for shards known to be complete.

        Once a shard's record is on disk its lease is pure litter —
        including a crashed worker's, which would otherwise linger for
        a ttl.  Also clears abandoned steal-tombstones.  Returns the
        number of lease files removed.
        """
        removed = 0
        for index in indices:
            path = self.lease_path(index)
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
            for tombstone in self.directory.glob(f"{path.name}.stale-*"):
                tombstone.unlink(missing_ok=True)
        if removed:
            self._count("distrib.leases.swept", removed)
        return removed

    def _create_exclusive(self, path: Path, payload: str) -> bool:
        """Publish a complete lease file iff ``path`` does not exist.

        Write-then-hard-link: the payload is fully written *before* the
        name appears, and ``os.link`` fails atomically if the name
        exists — so readers never observe a half-written fresh lease.
        Filesystems without hard links fall back to an ``O_EXCL``
        create (the fallback has a microscopic torn-read window, which
        the corrupt-lease recovery path already tolerates).
        """
        tmp = path.with_name(path.name + f".new-{self.owner}")
        tmp.write_text(payload, encoding="utf-8")
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        except OSError:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
            try:
                os.write(fd, payload.encode("utf-8"))
            finally:
                os.close(fd)
        finally:
            tmp.unlink(missing_ok=True)
        return True

    def _count(self, name: str, n: int = 1) -> None:
        if self._tracer is not None:
            self._tracer.counter(name).add(n)
