"""Multi-host distributed studies over the shard-checkpoint protocol.

A shared work directory *is* the coordinator: the PR-4 manifest +
atomic shard records say what is done, and this package's lease files
say who is working on what.  ``docs/distributed-protocol.md`` pins the
wire formats (under
:data:`repro.io.serialization.DISTRIB_PROTOCOL_VERSION`) and
``docs/operations.md`` covers running a fleet.

Two entry points:

* initiate and collect — ``run_study(spec,
  executor=DistributedExecutor(work_dir))``, or
  ``repro-skyline study --distributed --work-dir DIR``;
* join and help — :func:`run_worker`, or
  ``repro-skyline worker --work-dir DIR``.
"""

from .executor import (
    SPEC_FILE_NAME,
    DistributedExecutor,
    default_worker_id,
    publish_spec,
    resolve_study_manifest,
)
from .lease import (
    DEFAULT_LEASE_TTL_S,
    LEASE_DIR_NAME,
    LeaseRecord,
    LeaseStore,
)
from .worker import WorkerReport, open_study, run_worker

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "LEASE_DIR_NAME",
    "SPEC_FILE_NAME",
    "DistributedExecutor",
    "LeaseRecord",
    "LeaseStore",
    "WorkerReport",
    "default_worker_id",
    "open_study",
    "publish_spec",
    "resolve_study_manifest",
    "run_worker",
]
