"""Discrete-event model of the sensor -> compute -> control pipeline.

The simulation mirrors a typical robot software stack:

* the **sensor** publishes frames at ``f_sensor`` (latest-value
  semantics: a new frame overwrites an unread one — stale frames are
  dropped, not queued);
* the **compute** stage is a single server: whenever free, it grabs
  the newest unread frame and works on it for ``1/f_compute``;
* the **control** stage ticks at ``f_control`` and, when a new
  decision is available, converts it into an actuation within its own
  ``1/f_control`` cycle.

Two execution modes are supported.  ``overlapped=True`` (the default)
runs the stages concurrently, realizing Eq. 1/Eq. 3: throughput
approaches ``min(f_sensor, f_compute, f_control)``.  With
``overlapped=False`` the loop runs strictly sequentially — sense, then
compute, then act — realizing Eq. 2's worst case: throughput
``1 / (T_sensor + T_compute + T_control)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import SimulationError
from ..units import require_positive
from .des import DiscreteEventSimulator
from .jitter import JitterModel, NoJitter


@dataclass(frozen=True)
class PipelineStats:
    """Steady-state statistics of a simulated pipeline run."""

    duration_s: float
    actions: int
    frames_produced: int
    frames_dropped: int
    action_throughput_hz: float
    mean_latency_s: float
    p95_latency_s: float
    max_latency_s: float

    @property
    def drop_fraction(self) -> float:
        """Fraction of sensor frames never processed."""
        if self.frames_produced == 0:
            return 0.0
        return self.frames_dropped / self.frames_produced


class _PipelineRun:
    """Mutable state shared by the stage callbacks of one run."""

    def __init__(self) -> None:
        self.latest_frame_t: Optional[float] = None
        self.frame_consumed = True
        self.compute_busy = False
        self.decision_frame_t: Optional[float] = None
        self.decision_fresh = False
        self.frames_produced = 0
        self.frames_dropped = 0
        self.action_times: List[float] = []
        self.latencies: List[float] = []


def simulate_pipeline(
    f_sensor_hz: float,
    f_compute_hz: float,
    f_control_hz: float,
    duration_s: float = 20.0,
    overlapped: bool = True,
    jitter: Optional[JitterModel] = None,
    seed: int = 0,
    warmup_s: float = 1.0,
) -> PipelineStats:
    """Simulate the three-stage pipeline and collect statistics.

    ``warmup_s`` of initial transient is excluded from throughput and
    latency statistics.  Latency is measured from frame capture to the
    control output it produced.
    """
    require_positive("f_sensor_hz", f_sensor_hz)
    require_positive("f_compute_hz", f_compute_hz)
    require_positive("f_control_hz", f_control_hz)
    require_positive("duration_s", duration_s)
    if warmup_s >= duration_s:
        raise SimulationError("warmup must be shorter than the run")

    jitter = jitter or NoJitter()
    rng = np.random.default_rng(seed)
    sim = DiscreteEventSimulator()
    state = _PipelineRun()

    t_sensor = 1.0 / f_sensor_hz
    t_compute = 1.0 / f_compute_hz
    t_control = 1.0 / f_control_hz

    if overlapped:
        _wire_overlapped(sim, state, t_sensor, t_compute, t_control, jitter, rng)
    else:
        _wire_sequential(sim, state, t_sensor, t_compute, t_control, jitter, rng)

    sim.run_until(duration_s)

    times = np.asarray(state.action_times)
    lats = np.asarray(state.latencies)
    keep = times >= warmup_s
    times, lats = times[keep], lats[keep]
    window = duration_s - warmup_s
    actions = len(times)
    return PipelineStats(
        duration_s=duration_s,
        actions=actions,
        frames_produced=state.frames_produced,
        frames_dropped=state.frames_dropped,
        action_throughput_hz=actions / window,
        mean_latency_s=float(lats.mean()) if actions else 0.0,
        p95_latency_s=float(np.percentile(lats, 95)) if actions else 0.0,
        max_latency_s=float(lats.max()) if actions else 0.0,
    )


def _wire_overlapped(
    sim: DiscreteEventSimulator,
    state: _PipelineRun,
    t_sensor: float,
    t_compute: float,
    t_control: float,
    jitter: JitterModel,
    rng: np.random.Generator,
) -> None:
    """Concurrent stages with latest-value frame passing."""

    def sensor_tick() -> None:
        if not state.frame_consumed:
            state.frames_dropped += 1
        state.latest_frame_t = sim.now
        state.frame_consumed = False
        state.frames_produced += 1
        if not state.compute_busy:
            start_compute()

    def start_compute() -> None:
        if state.frame_consumed or state.latest_frame_t is None:
            return
        state.compute_busy = True
        frame_t = state.latest_frame_t
        state.frame_consumed = True
        service = t_compute * jitter.sample(rng)

        def finish() -> None:
            state.compute_busy = False
            state.decision_frame_t = frame_t
            state.decision_fresh = True
            start_compute()  # immediately grab a waiting frame, if any

        sim.schedule(service, finish)

    def control_tick() -> None:
        if state.decision_fresh and state.decision_frame_t is not None:
            state.decision_fresh = False
            state.action_times.append(sim.now)
            state.latencies.append(sim.now - state.decision_frame_t)

    sim.every(t_sensor, sensor_tick, jitter=lambda: jitter.sample(rng))
    sim.every(t_control, control_tick, jitter=lambda: jitter.sample(rng))


def _wire_sequential(
    sim: DiscreteEventSimulator,
    state: _PipelineRun,
    t_sensor: float,
    t_compute: float,
    t_control: float,
    jitter: JitterModel,
    rng: np.random.Generator,
) -> None:
    """Strictly serial sense -> compute -> act loop (Eq. 2 regime)."""

    def loop() -> None:
        # Eq. 2 semantics: the sample's latency spans the entire
        # sense -> compute -> act sequence, acquisition included.
        cycle_start = sim.now
        frame_t = cycle_start + t_sensor * jitter.sample(rng)

        def after_sense() -> None:
            state.frames_produced += 1
            compute_done = t_compute * jitter.sample(rng)

            def after_compute() -> None:
                control_done = t_control * jitter.sample(rng)

                def after_control() -> None:
                    state.action_times.append(sim.now)
                    state.latencies.append(sim.now - cycle_start)
                    loop()

                sim.schedule(control_done, after_control)

            sim.schedule(compute_done, after_compute)

        sim.schedule_at(frame_t, after_sense)

    loop()
