"""Timing-jitter models for pipeline stages.

Real sensor drivers, inference runtimes and control loops do not tick
perfectly; jitter models perturb each cycle's period multiplicatively.
A sample of 1.0 is a perfect period, 1.1 is 10 % late.  Samples are
clamped positive so time always advances.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import require_nonnegative

_MIN_FACTOR = 0.05


class JitterModel(ABC):
    """Per-cycle multiplicative period perturbation."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one positive period multiplier."""


@dataclass(frozen=True)
class NoJitter(JitterModel):
    """Deterministic ticking (the analytic model's assumption)."""

    def sample(self, rng: np.random.Generator) -> float:
        return 1.0


@dataclass(frozen=True)
class UniformJitter(JitterModel):
    """Uniform jitter in ``[1 - half_width, 1 + half_width]``, clamped.

    Wide windows (``half_width`` near 1) can draw factors arbitrarily
    close to zero, which would stall a discrete-event clock; samples
    are floored at the same ``_MIN_FACTOR`` :class:`GaussianJitter`
    uses so every period stays usefully positive.
    """

    half_width: float = 0.1

    def __post_init__(self) -> None:
        require_nonnegative("half_width", self.half_width)
        if self.half_width >= 1.0:
            raise ConfigurationError(
                f"half_width must be < 1 to keep periods > 0, got "
                f"{self.half_width!r}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return max(
            _MIN_FACTOR,
            float(rng.uniform(1.0 - self.half_width, 1.0 + self.half_width)),
        )


@dataclass(frozen=True)
class GaussianJitter(JitterModel):
    """Gaussian jitter with standard deviation ``sigma`` (clamped)."""

    sigma: float = 0.05

    def __post_init__(self) -> None:
        require_nonnegative("sigma", self.sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return max(_MIN_FACTOR, float(rng.normal(1.0, self.sigma)))
