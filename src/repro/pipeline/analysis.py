"""Cross-checking the DES pipeline against the analytic bottleneck law.

:func:`verify_bottleneck_law` runs both execution modes of the
discrete-event pipeline and compares the measured throughput/latency
against Eq. 1-3, returning a structured report the test-suite and
benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.throughput import SensorComputeControl
from .jitter import JitterModel
from .pipeline_sim import PipelineStats, simulate_pipeline


@dataclass(frozen=True)
class BottleneckCheck:
    """Analytic vs simulated pipeline behaviour for one rate triple."""

    pipeline: SensorComputeControl
    overlapped: PipelineStats
    sequential: PipelineStats

    @property
    def analytic_throughput_hz(self) -> float:
        """Eq. 3 prediction."""
        return self.pipeline.action_throughput_hz

    @property
    def analytic_latency_bounds_s(self) -> tuple[float, float]:
        """Eq. 1-2 latency bounds (max, sum of stage latencies)."""
        return self.pipeline.latency_bounds_s

    @property
    def overlapped_error(self) -> float:
        """Relative error of the DES vs Eq. 3 in overlapped mode."""
        analytic = self.analytic_throughput_hz
        return abs(self.overlapped.action_throughput_hz - analytic) / analytic

    @property
    def sequential_throughput_hz(self) -> float:
        """The Eq. 2 regime's throughput ``1 / sum(latencies)``."""
        _, upper = self.analytic_latency_bounds_s
        return 1.0 / upper

    @property
    def sequential_error(self) -> float:
        """Relative error of the DES vs ``1/sum`` in sequential mode."""
        analytic = self.sequential_throughput_hz
        return abs(self.sequential.action_throughput_hz - analytic) / analytic


def verify_bottleneck_law(
    f_sensor_hz: float,
    f_compute_hz: float,
    f_control_hz: float = 1000.0,
    duration_s: float = 30.0,
    jitter: Optional[JitterModel] = None,
    seed: int = 0,
) -> BottleneckCheck:
    """Run both DES modes for one rate triple and bundle the evidence."""
    pipeline = SensorComputeControl(
        f_sensor_hz=f_sensor_hz,
        f_compute_hz=f_compute_hz,
        f_control_hz=f_control_hz,
    )
    overlapped = simulate_pipeline(
        f_sensor_hz,
        f_compute_hz,
        f_control_hz,
        duration_s=duration_s,
        overlapped=True,
        jitter=jitter,
        seed=seed,
    )
    sequential = simulate_pipeline(
        f_sensor_hz,
        f_compute_hz,
        f_control_hz,
        duration_s=duration_s,
        overlapped=False,
        jitter=jitter,
        seed=seed,
    )
    return BottleneckCheck(
        pipeline=pipeline, overlapped=overlapped, sequential=sequential
    )
