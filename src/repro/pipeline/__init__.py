"""Discrete-event simulation of the sensor-compute-control pipeline."""

from .des import DiscreteEventSimulator
from .jitter import GaussianJitter, JitterModel, NoJitter, UniformJitter
from .pipeline_sim import PipelineStats, simulate_pipeline
from .analysis import BottleneckCheck, verify_bottleneck_law

__all__ = [
    "DiscreteEventSimulator",
    "GaussianJitter",
    "JitterModel",
    "NoJitter",
    "UniformJitter",
    "PipelineStats",
    "simulate_pipeline",
    "BottleneckCheck",
    "verify_bottleneck_law",
]
