"""A minimal discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples on a heap; callbacks
may schedule further events.  The engine is deliberately tiny — just
enough to model the three-stage decision pipeline and the multi-rate
co-simulation — but is generic and reusable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

Callback = Callable[[], None]


class DiscreteEventSimulator:
    """A heap-scheduled event loop with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callback]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time (s)."""
        return self._now

    def schedule(self, delay_s: float, callback: Callback) -> None:
        """Schedule ``callback`` to fire ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay {delay_s})"
            )
        heapq.heappush(
            self._queue, (self._now + delay_s, next(self._sequence), callback)
        )

    def schedule_at(self, time_s: float, callback: Callback) -> None:
        """Schedule ``callback`` at absolute simulation time ``time_s``."""
        self.schedule(time_s - self._now, callback)

    def every(
        self,
        period_s: float,
        callback: Callback,
        start_s: float = 0.0,
        jitter: Optional[Callable[[], float]] = None,
    ) -> None:
        """Fire ``callback`` periodically, optionally with per-cycle
        jitter: ``jitter()`` returns the multiplicative factor applied
        to each period (e.g. 1.05 = 5 % late).  Factors must be > 0 —
        a zero factor would self-reschedule at the current instant and
        livelock the event loop (the clock never advances past it)."""
        if period_s <= 0:
            raise SimulationError(f"period must be > 0, got {period_s}")

        def tick() -> None:
            callback()
            factor = jitter() if jitter is not None else 1.0
            if factor <= 0.0:
                raise SimulationError(
                    f"jitter factor {factor!r} must be > 0: the "
                    f"{period_s} s period would never advance the clock"
                )
            self.schedule(period_s * factor, tick)

        self.schedule_at(start_s, tick)

    def run_until(self, t_end_s: float) -> None:
        """Run events in time order until the clock reaches ``t_end_s``."""
        if t_end_s < self._now:
            raise SimulationError(
                f"t_end {t_end_s} is before current time {self._now}"
            )
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            while self._queue and self._queue[0][0] <= t_end_s:
                time_s, _, callback = heapq.heappop(self._queue)
                self._now = time_s
                callback()
            self._now = t_end_s
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
