"""Pareto-frontier extraction over evaluated candidates.

Objectives are (name, direction) pairs; a candidate is dominated when
another is at least as good on every objective and strictly better on
one.  O(n^2) — design spaces here are hundreds of points, not millions.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..errors import ConfigurationError
from .explorer import EvaluatedCandidate

#: An objective: extractor + True for maximize / False for minimize.
Objective = Tuple[Callable[[EvaluatedCandidate], float], bool]

#: Common objective extractors.
MAX_VELOCITY: Objective = (lambda r: r.safe_velocity, True)
MIN_MASS: Objective = (lambda r: r.total_mass_g, False)
MIN_TDP: Objective = (lambda r: r.compute_tdp_w, False)


def _dominates(
    a: EvaluatedCandidate,
    b: EvaluatedCandidate,
    objectives: Sequence[Objective],
) -> bool:
    at_least_as_good = True
    strictly_better = False
    for extract, maximize in objectives:
        va, vb = extract(a), extract(b)
        if maximize:
            if va < vb:
                at_least_as_good = False
                break
            if va > vb:
                strictly_better = True
        else:
            if va > vb:
                at_least_as_good = False
                break
            if va < vb:
                strictly_better = True
    return at_least_as_good and strictly_better


def pareto_front(
    results: Sequence[EvaluatedCandidate],
    objectives: Sequence[Objective] = (MAX_VELOCITY, MIN_TDP),
) -> List[EvaluatedCandidate]:
    """The non-dominated subset under the given objectives."""
    if not objectives:
        raise ConfigurationError("need at least one objective")
    front = [
        candidate
        for candidate in results
        if not any(
            _dominates(other, candidate, objectives)
            for other in results
            if other is not candidate
        )
    ]
    front.sort(key=lambda r: objectives[0][0](r), reverse=objectives[0][1])
    return front
