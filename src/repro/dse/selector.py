"""Constrained best-candidate selection.

Answers the paper's Sec. VI-D question directly: "given several
onboard computers, algorithms and sensors, how do we select components
to maximize the UAV's safe velocity?" — with optional mass/TDP/velocity
constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import InfeasibleDesignError
from .explorer import EvaluatedCandidate


@dataclass(frozen=True)
class SelectionCriteria:
    """Constraints applied before picking the fastest design."""

    max_total_mass_g: Optional[float] = None
    max_compute_tdp_w: Optional[float] = None
    min_safe_velocity: Optional[float] = None

    def admits(self, result: EvaluatedCandidate) -> bool:
        if (
            self.max_total_mass_g is not None
            and result.total_mass_g > self.max_total_mass_g
        ):
            return False
        if (
            self.max_compute_tdp_w is not None
            and result.compute_tdp_w > self.max_compute_tdp_w
        ):
            return False
        if (
            self.min_safe_velocity is not None
            and result.safe_velocity < self.min_safe_velocity
        ):
            return False
        return True


def select_best(
    results: Sequence[EvaluatedCandidate],
    criteria: Optional[SelectionCriteria] = None,
) -> EvaluatedCandidate:
    """The feasible candidate with the highest safe velocity."""
    criteria = criteria or SelectionCriteria()
    feasible: List[EvaluatedCandidate] = [
        result for result in results if criteria.admits(result)
    ]
    if not feasible:
        raise InfeasibleDesignError(
            "no design satisfies the selection criteria"
        )
    return max(feasible, key=lambda result: result.safe_velocity)
