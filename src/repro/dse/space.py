"""Design-space enumeration: (UAV x compute platform x algorithm).

A :class:`DesignSpace` is built from registry names; iterating yields
:class:`Candidate` objects with the composed configuration.  Candidate
generation skips physically meaningless pairings (a platform heavier
than the UAV's remaining lift margin still *flies* under the braking
floor, so nothing is silently dropped — but callers can filter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..autonomy.workloads import get_algorithm
from ..compute.platforms import get_platform
from ..errors import ConfigurationError
from ..uav.configuration import UAVConfiguration
from ..uav.registry import get_preset


@dataclass(frozen=True)
class Candidate:
    """One fully specified design point."""

    uav_name: str
    compute_name: str
    algorithm_name: str
    uav: UAVConfiguration
    f_compute_hz: float

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.uav_name, self.compute_name, self.algorithm_name)


@dataclass(frozen=True)
class DesignSpace:
    """The cross product of registered component names."""

    uav_names: Sequence[str]
    compute_names: Sequence[str]
    algorithm_names: Sequence[str]

    def __post_init__(self) -> None:
        if not (self.uav_names and self.compute_names and self.algorithm_names):
            raise ConfigurationError(
                "the design space needs at least one entry per dimension"
            )

    def __len__(self) -> int:
        return (
            len(self.uav_names)
            * len(self.compute_names)
            * len(self.algorithm_names)
        )

    def candidates(self) -> Iterator[Candidate]:
        """Yield every composed candidate in deterministic order."""
        for uav_name in self.uav_names:
            base = get_preset(uav_name)
            for compute_name in self.compute_names:
                platform = get_platform(compute_name)
                uav = base.with_compute(platform)
                for algorithm_name in self.algorithm_names:
                    algorithm = get_algorithm(algorithm_name)
                    yield Candidate(
                        uav_name=uav_name,
                        compute_name=compute_name,
                        algorithm_name=algorithm_name,
                        uav=uav,
                        f_compute_hz=algorithm.throughput_on(platform),
                    )
