"""Exhaustive evaluation of a design space through the F-1 model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.bounds import BoundKind
from ..io.tables import format_table
from .space import Candidate, DesignSpace


@dataclass(frozen=True)
class EvaluatedCandidate:
    """A candidate with its F-1 metrics."""

    candidate: Candidate
    safe_velocity: float
    roof_velocity: float
    knee_hz: float
    action_throughput_hz: float
    bound: BoundKind
    total_mass_g: float
    compute_tdp_w: float

    @property
    def label(self) -> str:
        c = self.candidate
        return f"{c.uav_name}+{c.compute_name}+{c.algorithm_name}"


def evaluate(candidate: Candidate) -> EvaluatedCandidate:
    """Run one candidate through the F-1 model."""
    model = candidate.uav.f1(candidate.f_compute_hz)
    return EvaluatedCandidate(
        candidate=candidate,
        safe_velocity=model.safe_velocity,
        roof_velocity=model.roof_velocity,
        knee_hz=model.knee.throughput_hz,
        action_throughput_hz=model.action_throughput_hz,
        bound=model.bound,
        total_mass_g=candidate.uav.total_mass_g,
        compute_tdp_w=candidate.uav.compute.tdp_w,
    )


def explore(space: DesignSpace) -> List[EvaluatedCandidate]:
    """Evaluate every candidate, sorted by safe velocity (descending)."""
    results = [evaluate(candidate) for candidate in space.candidates()]
    results.sort(key=lambda r: r.safe_velocity, reverse=True)
    return results


def results_table(results: List[EvaluatedCandidate]) -> str:
    """Render exploration results as an aligned text table."""
    return format_table(
        (
            "uav", "compute", "algorithm", "f_c (Hz)", "knee (Hz)",
            "v_safe (m/s)", "bound",
        ),
        [
            (
                r.candidate.uav_name,
                r.candidate.compute_name,
                r.candidate.algorithm_name,
                f"{r.candidate.f_compute_hz:.2f}",
                f"{r.knee_hz:.1f}",
                f"{r.safe_velocity:.2f}",
                r.bound.value,
            )
            for r in results
        ],
    )
