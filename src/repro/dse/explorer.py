"""Exhaustive evaluation of a design space through the F-1 model.

:func:`explore` routes every candidate through the vectorized
:mod:`repro.batch` engine in one columnar pass — both the F-1 math
*and* the UAV assembly (mass, heatsink, thrust, acceleration
accounting, via :func:`repro.batch.assembly.assemble_configurations`)
— while :func:`evaluate` keeps the scalar single-candidate path for
spot checks.  Both produce identical :class:`EvaluatedCandidate`
records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..batch.assembly import assemble_configurations
from ..batch.engine import evaluate_matrix
from ..core.bounds import BoundKind
from ..io.tables import format_table
from .space import Candidate, DesignSpace


@dataclass(frozen=True)
class EvaluatedCandidate:
    """A candidate with its F-1 metrics."""

    candidate: Candidate
    safe_velocity: float
    roof_velocity: float
    knee_hz: float
    action_throughput_hz: float
    bound: BoundKind
    total_mass_g: float
    compute_tdp_w: float

    @property
    def label(self) -> str:
        c = self.candidate
        return f"{c.uav_name}+{c.compute_name}+{c.algorithm_name}"


def evaluate(candidate: Candidate) -> EvaluatedCandidate:
    """Run one candidate through the scalar F-1 model."""
    model = candidate.uav.f1(candidate.f_compute_hz)
    return EvaluatedCandidate(
        candidate=candidate,
        safe_velocity=model.safe_velocity,
        roof_velocity=model.roof_velocity,
        knee_hz=model.knee.throughput_hz,
        action_throughput_hz=model.action_throughput_hz,
        bound=model.bound,
        total_mass_g=candidate.uav.total_mass_g,
        compute_tdp_w=candidate.uav.compute.tdp_w,
    )


def explore(space: DesignSpace) -> List[EvaluatedCandidate]:
    """Evaluate every candidate, sorted by safe velocity (descending).

    All candidates are columnized — including their mass/thrust
    assembly, via :func:`~repro.batch.assembly.assemble_configurations`
    — and evaluated in a single vectorized pass; results match the
    scalar :func:`evaluate` exactly.
    """
    candidates = list(space.candidates())
    fleet = assemble_configurations(
        [c.uav for c in candidates],
        f_compute_hz=[c.f_compute_hz for c in candidates],
        labels=[
            f"{c.uav_name}+{c.compute_name}+{c.algorithm_name}"
            for c in candidates
        ],
    )
    batch = evaluate_matrix(fleet.matrix)
    results = [
        EvaluatedCandidate(
            candidate=c,
            safe_velocity=float(batch.safe_velocity[i]),
            roof_velocity=float(batch.roof_velocity[i]),
            knee_hz=float(batch.knee_hz[i]),
            action_throughput_hz=float(batch.action_throughput_hz[i]),
            bound=batch.bound_at(i),
            total_mass_g=float(fleet.total_mass_g[i]),
            compute_tdp_w=float(fleet.compute_tdp_w[i]),
        )
        for i, c in enumerate(candidates)
    ]
    results.sort(key=lambda r: r.safe_velocity, reverse=True)
    return results


def results_table(results: List[EvaluatedCandidate]) -> str:
    """Render exploration results as an aligned text table."""
    return format_table(
        (
            "uav", "compute", "algorithm", "f_c (Hz)", "knee (Hz)",
            "v_safe (m/s)", "bound",
        ),
        [
            (
                r.candidate.uav_name,
                r.candidate.compute_name,
                r.candidate.algorithm_name,
                f"{r.candidate.f_compute_hz:.2f}",
                f"{r.knee_hz:.1f}",
                f"{r.safe_velocity:.2f}",
                r.bound.value,
            )
            for r in results
        ],
    )
