"""Exhaustive evaluation of a design space through the F-1 model.

:func:`explore` is a thin builder over the declarative
:mod:`repro.study` layer: it expresses the whole exploration as a
``StudySpec`` (a ``presets`` design ranked by safe velocity) and runs
it through the shared planner, which performs the same one-pass
columnar assembly + evaluation
(:func:`repro.batch.assembly.assemble_configurations` +
:func:`repro.batch.engine.evaluate_matrix`) this module used to wire
directly — same ordering, same numerics.  :func:`evaluate` keeps the
scalar single-candidate path for spot checks; both produce identical
:class:`EvaluatedCandidate` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.bounds import BoundKind
from ..io.tables import format_table
from ..study import DesignSpec, RankClause, StudySpec, run_study
from .space import Candidate, DesignSpace


@dataclass(frozen=True)
class EvaluatedCandidate:
    """A candidate with its F-1 metrics."""

    candidate: Candidate
    safe_velocity: float
    roof_velocity: float
    knee_hz: float
    action_throughput_hz: float
    bound: BoundKind
    total_mass_g: float
    compute_tdp_w: float

    @property
    def label(self) -> str:
        c = self.candidate
        return f"{c.uav_name}+{c.compute_name}+{c.algorithm_name}"


def evaluate(candidate: Candidate) -> EvaluatedCandidate:
    """Run one candidate through the scalar F-1 model."""
    model = candidate.uav.f1(candidate.f_compute_hz)
    return EvaluatedCandidate(
        candidate=candidate,
        safe_velocity=model.safe_velocity,
        roof_velocity=model.roof_velocity,
        knee_hz=model.knee.throughput_hz,
        action_throughput_hz=model.action_throughput_hz,
        bound=model.bound,
        total_mass_g=candidate.uav.total_mass_g,
        compute_tdp_w=candidate.uav.compute.tdp_w,
    )


def explore(space: DesignSpace) -> List[EvaluatedCandidate]:
    """Evaluate every candidate, sorted by safe velocity (descending).

    All candidates are columnized — including their mass/thrust
    assembly — and evaluated in a single vectorized pass through the
    :mod:`repro.study` planner; results match the scalar
    :func:`evaluate` exactly.  Equivalent to running
    ``StudySpec(design=DesignSpec.presets(...), rank=RankClause())``.
    """
    spec = StudySpec(
        design=DesignSpec.presets(
            space.uav_names, space.compute_names, space.algorithm_names
        ),
        rank=RankClause(by="safe_velocity", descending=True),
    )
    study = run_study(spec)
    candidates = list(space.candidates())
    batch = study.batch
    return [
        EvaluatedCandidate(
            candidate=candidates[i],
            safe_velocity=float(batch.safe_velocity[i]),
            roof_velocity=float(batch.roof_velocity[i]),
            knee_hz=float(batch.knee_hz[i]),
            action_throughput_hz=float(batch.action_throughput_hz[i]),
            bound=batch.bound_at(int(i)),
            total_mass_g=float(study.total_mass_g[i]),
            compute_tdp_w=float(study.compute_tdp_w[i]),
        )
        for i in study.selected_indices
    ]


def results_table(results: List[EvaluatedCandidate]) -> str:
    """Render exploration results as an aligned text table."""
    return format_table(
        (
            "uav", "compute", "algorithm", "f_c (Hz)", "knee (Hz)",
            "v_safe (m/s)", "bound",
        ),
        [
            (
                r.candidate.uav_name,
                r.candidate.compute_name,
                r.candidate.algorithm_name,
                f"{r.candidate.f_compute_hz:.2f}",
                f"{r.knee_hz:.1f}",
                f"{r.safe_velocity:.2f}",
                r.bound.value,
            )
            for r in results
        ],
    )
