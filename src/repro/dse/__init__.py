"""Automated design-space exploration over UAV component choices.

The paper's conclusion calls out automated DSE as the F-1 model's
natural application; this package provides it: enumerate
(UAV x compute x algorithm) candidates, evaluate each through the F-1
model, extract the Pareto frontier and select under constraints.
"""

from .explorer import EvaluatedCandidate, explore
from .pareto import pareto_front
from .selector import SelectionCriteria, select_best
from .space import Candidate, DesignSpace

__all__ = [
    "EvaluatedCandidate",
    "explore",
    "pareto_front",
    "SelectionCriteria",
    "select_best",
    "Candidate",
    "DesignSpace",
]
