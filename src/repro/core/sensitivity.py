"""Closed-form sensitivity analysis of the safety model.

For architects deciding *where* to spend optimization effort, the
partial derivatives of Eq. 4 say how much safe velocity one more meter
of sensing range, one more m/s^2 of acceleration, or one more hertz of
action throughput buys — and, chained through the thrust-margin model,
what one gram of payload costs.  All derivatives are analytic (the
test suite cross-checks them against finite differences).

With ``s = sqrt(T^2 + 2 d / a)`` and ``v = a (s - T)``:

* ``dv/dd = 1 / s``
* ``dv/da = s - T - d / (a s)``
* ``dv/dT = a (T / s - 1)``           (negative: slower is worse)
* ``dv/df = -dv/dT / f^2``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import GRAVITY, require_positive
from .model import F1Model
from .physics import ThrustMarginModel


@dataclass(frozen=True)
class SensitivityReport:
    """Partial derivatives of safe velocity at one operating point.

    Derivatives are in natural units (m/s per meter, per m/s^2, per Hz,
    per gram); elasticities are the dimensionless ``(x / v) dv/dx`` —
    the % velocity change per % parameter change, directly comparable
    across knobs.
    """

    velocity: float
    d_range: float
    d_acceleration: float
    d_throughput: float
    d_payload_per_gram: float | None
    elasticity_range: float
    elasticity_acceleration: float
    elasticity_throughput: float

    def dominant_knob(self) -> str:
        """Which parameter's relative improvement buys the most."""
        candidates = {
            "sensing range": self.elasticity_range,
            "acceleration": self.elasticity_acceleration,
            "action throughput": self.elasticity_throughput,
        }
        return max(candidates, key=lambda k: abs(candidates[k]))


def velocity_partials(
    t_action_s: float, sensing_range_m: float, a_max: float
) -> tuple[float, float, float]:
    """(dv/dd, dv/da, dv/dT) of Eq. 4 at the given point."""
    require_positive("sensing_range_m", sensing_range_m)
    require_positive("a_max", a_max)
    if t_action_s < 0:
        raise ConfigurationError(
            f"t_action_s must be >= 0, got {t_action_s!r}"
        )
    s = math.sqrt(t_action_s**2 + 2.0 * sensing_range_m / a_max)
    dv_dd = 1.0 / s
    dv_da = s - t_action_s - sensing_range_m / (a_max * s)
    dv_dt = a_max * (t_action_s / s - 1.0)
    return dv_dd, dv_da, dv_dt


def analyze_sensitivity(
    model: F1Model,
    thrust_model: ThrustMarginModel | None = None,
    total_mass_g: float | None = None,
) -> SensitivityReport:
    """Sensitivities of the model's operating point.

    When ``thrust_model`` and ``total_mass_g`` are given, the payload
    derivative is chained through ``da/dm = -g T / m^2`` (zero inside
    the braking-floor regime, where extra grams are free — the flat
    tail of Fig. 9).
    """
    f_action = model.action_throughput_hz
    t_action = 1.0 / f_action
    d, a = model.sensing_range_m, model.a_max
    v = model.safe_velocity

    dv_dd, dv_da, dv_dt = velocity_partials(t_action, d, a)
    dv_df = -dv_dt / f_action**2

    d_payload = None
    if thrust_model is not None and total_mass_g is not None:
        require_positive("total_mass_g", total_mass_g)
        margin = (
            GRAVITY
            * (thrust_model.total_thrust_g - total_mass_g)
            / total_mass_g
        )
        if margin > thrust_model.braking_floor:
            da_dm = (
                -GRAVITY * thrust_model.total_thrust_g / total_mass_g**2
            )
            d_payload = dv_da * da_dm
        else:
            d_payload = 0.0  # braking-floor regime: mass is free

    return SensitivityReport(
        velocity=v,
        d_range=dv_dd,
        d_acceleration=dv_da,
        d_throughput=dv_df,
        d_payload_per_gram=d_payload,
        elasticity_range=dv_dd * d / v,
        elasticity_acceleration=dv_da * a / v,
        elasticity_throughput=dv_df * f_action / v,
    )
