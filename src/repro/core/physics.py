"""Acceleration-from-physics models (Eq. 5 of the paper) and drag.

The paper estimates the maximum acceleration a UAV can command from its
total rotor thrust ``T``, pitch angle ``alpha`` and mass ``m``
(Fig. 8)::

    T cos(alpha) - m g = m a_y        T sin(alpha) - F_D = m a_x

The F-1 model deliberately ignores drag (``F_D``) — it is an
early-phase, optimistic design tool — and computes ``a_max`` from the
payload weight alone.  Several concrete models are provided:

* :class:`ThrustMarginModel` — the default.  ``a = g (T - W) / W``
  using the *rated* motor pull from the spec sheet, floored at the
  braking-pitch acceleration ``g tan(alpha_brake)``.  The floor models
  the guaranteed deceleration available by pitching the airframe even
  when the rated hover-thrust margin vanishes, which is what lets the
  paper's over-loaded UAV-B and UAV-D configurations still brake.
* :class:`PitchEnvelopeModel` — horizontal acceleration while holding
  altitude: ``a = g tan(min(acos(W/T), alpha_max))``.
* :class:`FixedAcceleration` — a direct ``a_max`` knob (the Skyline
  tool exposes acceleration implicitly through weight and pull knobs,
  but the paper's Fig. 5 example sets ``a_max = 50 m/s^2`` directly).

:class:`QuadraticDrag` supports the higher-fidelity flight simulator
used for experimental validation, where drag is one of the paper's
acknowledged sources of model error.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import InfeasibleDesignError
from ..units import (
    AIR_DENSITY,
    GRAVITY,
    deg_to_rad,
    require_in_range,
    require_nonnegative,
    require_positive,
)

#: Default guaranteed braking pitch angle (degrees).  Calibrated so the
#: thrust-margin model reproduces the paper's UAV-B/D safe velocities
#: (~1.5 m/s) whose rated margins are zero or negative.
DEFAULT_BRAKING_PITCH_DEG = 2.3


def braking_floor_acceleration(braking_pitch_deg):
    """The guaranteed braking deceleration ``g tan(alpha_brake)``.

    Polymorphic over floats and NumPy arrays (``np.tan`` returns a
    plain-compatible ``float64`` for scalar input), so the scalar
    :class:`ThrustMarginModel` and the vectorized assembly kernels in
    :mod:`repro.batch.assembly` evaluate the same expression.
    """
    return GRAVITY * np.tan(np.radians(braking_pitch_deg))


def thrust_margin_acceleration(
    total_thrust_g,
    total_mass_g,
    braking_pitch_deg=DEFAULT_BRAKING_PITCH_DEG,
):
    """Eq. 5 acceleration with the braking-pitch floor, unvalidated.

    ``max(g * (T - W) / W, g * tan(alpha_brake))`` — the single source
    of truth shared by :meth:`ThrustMarginModel.max_acceleration`
    (which validates and raises on infeasible scalars) and the
    vectorized Knobs->UAV assembly chain.  Accepts floats or NumPy
    columns; may legitimately return values <= 0 when the floor is zero
    and thrust cannot lift the weight — feasibility is the caller's
    check.
    """
    margin = GRAVITY * (total_thrust_g - total_mass_g) / total_mass_g
    return np.maximum(margin, braking_floor_acceleration(braking_pitch_deg))


class AccelerationModel(ABC):
    """Maps a UAV's total mass to its maximum commandable acceleration."""

    @abstractmethod
    def max_acceleration(self, total_mass_g: float) -> float:
        """Maximum acceleration (m/s^2) at all-up mass ``total_mass_g``."""

    def max_payload_g(self, base_mass_g: float) -> float:
        """Largest extra payload (g) at which acceleration stays > 0.

        Defaults to a bisection search over payload; models with a
        closed form override this.
        """
        require_nonnegative("base_mass_g", base_mass_g)
        lo, hi = 0.0, 1.0
        if self.max_acceleration(base_mass_g) <= 0.0:
            return 0.0
        while self.max_acceleration(base_mass_g + hi) > 0.0:
            hi *= 2.0
            if hi > 1e9:  # model never reaches zero (e.g. braking floor)
                return math.inf
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.max_acceleration(base_mass_g + mid) > 0.0:
                lo = mid
            else:
                hi = mid
        return lo


@dataclass(frozen=True)
class FixedAcceleration(AccelerationModel):
    """A constant ``a_max`` independent of mass (Fig. 5's usage)."""

    a_max: float

    def __post_init__(self) -> None:
        require_positive("a_max", self.a_max)

    def max_acceleration(self, total_mass_g: float) -> float:
        require_positive("total_mass_g", total_mass_g)
        return self.a_max


@dataclass(frozen=True)
class ThrustMarginModel(AccelerationModel):
    """Rated-thrust margin with a braking-pitch floor (the default).

    ``total_thrust_g`` is the summed rated pull of all motors in
    gram-force (e.g. Table I's 4 x 435 g).  The acceleration is::

        a = max( g * (T - W) / W,  g * tan(alpha_brake) )

    With ``braking_pitch_deg = 0`` the floor disappears and the model
    degenerates to the pure margin, raising
    :class:`InfeasibleDesignError` when thrust cannot lift the weight.
    """

    total_thrust_g: float
    braking_pitch_deg: float = DEFAULT_BRAKING_PITCH_DEG

    def __post_init__(self) -> None:
        require_positive("total_thrust_g", self.total_thrust_g)
        require_in_range("braking_pitch_deg", self.braking_pitch_deg, 0.0, 89.0)

    @property
    def braking_floor(self) -> float:
        """The guaranteed braking deceleration ``g tan(alpha_brake)``."""
        return float(braking_floor_acceleration(self.braking_pitch_deg))

    def max_acceleration(self, total_mass_g: float) -> float:
        require_positive("total_mass_g", total_mass_g)
        a = float(
            thrust_margin_acceleration(
                self.total_thrust_g, total_mass_g, self.braking_pitch_deg
            )
        )
        if a <= 0.0:
            raise InfeasibleDesignError(
                f"total thrust {self.total_thrust_g:.0f} g cannot move "
                f"an all-up mass of {total_mass_g:.0f} g and no braking "
                "floor is configured"
            )
        return a

    def max_payload_g(self, base_mass_g: float) -> float:
        require_nonnegative("base_mass_g", base_mass_g)
        if self.braking_pitch_deg > 0.0:
            return math.inf  # the floor keeps acceleration positive
        return max(self.total_thrust_g - base_mass_g, 0.0)


@dataclass(frozen=True)
class PitchEnvelopeModel(AccelerationModel):
    """Altitude-holding horizontal acceleration envelope.

    While holding altitude, the vertical thrust component must balance
    weight (``T cos(alpha) = W``), so the largest usable pitch is
    ``acos(W/T)`` and the horizontal acceleration is ``g tan(alpha)``,
    optionally capped at ``max_pitch_deg`` (autonomy stacks commonly
    limit pitch for sensing stability).
    """

    total_thrust_g: float
    max_pitch_deg: float = 35.0

    def __post_init__(self) -> None:
        require_positive("total_thrust_g", self.total_thrust_g)
        require_in_range("max_pitch_deg", self.max_pitch_deg, 0.0, 89.0)

    def max_acceleration(self, total_mass_g: float) -> float:
        require_positive("total_mass_g", total_mass_g)
        ratio = total_mass_g / self.total_thrust_g
        if ratio >= 1.0:
            raise InfeasibleDesignError(
                f"thrust-to-weight {1.0 / ratio:.2f} < 1: the UAV cannot "
                "hover, so the altitude-holding envelope is empty"
            )
        alpha = min(math.acos(ratio), deg_to_rad(self.max_pitch_deg))
        return GRAVITY * math.tan(alpha)

    def max_payload_g(self, base_mass_g: float) -> float:
        require_nonnegative("base_mass_g", base_mass_g)
        return max(self.total_thrust_g - base_mass_g, 0.0)


@dataclass(frozen=True)
class QuadraticDrag:
    """Aerodynamic drag ``F_D = 1/2 rho C_d A v^2``.

    ``cd_area_m2`` is the drag-coefficient-times-frontal-area product
    (the two are never needed separately).  Used only by the flight
    simulator; the analytic F-1 model intentionally omits drag.
    """

    cd_area_m2: float
    air_density: float = AIR_DENSITY

    def __post_init__(self) -> None:
        require_nonnegative("cd_area_m2", self.cd_area_m2)
        require_positive("air_density", self.air_density)

    def force_n(self, velocity: float) -> float:
        """Drag force magnitude (N) opposing motion at ``velocity``."""
        return (
            0.5
            * self.air_density
            * self.cd_area_m2
            * velocity
            * abs(velocity)
        )

    def deceleration(self, velocity: float, total_mass_g: float) -> float:
        """Drag-induced deceleration (m/s^2, signed against motion)."""
        require_positive("total_mass_g", total_mass_g)
        return self.force_n(velocity) / (total_mass_g / 1000.0)

    def terminal_velocity(self, accel: float, total_mass_g: float) -> float:
        """Velocity at which drag cancels a constant ``accel`` push."""
        require_positive("accel", accel)
        require_positive("total_mass_g", total_mass_g)
        if self.cd_area_m2 == 0.0:
            return math.inf
        mass_kg = total_mass_g / 1000.0
        return math.sqrt(
            2.0 * mass_kg * accel / (self.air_density * self.cd_area_m2)
        )
