"""The safety model (Eq. 4 of the paper) and its closed-form inverses.

The central relationship, established and validated by prior work the
paper builds on (Liu et al., ICRA 2016), is::

    v_safe = a_max * ( sqrt(T_action^2 + 2*d / a_max) - T_action )

where ``d`` is the sensing range in meters, ``a_max`` the maximum
(braking) acceleration in m/s^2 and ``T_action`` the period of the
sensor-compute-control pipeline in seconds.  A UAV travelling at
``v_safe`` can always come to a stop before an obstacle that first
becomes visible at distance ``d``, accounting for the worst-case one
action period of reaction delay.

All functions accept floats or numpy arrays for the swept argument and
return the matching type.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from ..errors import InfeasibleDesignError
from ..units import require_nonnegative, require_positive

ArrayLike = Union[float, np.ndarray]


def safe_velocity(
    t_action_s: ArrayLike, sensing_range_m: float, a_max: float
) -> ArrayLike:
    """Safe velocity (Eq. 4) for an action period ``t_action_s``.

    ``t_action_s`` may be a scalar or numpy array; negative periods are
    invalid.  ``t_action_s == 0`` yields the physics roof
    ``sqrt(2 * d * a_max)``.
    """
    require_positive("sensing_range_m", sensing_range_m)
    require_positive("a_max", a_max)
    t = np.asarray(t_action_s, dtype=float)
    if np.any(t < 0):
        raise InfeasibleDesignError("t_action_s must be >= 0")
    v = a_max * (np.sqrt(t * t + 2.0 * sensing_range_m / a_max) - t)
    return float(v) if np.isscalar(t_action_s) else v


def safe_velocity_at_rate(
    f_action_hz: ArrayLike, sensing_range_m: float, a_max: float
) -> ArrayLike:
    """Safe velocity as a function of action *throughput* in Hz."""
    f = np.asarray(f_action_hz, dtype=float)
    if np.any(f <= 0):
        raise InfeasibleDesignError("f_action_hz must be > 0")
    result = safe_velocity(1.0 / f, sensing_range_m, a_max)
    return float(result) if np.isscalar(f_action_hz) else result


def physics_roof(sensing_range_m: float, a_max: float) -> float:
    """The asymptotic velocity limit ``sqrt(2 * d * a_max)``.

    This is the roof of the F-1 model: the velocity an infinitely fast
    decision pipeline would permit, bounded only by body dynamics.
    """
    require_positive("sensing_range_m", sensing_range_m)
    require_positive("a_max", a_max)
    return math.sqrt(2.0 * sensing_range_m * a_max)


def required_action_period(
    v_target: float, sensing_range_m: float, a_max: float
) -> float:
    """Invert Eq. 4: the slowest action period that still permits
    ``v_target``.

    Closed form: ``T = d / v - v / (2 * a_max)``.  Raises
    :class:`InfeasibleDesignError` when ``v_target`` is at or above the
    physics roof (no finite pipeline achieves it).
    """
    require_positive("v_target", v_target)
    roof = physics_roof(sensing_range_m, a_max)
    if v_target >= roof:
        raise InfeasibleDesignError(
            f"target velocity {v_target:.3f} m/s is not below the physics "
            f"roof {roof:.3f} m/s; no action rate can achieve it"
        )
    return sensing_range_m / v_target - v_target / (2.0 * a_max)


def required_action_throughput(
    v_target: float, sensing_range_m: float, a_max: float
) -> float:
    """The minimum action throughput (Hz) that permits ``v_target``."""
    period = required_action_period(v_target, sensing_range_m, a_max)
    if period <= 0:  # numerically at the roof
        raise InfeasibleDesignError(
            f"target velocity {v_target:.3f} m/s requires an unbounded "
            "action throughput"
        )
    return 1.0 / period


def stopping_distance(
    velocity: float, t_action_s: float, a_max: float
) -> float:
    """Worst-case distance covered from obstacle visibility to full stop.

    One full action period elapses at constant velocity (the decision
    delay), followed by a constant-deceleration brake:
    ``v * T + v^2 / (2 * a_max)``.  Eq. 4 is exactly the statement
    ``stopping_distance(v_safe, T_action, a_max) == sensing_range``.
    """
    require_nonnegative("velocity", velocity)
    require_nonnegative("t_action_s", t_action_s)
    require_positive("a_max", a_max)
    return velocity * t_action_s + velocity * velocity / (2.0 * a_max)
