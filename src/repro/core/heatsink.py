"""Heatsink mass as a function of compute TDP (Fig. 12 of the paper).

The paper sizes heatsinks with a commercial web calculator [54]; this
module replaces it with a power law fitted to every number the paper
publishes: 30 W -> 162 g, "~20x in TDP -> ~16.2x in heatsink weight"
(so ~1.5 W -> 10 g), and 15 W -> ~halved (we get 84.9 g vs the quoted
81 g).  The fit::

    m_heatsink [g] = 6.85 * TDP[W] ** 0.9297

with exponent ``ln(16.2)/ln(20)``.  Platforms below
``NO_HEATSINK_TDP_W`` (e.g. the sub-1 W Intel NCS) need no heatsink.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..units import require_nonnegative, require_positive

#: Multiplier of the fitted power law (grams at 1 W).
HEATSINK_COEFFICIENT_G = 6.85

#: Exponent of the fitted power law, ln(16.2) / ln(20).
HEATSINK_EXPONENT = 0.9296937485957477

#: Below this TDP the bare package dissipates its heat (no heatsink).
NO_HEATSINK_TDP_W = 1.0


def _power_law(tdp_w):
    """The fitted mass law above the no-heatsink cutoff.

    Polymorphic over floats and NumPy arrays so the scalar path and the
    vectorized :func:`heatsink_mass_g_array` share one expression.
    """
    return HEATSINK_COEFFICIENT_G * tdp_w**HEATSINK_EXPONENT


def heatsink_mass_g(tdp_w: float) -> float:
    """Heatsink mass (g) required to dissipate ``tdp_w`` watts."""
    require_nonnegative("tdp_w", tdp_w)
    if tdp_w <= NO_HEATSINK_TDP_W:
        return 0.0
    return _power_law(tdp_w)


def heatsink_mass_g_array(tdp_w: np.ndarray) -> np.ndarray:
    """Columnar :func:`heatsink_mass_g`: one heatsink mass per TDP.

    Applies the same power law and sub-``NO_HEATSINK_TDP_W`` cutoff to a
    whole column at once (used by :mod:`repro.batch.assembly`).
    """
    tdp = np.asarray(tdp_w, dtype=np.float64)
    if not np.all(np.isfinite(tdp)) or np.any(tdp < 0.0):
        raise ConfigurationError("tdp_w must be finite and >= 0 everywhere")
    return np.where(tdp <= NO_HEATSINK_TDP_W, 0.0, _power_law(tdp))


def tdp_for_heatsink_mass(mass_g: float) -> float:
    """Inverse of :func:`heatsink_mass_g`: the TDP a heatsink of
    ``mass_g`` grams can dissipate (W)."""
    require_positive("mass_g", mass_g)
    return (mass_g / HEATSINK_COEFFICIENT_G) ** (1.0 / HEATSINK_EXPONENT)
