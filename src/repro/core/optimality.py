"""Optimal / over- / under-provisioned design assessment (Sec. III-C).

A balanced design places the pipeline's action throughput exactly at
the knee.  Faster is *over-provisioned* (wasted optimization effort —
the excess can be traded for lower TDP, Sec. VI-A), slower is
*under-provisioned* (the report's ``required_speedup`` is the
optimization target the paper hands to architects, e.g. "improve SPA
throughput by 39x").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..units import require_nonnegative, require_positive
from .knee import KneePoint


class DesignStatus(Enum):
    """Where the operating point sits relative to the knee."""

    OPTIMAL = "optimal"
    OVER_PROVISIONED = "over-provisioned"
    UNDER_PROVISIONED = "under-provisioned"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OptimalityReport:
    """Assessment of one design point against its knee.

    ``provisioning_factor`` is ``f_action / f_knee``: > 1 means excess
    throughput, < 1 a shortfall.  ``required_speedup`` is the factor by
    which the action throughput must improve to reach the knee (1.0
    when already there or beyond).  ``excess_factor`` is the factor by
    which it exceeds the knee (1.0 when at or below).
    """

    status: DesignStatus
    action_throughput_hz: float
    knee: KneePoint
    velocity: float
    tolerance: float

    @property
    def provisioning_factor(self) -> float:
        return self.action_throughput_hz / self.knee.throughput_hz

    @property
    def required_speedup(self) -> float:
        return max(1.0, 1.0 / self.provisioning_factor)

    @property
    def excess_factor(self) -> float:
        return max(1.0, self.provisioning_factor)

    @property
    def velocity_gap(self) -> float:
        """Velocity left on the table relative to the knee (m/s, >= 0)."""
        return max(0.0, self.knee.velocity - self.velocity)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.status is DesignStatus.OPTIMAL:
            return (
                f"optimal: {self.action_throughput_hz:.1f} Hz is within "
                f"{self.tolerance:.0%} of the {self.knee.throughput_hz:.1f} Hz knee"
            )
        if self.status is DesignStatus.OVER_PROVISIONED:
            return (
                f"over-provisioned by {self.excess_factor:.2f}x: "
                f"{self.action_throughput_hz:.1f} Hz vs a "
                f"{self.knee.throughput_hz:.1f} Hz knee — trade the excess "
                "for lower TDP / payload weight"
            )
        return (
            f"under-provisioned: needs a {self.required_speedup:.2f}x "
            f"throughput improvement to reach the {self.knee.throughput_hz:.1f} Hz "
            f"knee (currently {self.action_throughput_hz:.1f} Hz, leaving "
            f"{self.velocity_gap:.2f} m/s unrealized)"
        )


def assess_design(
    action_throughput_hz: float,
    knee: KneePoint,
    velocity: float,
    tolerance: float = 0.05,
) -> OptimalityReport:
    """Assess a design point; ``tolerance`` is the relative band around
    the knee throughput still considered optimal (default +-5 %)."""
    require_positive("action_throughput_hz", action_throughput_hz)
    require_nonnegative("velocity", velocity)
    require_nonnegative("tolerance", tolerance)
    ratio = action_throughput_hz / knee.throughput_hz
    if 1.0 - tolerance <= ratio <= 1.0 + tolerance:
        status = DesignStatus.OPTIMAL
    elif ratio > 1.0:
        status = DesignStatus.OVER_PROVISIONED
    else:
        status = DesignStatus.UNDER_PROVISIONED
    return OptimalityReport(
        status=status,
        action_throughput_hz=action_throughput_hz,
        knee=knee,
        velocity=velocity,
        tolerance=tolerance,
    )
