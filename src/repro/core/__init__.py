"""Core F-1 model: the paper's primary contribution.

This package implements the analytic machinery of the F-1 visual
performance model (Sections III–IV of the paper):

* :mod:`repro.core.safety` — Eq. 4 safe-velocity model and inverses.
* :mod:`repro.core.throughput` — Eq. 1–3 sensor-compute-control
  pipeline throughput and latency bounds.
* :mod:`repro.core.physics` — Eq. 5 acceleration-from-thrust models
  and drag.
* :mod:`repro.core.knee` — knee-point location strategies.
* :mod:`repro.core.bounds` — compute/sensor/control/physics bound
  classification and ceilings.
* :mod:`repro.core.optimality` — optimal / over- / under-provisioned
  design assessment.
* :mod:`repro.core.model` — the :class:`F1Model` facade tying the
  above together.
"""

from .bounds import BoundKind, Ceiling, classify_bound
from .heatsink import heatsink_mass_g, tdp_for_heatsink_mass
from .knee import (
    DEFAULT_KNEE_FRACTION,
    FractionOfRoofKnee,
    KneePoint,
    KneeStrategy,
    LinearIntersectionKnee,
    MaxCurvatureKnee,
)
from .model import F1Model
from .optimality import DesignStatus, OptimalityReport, assess_design
from .physics import (
    DEFAULT_BRAKING_PITCH_DEG,
    AccelerationModel,
    FixedAcceleration,
    PitchEnvelopeModel,
    QuadraticDrag,
    ThrustMarginModel,
)
from .safety import (
    physics_roof,
    required_action_period,
    required_action_throughput,
    safe_velocity,
    safe_velocity_at_rate,
    stopping_distance,
)
from .sensitivity import (
    SensitivityReport,
    analyze_sensitivity,
    velocity_partials,
)
from .sweep import RooflineCurve, throughput_grid
from .throughput import (
    SensorComputeControl,
    action_throughput,
    pipeline_latency_bounds,
)

__all__ = [
    "BoundKind",
    "Ceiling",
    "classify_bound",
    "heatsink_mass_g",
    "tdp_for_heatsink_mass",
    "DEFAULT_KNEE_FRACTION",
    "FractionOfRoofKnee",
    "KneePoint",
    "KneeStrategy",
    "LinearIntersectionKnee",
    "MaxCurvatureKnee",
    "F1Model",
    "DesignStatus",
    "OptimalityReport",
    "assess_design",
    "DEFAULT_BRAKING_PITCH_DEG",
    "AccelerationModel",
    "FixedAcceleration",
    "PitchEnvelopeModel",
    "QuadraticDrag",
    "ThrustMarginModel",
    "physics_roof",
    "required_action_period",
    "required_action_throughput",
    "safe_velocity",
    "safe_velocity_at_rate",
    "stopping_distance",
    "SensitivityReport",
    "analyze_sensitivity",
    "velocity_partials",
    "RooflineCurve",
    "throughput_grid",
    "SensorComputeControl",
    "action_throughput",
    "pipeline_latency_bounds",
]
