"""Knee-point location strategies for the F-1 roofline.

The knee point is the minimum action throughput that (nearly) attains
the physics roof; it separates the compute/sensor-bound region (left)
from the physics-bound region (right).  The paper annotates knees but
never states a rule for placing them, so the strategy is pluggable:

* :class:`FractionOfRoofKnee` (default) — the throughput at which
  Eq. 4 reaches a fraction ``rho`` of the roof.  Closed form::

      f_k = (2*rho / (1 - rho^2)) * sqrt(a_max / (2*d))

  ``rho = 0.984`` is calibrated once against the paper's Fig. 5
  example (a=50 m/s^2, d=10 m -> knee ~= 100 Hz) and then reproduces
  the case-study knees (Pelican+TX2 43 Hz, nano 26 Hz, ...).
* :class:`MaxCurvatureKnee` — Kneedle-style maximum curvature of the
  velocity-vs-log-throughput curve, found numerically.
* :class:`LinearIntersectionKnee` — intersection of the low-rate
  asymptote ``v ~= d * f`` with the roof: ``f_k = sqrt(2*a/d)``.
  Matches the classic roofline's ridge-point construction but places
  knees far left of the paper's annotations; provided for ablation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..units import require_fraction, require_positive
from .safety import physics_roof, safe_velocity_at_rate

#: Calibrated default fraction of the roof defining the knee.
DEFAULT_KNEE_FRACTION = 0.984


@dataclass(frozen=True)
class KneePoint:
    """The located knee: throughput (Hz), velocity (m/s) and the
    fraction of the physics roof the velocity represents."""

    throughput_hz: float
    velocity: float
    fraction_of_roof: float

    def __post_init__(self) -> None:
        require_positive("throughput_hz", self.throughput_hz)
        require_positive("velocity", self.velocity)


class KneeStrategy(ABC):
    """Strategy interface: locate the knee for given ``(d, a_max)``."""

    @abstractmethod
    def locate(self, sensing_range_m: float, a_max: float) -> KneePoint:
        """Return the knee point for the given physics parameters."""


@dataclass(frozen=True)
class FractionOfRoofKnee(KneeStrategy):
    """Knee at the throughput where Eq. 4 reaches ``fraction`` of the
    roof (default strategy; see module docstring for the calibration)."""

    fraction: float = DEFAULT_KNEE_FRACTION

    def __post_init__(self) -> None:
        require_fraction("fraction", self.fraction)

    def locate(self, sensing_range_m: float, a_max: float) -> KneePoint:
        roof = physics_roof(sensing_range_m, a_max)
        rho = self.fraction
        coefficient = 2.0 * rho / (1.0 - rho * rho)
        f_k = coefficient * math.sqrt(a_max / (2.0 * sensing_range_m))
        return KneePoint(
            throughput_hz=f_k,
            velocity=rho * roof,
            fraction_of_roof=rho,
        )


@dataclass(frozen=True)
class LinearIntersectionKnee(KneeStrategy):
    """Knee where the low-rate asymptote ``v = d*f`` meets the roof."""

    def locate(self, sensing_range_m: float, a_max: float) -> KneePoint:
        roof = physics_roof(sensing_range_m, a_max)
        f_k = math.sqrt(2.0 * a_max / sensing_range_m)
        velocity = safe_velocity_at_rate(f_k, sensing_range_m, a_max)
        return KneePoint(
            throughput_hz=f_k,
            velocity=velocity,
            fraction_of_roof=velocity / roof,
        )


@dataclass(frozen=True)
class MaxCurvatureKnee(KneeStrategy):
    """Kneedle-style knee: maximum curvature of v(log10 f).

    The curve is sampled on ``samples`` points spanning ``decades``
    decades of throughput centred (logarithmically) on the
    linear-intersection rate, and the curvature
    ``|y''| / (1 + y'^2)^(3/2)`` of the *normalized* curve is maximized.
    """

    samples: int = field(default=2001)
    decades: float = field(default=6.0)

    def __post_init__(self) -> None:
        if self.samples < 16:
            raise ConfigurationError(
                f"samples must be >= 16, got {self.samples!r}"
            )
        require_positive("decades", self.decades)

    def locate(self, sensing_range_m: float, a_max: float) -> KneePoint:
        roof = physics_roof(sensing_range_m, a_max)
        center = math.log10(math.sqrt(2.0 * a_max / sensing_range_m))
        half = self.decades / 2.0
        log_f = np.linspace(center - half, center + half, self.samples)
        f = 10.0 ** log_f
        v = safe_velocity_at_rate(f, sensing_range_m, a_max)
        # Normalize both axes to [0, 1] so curvature is scale-free.
        x = (log_f - log_f[0]) / (log_f[-1] - log_f[0])
        y = v / roof
        dx = x[1] - x[0]
        d1 = np.gradient(y, dx)
        d2 = np.gradient(d1, dx)
        curvature = np.abs(d2) / (1.0 + d1 * d1) ** 1.5
        # The interesting (concave) knee is where the curve bends toward
        # the roof, i.e. d2 < 0.
        curvature = np.where(d2 < 0.0, curvature, 0.0)
        idx = int(np.argmax(curvature))
        f_k = float(f[idx])
        velocity = float(v[idx])
        return KneePoint(
            throughput_hz=f_k,
            velocity=velocity,
            fraction_of_roof=velocity / roof,
        )
