"""Bound classification and ceilings (Sec. III-B of the paper).

A UAV design point is *physics bound* when its action throughput is at
or beyond the knee (faster decisions cannot raise the safe velocity),
*sensor bound* when the sensor's frame rate caps the pipeline below the
knee, *compute bound* when the autonomy algorithm's throughput does,
and *control bound* in the (rare) case the flight controller does.
Each sub-knee stage also contributes a *ceiling*: the horizontal line
at the velocity its rate permits.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from .safety import safe_velocity_at_rate
from .throughput import SensorComputeControl


class BoundKind(Enum):
    """Which subsystem limits the safe velocity."""

    COMPUTE = "compute"
    SENSOR = "sensor"
    CONTROL = "control"
    PHYSICS = "physics"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Ceiling:
    """A horizontal velocity ceiling contributed by one pipeline stage."""

    stage: str
    throughput_hz: float
    velocity: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.stage}-bound ceiling: {self.velocity:.2f} m/s "
            f"@ {self.throughput_hz:.1f} Hz"
        )


def classify_bound(
    pipeline: SensorComputeControl, knee_throughput_hz: float
) -> BoundKind:
    """Classify a design point per Sec. III-B.

    At or beyond the knee the design is physics bound; otherwise the
    slowest stage names the bound (ties resolve in pipeline order
    sensor -> compute -> control, matching the paper's definitions:
    sensor bound requires ``f_compute > f_sensor``).
    """
    if pipeline.action_throughput_hz >= knee_throughput_hz:
        return BoundKind.PHYSICS
    stage = pipeline.bottleneck_stage
    return {
        "sensor": BoundKind.SENSOR,
        "compute": BoundKind.COMPUTE,
        "control": BoundKind.CONTROL,
    }[stage]


def ceilings(
    pipeline: SensorComputeControl,
    sensing_range_m: float,
    a_max: float,
    knee_throughput_hz: float,
) -> List[Ceiling]:
    """All sub-knee stage ceilings, slowest (lowest) first.

    A stage whose rate is at or beyond the knee imposes no ceiling —
    the roof already caps the velocity there.
    """
    result = [
        Ceiling(
            stage=name,
            throughput_hz=rate,
            velocity=safe_velocity_at_rate(rate, sensing_range_m, a_max),
        )
        for name, rate in pipeline.stage_rates
        if rate < knee_throughput_hz
    ]
    result.sort(key=lambda ceiling: ceiling.velocity)
    return result
