"""Throughput sweeps and the roofline curve container.

The F-1 plot is built by sweeping action throughput over a logarithmic
grid and evaluating Eq. 4 at each point; :class:`RooflineCurve` bundles
the resulting arrays with the physics parameters that produced them so
plotting and analysis code can stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import require_positive
from .safety import physics_roof, safe_velocity_at_rate


def throughput_grid(
    f_min_hz: float, f_max_hz: float, points: int = 256
) -> np.ndarray:
    """A logarithmically spaced action-throughput grid (Hz)."""
    require_positive("f_min_hz", f_min_hz)
    require_positive("f_max_hz", f_max_hz)
    if f_max_hz <= f_min_hz:
        raise ConfigurationError(
            f"f_max_hz must exceed f_min_hz, got f_max_hz={f_max_hz!r} "
            f"<= f_min_hz={f_min_hz!r}"
        )
    if points < 2:
        raise ConfigurationError(f"points must be >= 2, got {points!r}")
    return np.logspace(np.log10(f_min_hz), np.log10(f_max_hz), points)


@dataclass(frozen=True)
class RooflineCurve:
    """An evaluated F-1 curve: v_safe over a throughput grid."""

    throughput_hz: np.ndarray
    velocity: np.ndarray
    sensing_range_m: float
    a_max: float

    def __post_init__(self) -> None:
        if self.throughput_hz.shape != self.velocity.shape:
            raise ConfigurationError(
                f"throughput_hz and velocity grids must match, got "
                f"{self.throughput_hz.shape} vs {self.velocity.shape}"
            )

    @classmethod
    def evaluate(
        cls,
        sensing_range_m: float,
        a_max: float,
        f_min_hz: float = 0.1,
        f_max_hz: float = 10_000.0,
        points: int = 256,
    ) -> "RooflineCurve":
        """Sweep Eq. 4 over a log grid of action throughputs."""
        grid = throughput_grid(f_min_hz, f_max_hz, points)
        velocity = safe_velocity_at_rate(grid, sensing_range_m, a_max)
        return cls(
            throughput_hz=grid,
            velocity=velocity,
            sensing_range_m=sensing_range_m,
            a_max=a_max,
        )

    @property
    def roof(self) -> float:
        """The physics roof of this curve."""
        return physics_roof(self.sensing_range_m, self.a_max)

    def __len__(self) -> int:
        return len(self.throughput_hz)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        """Iterate (throughput, velocity) pairs."""
        return zip(
            (float(f) for f in self.throughput_hz),
            (float(v) for v in self.velocity),
        )

    def clipped_below(self, ceiling_velocity: float) -> "RooflineCurve":
        """A copy with velocities clipped to ``ceiling_velocity``.

        Used to draw stage ceilings on top of the physics roofline.
        """
        require_positive("ceiling_velocity", ceiling_velocity)
        return RooflineCurve(
            throughput_hz=self.throughput_hz,
            velocity=np.minimum(self.velocity, ceiling_velocity),
            sensing_range_m=self.sensing_range_m,
            a_max=self.a_max,
        )
