"""The :class:`F1Model` facade: one UAV design point, fully analyzed.

``F1Model`` binds the physics parameters (sensing range, maximum
acceleration) to a concrete sensor-compute-control pipeline and exposes
every quantity the paper derives from that pairing: the roofline curve,
the knee, the achieved operating point, stage ceilings, bound
classification and the optimality verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..units import require_positive
from .bounds import BoundKind, Ceiling, ceilings, classify_bound
from .knee import FractionOfRoofKnee, KneePoint, KneeStrategy
from .optimality import OptimalityReport, assess_design
from .safety import (
    physics_roof,
    required_action_throughput,
    safe_velocity_at_rate,
)
from .sweep import RooflineCurve
from .throughput import DEFAULT_CONTROL_RATE_HZ, SensorComputeControl


@dataclass(frozen=True)
class F1Model:
    """The F-1 visual performance model for one UAV configuration.

    Parameters
    ----------
    sensing_range_m:
        Obstacle-detection range ``d`` of the onboard sensor (m).
    a_max:
        Maximum commandable (braking) acceleration (m/s^2), typically
        produced by an :class:`~repro.core.physics.AccelerationModel`.
    pipeline:
        The sensor-compute-control stage rates.
    knee_strategy:
        How the knee is located; defaults to the calibrated
        fraction-of-roof rule.
    """

    sensing_range_m: float
    a_max: float
    pipeline: SensorComputeControl
    knee_strategy: KneeStrategy = field(default_factory=FractionOfRoofKnee)

    def __post_init__(self) -> None:
        require_positive("sensing_range_m", self.sensing_range_m)
        require_positive("a_max", self.a_max)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_components(
        cls,
        sensing_range_m: float,
        a_max: float,
        f_sensor_hz: float,
        f_compute_hz: float,
        f_control_hz: float = DEFAULT_CONTROL_RATE_HZ,
        knee_strategy: Optional[KneeStrategy] = None,
    ) -> "F1Model":
        """Build a model directly from stage rates."""
        pipeline = SensorComputeControl(
            f_sensor_hz=f_sensor_hz,
            f_compute_hz=f_compute_hz,
            f_control_hz=f_control_hz,
        )
        return cls(
            sensing_range_m=sensing_range_m,
            a_max=a_max,
            pipeline=pipeline,
            knee_strategy=knee_strategy or FractionOfRoofKnee(),
        )

    def with_compute_throughput(self, f_compute_hz: float) -> "F1Model":
        """A copy of this model with a different compute rate."""
        return replace(self, pipeline=self.pipeline.with_compute(f_compute_hz))

    def with_sensor_throughput(self, f_sensor_hz: float) -> "F1Model":
        """A copy of this model with a different sensor rate."""
        return replace(self, pipeline=self.pipeline.with_sensor(f_sensor_hz))

    def with_acceleration(self, a_max: float) -> "F1Model":
        """A copy of this model with different body dynamics."""
        return replace(self, a_max=a_max)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def roof_velocity(self) -> float:
        """The physics roof ``sqrt(2 * d * a_max)`` (m/s)."""
        return physics_roof(self.sensing_range_m, self.a_max)

    @property
    def knee(self) -> KneePoint:
        """The knee point under the configured strategy."""
        return self.knee_strategy.locate(self.sensing_range_m, self.a_max)

    @property
    def action_throughput_hz(self) -> float:
        """Eq. 3 throughput of the configured pipeline."""
        return self.pipeline.action_throughput_hz

    @property
    def safe_velocity(self) -> float:
        """The safe velocity at the achieved action throughput (m/s)."""
        return self.velocity_at(self.action_throughput_hz)

    @property
    def operating_point(self) -> Tuple[float, float]:
        """(action throughput Hz, safe velocity m/s) of this design."""
        return self.action_throughput_hz, self.safe_velocity

    def velocity_at(self, f_action_hz: float) -> float:
        """Eq. 4 safe velocity at an arbitrary action throughput."""
        return safe_velocity_at_rate(
            f_action_hz, self.sensing_range_m, self.a_max
        )

    def throughput_for(self, v_target: float) -> float:
        """Minimum action throughput (Hz) required for ``v_target``."""
        return required_action_throughput(
            v_target, self.sensing_range_m, self.a_max
        )

    # ------------------------------------------------------------------
    # Bounds, ceilings, optimality
    # ------------------------------------------------------------------
    @property
    def bound(self) -> BoundKind:
        """Which subsystem limits this design's safe velocity."""
        return classify_bound(self.pipeline, self.knee.throughput_hz)

    @property
    def stage_ceilings(self) -> List[Ceiling]:
        """Velocity ceilings from stages slower than the knee."""
        return ceilings(
            self.pipeline,
            self.sensing_range_m,
            self.a_max,
            self.knee.throughput_hz,
        )

    def optimality(self, tolerance: float = 0.05) -> OptimalityReport:
        """Optimal / over- / under-provisioned verdict for this design."""
        return assess_design(
            self.action_throughput_hz,
            self.knee,
            self.safe_velocity,
            tolerance=tolerance,
        )

    @property
    def compute_overprovision_factor(self) -> float:
        """How far the *compute stage alone* exceeds the knee.

        The paper quotes over-provisioning as ``f_compute / f_knee``
        (e.g. DroNet at 178 Hz on a 43 Hz-knee Pelican is "4.13x
        over-provisioned") even when a 60 FPS sensor caps the realized
        pipeline rate below the compute rate.  Values < 1 mean the
        compute stage is below the knee.
        """
        return self.pipeline.f_compute_hz / self.knee.throughput_hz

    @property
    def compute_speedup_to_knee(self) -> float:
        """Compute-stage speedup needed to reach the knee (1.0 if there).

        ``inf`` when sensor or control would still cap the pipeline
        below the knee, signalling that compute optimization alone
        cannot balance the design.
        """
        return self.pipeline.speedup_needed(self.knee.throughput_hz)

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def curve(
        self,
        f_min_hz: float = 0.1,
        f_max_hz: float = 10_000.0,
        points: int = 256,
    ) -> RooflineCurve:
        """The F-1 roofline curve over a log grid of throughputs."""
        return RooflineCurve.evaluate(
            self.sensing_range_m,
            self.a_max,
            f_min_hz=f_min_hz,
            f_max_hz=f_max_hz,
            points=points,
        )

    def describe(self) -> str:
        """A multi-line human-readable summary of the design point."""
        knee = self.knee
        lines = [
            f"F-1 model: d={self.sensing_range_m:.2f} m, "
            f"a_max={self.a_max:.3f} m/s^2",
            f"  physics roof     : {self.roof_velocity:.2f} m/s",
            f"  knee point       : {knee.throughput_hz:.1f} Hz -> "
            f"{knee.velocity:.2f} m/s",
            f"  action throughput: {self.action_throughput_hz:.2f} Hz "
            f"(bottleneck: {self.pipeline.bottleneck_stage})",
            f"  safe velocity    : {self.safe_velocity:.2f} m/s",
            f"  bound            : {self.bound.value}",
            f"  verdict          : {self.optimality().summary()}",
        ]
        return "\n".join(lines)
