"""Action throughput of the sensor-compute-control pipeline (Eq. 1-3).

The pipeline's stages can run concurrently, so its steady-state
throughput is set by the slowest stage (Eq. 3)::

    f_action = min(1/T_sensor, 1/T_compute, 1/T_control)

while the end-to-end latency of a single sample is bounded between the
slowest single stage (fully overlapped, Eq. 1) and the sum of all
stages (no overlap, Eq. 2).  :mod:`repro.pipeline` verifies these
bounds with a discrete-event simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import require_positive

#: Typical inner-loop rate of a dedicated flight controller (Sec. II-D).
DEFAULT_CONTROL_RATE_HZ = 1000.0


def action_throughput(*stage_rates_hz: float) -> float:
    """Eq. 3: pipeline throughput = min of the per-stage rates (Hz)."""
    if not stage_rates_hz:
        raise ConfigurationError(
            "stage_rates_hz must name at least one stage rate"
        )
    for rate in stage_rates_hz:
        require_positive("stage rate", rate)
    return min(stage_rates_hz)


def pipeline_latency_bounds(
    stage_latencies_s: Iterable[float],
) -> Tuple[float, float]:
    """Eq. 1-2: (lower, upper) bounds on end-to-end pipeline latency.

    Lower bound: the largest single-stage latency (stages fully
    overlapped).  Upper bound: the sum of all stage latencies (stages
    strictly sequential).
    """
    latencies = list(stage_latencies_s)
    if not latencies:
        raise ConfigurationError(
            "stage_latencies_s must name at least one stage latency"
        )
    for latency in latencies:
        require_positive("stage latency", latency)
    return max(latencies), sum(latencies)


@dataclass(frozen=True)
class SensorComputeControl:
    """The three-stage decision pipeline of an autonomous UAV.

    Rates are in Hz.  ``f_control_hz`` defaults to the 1 kHz inner-loop
    rate typical of dedicated flight controllers, which in practice is
    never the bottleneck.
    """

    f_sensor_hz: float
    f_compute_hz: float
    f_control_hz: float = DEFAULT_CONTROL_RATE_HZ

    def __post_init__(self) -> None:
        require_positive("f_sensor_hz", self.f_sensor_hz)
        require_positive("f_compute_hz", self.f_compute_hz)
        require_positive("f_control_hz", self.f_control_hz)

    @property
    def action_throughput_hz(self) -> float:
        """Eq. 3 throughput of the pipeline."""
        return action_throughput(
            self.f_sensor_hz, self.f_compute_hz, self.f_control_hz
        )

    @property
    def action_period_s(self) -> float:
        """Period of the slowest stage, ``1 / f_action``."""
        return 1.0 / self.action_throughput_hz

    @property
    def stage_rates(self) -> Sequence[Tuple[str, float]]:
        """(name, rate) pairs in pipeline order."""
        return (
            ("sensor", self.f_sensor_hz),
            ("compute", self.f_compute_hz),
            ("control", self.f_control_hz),
        )

    @property
    def stage_latencies_s(self) -> Tuple[float, float, float]:
        """Per-stage latencies ``1 / f`` in pipeline order."""
        return (
            1.0 / self.f_sensor_hz,
            1.0 / self.f_compute_hz,
            1.0 / self.f_control_hz,
        )

    @property
    def bottleneck_stage(self) -> str:
        """Name of the slowest stage (ties resolve in pipeline order)."""
        return min(self.stage_rates, key=lambda pair: pair[1])[0]

    @property
    def latency_bounds_s(self) -> Tuple[float, float]:
        """Eq. 1-2 bounds on end-to-end latency."""
        return pipeline_latency_bounds(self.stage_latencies_s)

    def with_compute(self, f_compute_hz: float) -> "SensorComputeControl":
        """A copy with a different compute-stage throughput."""
        return replace(self, f_compute_hz=f_compute_hz)

    def with_sensor(self, f_sensor_hz: float) -> "SensorComputeControl":
        """A copy with a different sensor-stage throughput."""
        return replace(self, f_sensor_hz=f_sensor_hz)

    def speedup_needed(self, target_hz: float) -> float:
        """Multiplicative compute speedup needed to reach ``target_hz``.

        Returns 1.0 when the pipeline already meets the target.  The
        speedup applies to the compute stage only; if sensor or control
        would still cap the pipeline below the target, the result is
        ``inf`` to signal that no compute optimization suffices.
        """
        require_positive("target_hz", target_hz)
        if self.action_throughput_hz >= target_hz:
            return 1.0
        if min(self.f_sensor_hz, self.f_control_hz) < target_hz:
            return math.inf
        return target_hz / self.f_compute_hz
