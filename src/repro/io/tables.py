"""Monospace table rendering for reports and experiment output."""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned text table.

    Floats use ``float_format``; everything else is ``str()``-ed.
    Column widths adapt to content; numeric-looking columns are
    right-aligned.
    """
    if not headers:
        raise ConfigurationError("a table needs headers")

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered: List[List[str]] = [[cell(v) for v in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match "
                f"{len(headers)} headers"
            )

    widths = [len(h) for h in headers]
    for row in rendered:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def numeric_column(index: int) -> bool:
        values = [row[index] for row in rendered]
        return bool(values) and all(
            v.replace(".", "", 1).replace("-", "", 1).replace("%", "", 1)
            .replace("x", "", 1).isdigit()
            or v in ("yes", "no", "-", "")
            for v in values
        )

    aligns = [numeric_column(i) for i in range(len(headers))]

    def fmt_row(row: Sequence[str]) -> str:
        cells = [
            value.rjust(widths[i]) if aligns[i] else value.ljust(widths[i])
            for i, value in enumerate(row)
        ]
        return "| " + " | ".join(cells) + " |"

    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = [fmt_row(list(headers)), separator]
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
