"""I/O helpers: text tables and configuration serialization."""

from .serialization import configuration_from_dict, configuration_to_dict
from .tables import format_table

__all__ = [
    "configuration_from_dict",
    "configuration_to_dict",
    "format_table",
]
