"""I/O helpers: text tables, configuration and result serialization."""

from .serialization import (
    BOUND_CODE_TO_NAME,
    TELEMETRY_VERSION,
    TRACE_EVENT_VERSION,
    BOUND_NAME_TO_CODE,
    STATUS_CODE_TO_NAME,
    STATUS_NAME_TO_CODE,
    batch_result_from_dict,
    batch_result_to_dict,
    batch_results_equal,
    configuration_from_dict,
    configuration_to_dict,
    design_matrices_equal,
    design_matrix_from_dict,
    design_matrix_to_dict,
    telemetry_from_dict,
    trace_event_from_dict,
    trace_event_to_dict,
)
from .tables import format_table

__all__ = [
    "BOUND_CODE_TO_NAME",
    "TELEMETRY_VERSION",
    "TRACE_EVENT_VERSION",
    "BOUND_NAME_TO_CODE",
    "STATUS_CODE_TO_NAME",
    "STATUS_NAME_TO_CODE",
    "batch_result_from_dict",
    "batch_result_to_dict",
    "batch_results_equal",
    "configuration_from_dict",
    "configuration_to_dict",
    "design_matrices_equal",
    "design_matrix_from_dict",
    "design_matrix_to_dict",
    "format_table",
    "telemetry_from_dict",
    "trace_event_from_dict",
    "trace_event_to_dict",
]
