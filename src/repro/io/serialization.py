"""JSON-friendly (de)serialization of UAV configurations and results.

Round-trips every component dataclass through plain dicts so Skyline
sessions and DSE sweeps can be saved, diffed and re-loaded, and
round-trips the batch-engine result types
(:class:`~repro.batch.matrix.DesignMatrix`,
:class:`~repro.batch.result.BatchResult`) so whole studies can cross
process boundaries, plus the shard-checkpoint wire format
(:func:`shard_manifest_to_dict` / :func:`shard_record_to_dict`) the
sharded executor uses to make interrupted studies resumable.

Bound and verdict columns serialize as *names*, never raw ints: the
integer codes are an in-process encoding the kernels are free to
reorder, while :data:`BOUND_CODE_TO_NAME` / :data:`STATUS_CODE_TO_NAME`
below are pinned for all serialized documents (a consistency test
asserts they agree with the live kernel tables).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, List

from ..errors import ConfigurationError
from ..uav.components import (
    Battery,
    ComputePlatform,
    FlightControllerBoard,
    Frame,
    Motor,
    Sensor,
)
from ..uav.configuration import UAVConfiguration

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..batch.executor import ShardManifest, ShardResult
    from ..batch.matrix import DesignMatrix
    from ..batch.result import BatchResult
    from ..distrib.lease import LeaseRecord
    from ..obs.tracer import SpanRecord
    from ..serve.protocol import (
        ErrorEnvelope,
        ProgressEvent,
        ServeStats,
        StudyAck,
        StudyStatus,
    )

#: Version-stable bound-code wire mapping (Sec. III-B classifications).
BOUND_CODE_TO_NAME = {
    0: "physics",
    1: "sensor",
    2: "compute",
    3: "control",
}
BOUND_NAME_TO_CODE = {name: code for code, name in BOUND_CODE_TO_NAME.items()}

#: Version-stable verdict-code wire mapping (Sec. III-C statuses).
STATUS_CODE_TO_NAME = {
    0: "optimal",
    1: "over-provisioned",
    2: "under-provisioned",
}
STATUS_NAME_TO_CODE = {
    name: code for code, name in STATUS_CODE_TO_NAME.items()
}

_COMPONENT_TYPES = {
    "frame": Frame,
    "motor": Motor,
    "battery": Battery,
    "sensor": Sensor,
    "compute": ComputePlatform,
    "flight_controller": FlightControllerBoard,
}

_SCALAR_FIELDS = (
    "name",
    "compute_redundancy",
    "extra_payload_g",
    "payload_override_g",
    "braking_pitch_deg",
)


def _dataclass_to_dict(obj: Any) -> Dict[str, Any]:
    return {
        field_name: getattr(obj, field_name)
        for field_name in obj.__dataclass_fields__  # type: ignore[attr-defined]
    }


def configuration_to_dict(uav: UAVConfiguration) -> Dict[str, Any]:
    """Serialize a configuration to a JSON-compatible dict."""
    data: Dict[str, Any] = {
        key: _dataclass_to_dict(getattr(uav, key))
        for key in _COMPONENT_TYPES
    }
    for field_name in _SCALAR_FIELDS:
        data[field_name] = getattr(uav, field_name)
    return data


def _component_from_section(key: str, cls: type, section: Any) -> Any:
    """Build one component, mapping malformed sections to clear errors.

    A bad field used to surface as a raw ``TypeError`` from the
    dataclass constructor; unknown and missing fields are now reported
    as :class:`ConfigurationError` naming the section and the field.
    """
    if not isinstance(section, dict):
        raise ConfigurationError(
            f"component section {key!r} must be a mapping, got "
            f"{type(section).__name__}"
        )
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(section) - field_names)
    if unknown:
        raise ConfigurationError(
            f"component section {key!r} has unknown field(s) "
            f"{', '.join(map(repr, unknown))}; known fields: "
            f"{', '.join(sorted(field_names))}"
        )
    required = {
        f.name
        for f in dataclasses.fields(cls)
        if f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING
    }
    missing = sorted(required - set(section))
    if missing:
        raise ConfigurationError(
            f"component section {key!r} is missing required field(s) "
            f"{', '.join(map(repr, missing))}"
        )
    try:
        return cls(**section)
    except TypeError as exc:  # e.g. non-string keys the checks can't name
        raise ConfigurationError(
            f"component section {key!r} could not be constructed: {exc}"
        ) from exc


def configuration_from_dict(data: Dict[str, Any]) -> UAVConfiguration:
    """Rebuild a configuration from :func:`configuration_to_dict` output."""
    kwargs: Dict[str, Any] = {}
    for key, cls in _COMPONENT_TYPES.items():
        if key not in data:
            raise ConfigurationError(f"missing component section {key!r}")
        kwargs[key] = _component_from_section(key, cls, data[key])
    for field_name in _SCALAR_FIELDS:
        if field_name in data:
            kwargs[field_name] = data[field_name]
    return UAVConfiguration(**kwargs)


# ---------------------------------------------------------------------------
# Batch result types (the wire format of the study layer)
# ---------------------------------------------------------------------------
_MATRIX_COLUMNS = (
    "sensing_range_m",
    "a_max",
    "f_sensor_hz",
    "f_compute_hz",
    "f_control_hz",
)
_RESULT_COLUMNS = (
    "roof_velocity",
    "knee_hz",
    "knee_velocity",
    "action_throughput_hz",
    "safe_velocity",
)


def _result_error(field: str, message: str) -> ConfigurationError:
    return ConfigurationError(f"result field {field!r}: {message}")


def _float_list(field: str, data: Dict[str, Any], key: str) -> List[float]:
    if key not in data:
        raise _result_error(f"{field}.{key}", "missing")
    values = data[key]
    if not isinstance(values, list):
        raise _result_error(
            f"{field}.{key}", f"must be a list, got {type(values).__name__}"
        )
    return values


def _decode_names(
    field: str, names: List[str], mapping: Dict[str, int]
) -> List[int]:
    codes = []
    for name in names:
        if name not in mapping:
            raise _result_error(
                field,
                f"unknown name {name!r}; known: "
                f"{', '.join(sorted(mapping))}",
            )
        codes.append(mapping[name])
    return codes


def design_matrix_to_dict(matrix: "DesignMatrix") -> Dict[str, Any]:
    """Serialize a design matrix to a JSON-compatible dict.

    Floats survive JSON bit-exactly (``json`` emits shortest
    round-tripping reprs), so a round-tripped matrix is numerically
    identical to the original.
    """
    data: Dict[str, Any] = {
        name: getattr(matrix, name).tolist() for name in _MATRIX_COLUMNS
    }
    if matrix.labels is not None:
        data["labels"] = list(matrix.labels)
    if matrix.knee_fraction is not None:
        data["knee_fraction"] = matrix.knee_fraction
    return data


def design_matrix_from_dict(data: Dict[str, Any]) -> "DesignMatrix":
    """Rebuild a matrix from :func:`design_matrix_to_dict` output."""
    from ..batch.matrix import DesignMatrix

    if not isinstance(data, dict):
        raise _result_error(
            "matrix", f"must be a mapping, got {type(data).__name__}"
        )
    columns = {
        name: _float_list("matrix", data, name) for name in _MATRIX_COLUMNS
    }
    labels = data.get("labels")
    return DesignMatrix.from_arrays(
        **columns,
        labels=tuple(labels) if labels is not None else None,
        knee_fraction=data.get("knee_fraction"),
    )


def batch_result_to_dict(result: "BatchResult") -> Dict[str, Any]:
    """Serialize a batch result (and its matrix) to a plain dict.

    Bound and verdict columns are written as names through the pinned
    code↔name maps, keeping documents readable and stable even if the
    in-process integer encoding ever changes.
    """
    data: Dict[str, Any] = {
        "matrix": design_matrix_to_dict(result.matrix),
    }
    for name in _RESULT_COLUMNS:
        data[name] = getattr(result, name).tolist()
    data["bounds"] = [
        BOUND_CODE_TO_NAME[int(code)] for code in result.bound_codes
    ]
    data["statuses"] = [
        STATUS_CODE_TO_NAME[int(code)] for code in result.status_codes
    ]
    data["knee_fraction"] = result.knee_fraction
    data["tolerance"] = result.tolerance
    return data


def batch_result_from_dict(data: Dict[str, Any]) -> "BatchResult":
    """Rebuild a batch result from :func:`batch_result_to_dict` output."""
    import numpy as np

    from ..batch.result import BatchResult

    if not isinstance(data, dict):
        raise _result_error(
            "<root>", f"must be a mapping, got {type(data).__name__}"
        )
    if "matrix" not in data:
        raise _result_error("matrix", "missing")
    matrix = design_matrix_from_dict(data["matrix"])
    columns = {
        name: np.asarray(
            _float_list("<root>", data, name), dtype=np.float64
        )
        for name in _RESULT_COLUMNS
    }
    for key in ("bounds", "statuses", "knee_fraction", "tolerance"):
        if key not in data:
            raise _result_error(key, "missing")
    bound_codes = np.asarray(
        _decode_names("bounds", data["bounds"], BOUND_NAME_TO_CODE),
        dtype=np.int8,
    )
    status_codes = np.asarray(
        _decode_names("statuses", data["statuses"], STATUS_NAME_TO_CODE),
        dtype=np.int8,
    )
    return BatchResult(
        matrix=matrix,
        bound_codes=bound_codes,
        status_codes=status_codes,
        knee_fraction=data["knee_fraction"],
        tolerance=data["tolerance"],
        **columns,
    )


# ---------------------------------------------------------------------------
# Shard checkpoints (the wire format of the sharded executor)
# ---------------------------------------------------------------------------
#: Version stamped on every shard manifest document.
MANIFEST_VERSION = 1

#: Manifest kinds a checkpoint directory may hold.
MANIFEST_KINDS = ("study", "matrix")

_MANIFEST_FIELDS = (
    "kind",
    "digest",
    "total_rows",
    "chunk_rows",
    "n_shards",
    "knee_fraction",
    "tolerance",
    "reduce",
)


def shard_manifest_to_dict(manifest: "ShardManifest") -> Dict[str, Any]:
    """Serialize a shard manifest to its JSON wire format.

    ``manifest.json`` pins a checkpoint directory to one sharded run::

        {
          "version": 1,
          "kind": "study",             // or "matrix"
          "digest": "9f2c...",         // content digest of the source
          "total_rows": 1000000,       // rows in the full grid
          "chunk_rows": 65536,         // rows per shard
          "n_shards": 16,
          "knee_fraction": null,       // evaluation contract ...
          "tolerance": 0.05,
          "reduce": null               // or {"k", "by", "descending"}
        }

    Each completed shard sits next to it as ``shard-<index>.jsonl``,
    one :func:`shard_record_to_dict` object per (single-line) file.
    Resume compares every manifest field; any mismatch rejects the
    directory rather than mixing rows from different runs.
    """
    data: Dict[str, Any] = {"version": MANIFEST_VERSION}
    for name in _MANIFEST_FIELDS:
        data[name] = getattr(manifest, name)
    return data


def _manifest_error(field: str, message: str) -> ConfigurationError:
    return ConfigurationError(f"shard manifest field {field!r}: {message}")


def shard_manifest_from_dict(data: Any) -> "ShardManifest":
    """Rebuild a manifest from :func:`shard_manifest_to_dict` output."""
    from ..batch.executor import ShardManifest

    if not isinstance(data, dict):
        raise _manifest_error(
            "<root>", f"must be a mapping, got {type(data).__name__}"
        )
    version = data.get("version")
    if version != MANIFEST_VERSION:
        raise _manifest_error(
            "version",
            f"unsupported version {version!r}; this build reads "
            f"version {MANIFEST_VERSION}",
        )
    missing = [name for name in _MANIFEST_FIELDS if name not in data]
    if missing:
        raise _manifest_error(missing[0], "missing")
    if data["kind"] not in MANIFEST_KINDS:
        raise _manifest_error(
            "kind",
            f"unknown kind {data['kind']!r}; known: "
            f"{', '.join(MANIFEST_KINDS)}",
        )
    for name in ("total_rows", "chunk_rows", "n_shards"):
        if not isinstance(data[name], int) or data[name] < 0:
            raise _manifest_error(
                name, f"must be a non-negative integer, got {data[name]!r}"
            )
    reduce = data["reduce"]
    if reduce is not None and (
        not isinstance(reduce, dict)
        or set(reduce) != {"k", "by", "descending"}
    ):
        raise _manifest_error(
            "reduce",
            "must be null or a {'k', 'by', 'descending'} mapping, got "
            f"{reduce!r}",
        )
    return ShardManifest(**{name: data[name] for name in _MANIFEST_FIELDS})


def shard_record_to_dict(result: "ShardResult") -> Dict[str, Any]:
    """Serialize one completed shard to its JSONL wire format.

    One object per shard file, on a single line::

        {"index": 3, "start": 196608, "stop": 262144,
         "local_indices": null,          // or top-k row indices
         "extras": {"total_mass_g": [...], ...},
         "batch": { ...batch_result_to_dict... }}

    ``local_indices`` is ``null`` for a full shard (its batch covers
    exactly ``[start, stop)``) and the shard-local winner indices for a
    reduced (top-k) shard.
    """
    return {
        "index": result.index,
        "start": result.start,
        "stop": result.stop,
        "local_indices": (
            None
            if result.local_indices is None
            else [int(i) for i in result.local_indices]
        ),
        "extras": {
            name: column.tolist()
            for name, column in (result.extras or {}).items()
        },
        "batch": batch_result_to_dict(result.batch),
    }


def shard_record_from_dict(data: Any) -> "ShardResult":
    """Rebuild a shard record from :func:`shard_record_to_dict` output."""
    import numpy as np

    from ..batch.executor import ShardResult

    if not isinstance(data, dict):
        raise _result_error(
            "shard", f"must be a mapping, got {type(data).__name__}"
        )
    for key in ("index", "start", "stop", "extras", "batch"):
        if key not in data:
            raise _result_error(f"shard.{key}", "missing")
    for key in ("index", "start", "stop"):
        if not isinstance(data[key], int):
            raise _result_error(
                f"shard.{key}",
                f"must be an integer, got {data[key]!r}",
            )
    batch = batch_result_from_dict(data["batch"])
    local_indices = data.get("local_indices")
    if local_indices is not None:
        local_indices = np.asarray(local_indices, dtype=np.intp)
        if local_indices.shape != (len(batch),):
            raise _result_error(
                "shard.local_indices",
                f"{local_indices.size} indices for {len(batch)} rows",
            )
    elif len(batch) != data["stop"] - data["start"]:
        raise _result_error(
            "shard.batch",
            f"{len(batch)} rows for range "
            f"[{data['start']}, {data['stop']})",
        )
    extras = data["extras"]
    if not isinstance(extras, dict):
        raise _result_error(
            "shard.extras",
            f"must be a mapping, got {type(extras).__name__}",
        )
    return ShardResult(
        index=data["index"],
        start=data["start"],
        stop=data["stop"],
        batch=batch,
        local_indices=local_indices,
        extras={
            name: np.asarray(column, dtype=np.float64)
            for name, column in extras.items()
        },
    )


# ---------------------------------------------------------------------------
# Distributed lease files (the wire format of repro.distrib)
# ---------------------------------------------------------------------------
#: Version stamped on every lease document.  Bump on any shape change,
#: exactly like :data:`MANIFEST_VERSION` above; workers refuse leases
#: from a different protocol generation rather than guessing.
DISTRIB_PROTOCOL_VERSION = 1

_LEASE_FIELDS = (
    "spec_digest",
    "shard_index",
    "owner",
    "lease_ttl_s",
    "heartbeats",
)


def _lease_error(field: str, message: str) -> ConfigurationError:
    return ConfigurationError(f"lease record field {field!r}: {message}")


def lease_record_to_dict(record: "LeaseRecord") -> Dict[str, Any]:
    """Serialize one shard lease to its JSON wire format.

    ``leases/shard-<index>.lease.json`` marks a shard as claimed by one
    worker; liveness is the *file's mtime* (refreshed atomically on
    every heartbeat), never a wall-clock timestamp in the body::

        {"version": 1, "kind": "lease",
         "spec_digest": "9f2c...",    // study the shard belongs to
         "shard_index": 3,
         "owner": "host-a-12041",     // claiming worker's id
         "lease_ttl_s": 30.0,         // holder's declared ttl
         "heartbeats": 7}             // refresh count (diagnostics)

    The file's presence is the claim, its creation (``O_EXCL``) is the
    arbitration, and staleness is judged by comparing its mtime against
    a freshly-written probe file on the *same* filesystem, so hosts
    need no synchronized clocks.
    """
    data: Dict[str, Any] = {
        "version": DISTRIB_PROTOCOL_VERSION,
        "kind": "lease",
    }
    for name in _LEASE_FIELDS:
        data[name] = getattr(record, name)
    return data


def lease_record_from_dict(data: Any) -> "LeaseRecord":
    """Rebuild a lease from :func:`lease_record_to_dict` output.

    Strict by design: any malformed lease raises
    :class:`~repro.errors.ConfigurationError`, which the lease store
    maps to "treat as expired, warn, re-claim" — a torn or corrupt
    lease must never wedge a shard forever.
    """
    from ..distrib.lease import LeaseRecord

    if not isinstance(data, dict):
        raise _lease_error(
            "<root>", f"must be a mapping, got {type(data).__name__}"
        )
    version = data.get("version")
    if version != DISTRIB_PROTOCOL_VERSION:
        raise _lease_error(
            "version",
            f"unsupported version {version!r}; this build reads "
            f"version {DISTRIB_PROTOCOL_VERSION}",
        )
    if data.get("kind") != "lease":
        raise _lease_error(
            "kind", f"must be 'lease', got {data.get('kind')!r}"
        )
    missing = [name for name in _LEASE_FIELDS if name not in data]
    if missing:
        raise _lease_error(missing[0], "missing")
    if not isinstance(data["spec_digest"], str) or not data["spec_digest"]:
        raise _lease_error(
            "spec_digest",
            f"must be a non-empty string, got {data['spec_digest']!r}",
        )
    if not isinstance(data["shard_index"], int) or data["shard_index"] < 0:
        raise _lease_error(
            "shard_index",
            f"must be a non-negative integer, got {data['shard_index']!r}",
        )
    if not isinstance(data["owner"], str) or not data["owner"]:
        raise _lease_error(
            "owner", f"must be a non-empty string, got {data['owner']!r}"
        )
    ttl = data["lease_ttl_s"]
    if isinstance(ttl, bool) or not isinstance(ttl, (int, float)) or ttl <= 0:
        raise _lease_error(
            "lease_ttl_s", f"must be a positive number, got {ttl!r}"
        )
    if not isinstance(data["heartbeats"], int) or data["heartbeats"] < 0:
        raise _lease_error(
            "heartbeats",
            f"must be a non-negative integer, got {data['heartbeats']!r}",
        )
    return LeaseRecord(
        spec_digest=data["spec_digest"],
        shard_index=data["shard_index"],
        owner=data["owner"],
        lease_ttl_s=float(ttl),
        heartbeats=data["heartbeats"],
    )


# ---------------------------------------------------------------------------
# Trace events and telemetry (the wire format of repro.obs)
# ---------------------------------------------------------------------------
#: Version of the trace-event wire format (JSONL log lines, telemetry
#: event lists).  Bump on any shape change, exactly like
#: :data:`MANIFEST_VERSION` above.
TRACE_EVENT_VERSION = 1

#: Version stamped on :attr:`repro.study.result.StudyResult.telemetry`
#: documents (``{"version", "events", "counters", "gauges"}``).
TELEMETRY_VERSION = 1


def trace_event_to_dict(span: "SpanRecord") -> Dict[str, Any]:
    """Serialize one finished span to the trace-event wire format.

    One object per span::

        {"name": "shard.evaluate",   // span name
         "start_us": 18234,          // microseconds since tracer epoch
         "dur_us": 912,              // span duration, microseconds
         "tid": 4,                   // track: 0 = driver, i+1 = shard i
         "args": {"rows": 4096}}     // attributes (JSON scalars)

    Times are integer microseconds on a *monotonic* clock
    (:func:`time.perf_counter` relative to the recording tracer's
    epoch) — never wall-clock dates, so events from one run always
    order correctly and diff cleanly.  The same objects appear as the
    body lines of the JSONL event log
    (:func:`repro.obs.export.write_trace_jsonl`, behind a
    ``{"version", "kind": "trace", "counters", "gauges"}`` header
    line) and, converted to Chrome's ``ph``/``ts``/``dur`` spelling,
    in the ``chrome://tracing`` export.
    """
    return {
        "name": span.name,
        "start_us": round(span.start_s * 1e6),
        "dur_us": round(span.duration_s * 1e6),
        "tid": span.tid,
        "args": dict(span.attributes),
    }


def _trace_error(field: str, message: str) -> ConfigurationError:
    return ConfigurationError(f"trace event field {field!r}: {message}")


def trace_event_from_dict(data: Any) -> "SpanRecord":
    """Rebuild a span from :func:`trace_event_to_dict` output."""
    from ..obs.tracer import SpanRecord

    if not isinstance(data, dict):
        raise _trace_error(
            "<root>", f"must be a mapping, got {type(data).__name__}"
        )
    for key in ("name", "start_us", "dur_us", "tid", "args"):
        if key not in data:
            raise _trace_error(key, "missing")
    if not isinstance(data["name"], str) or not data["name"]:
        raise _trace_error(
            "name", f"must be a non-empty string, got {data['name']!r}"
        )
    for key in ("start_us", "dur_us"):
        if not isinstance(data[key], int) or data[key] < 0:
            raise _trace_error(
                key,
                f"must be a non-negative integer of microseconds, got "
                f"{data[key]!r}",
            )
    if not isinstance(data["tid"], int) or data["tid"] < 0:
        raise _trace_error(
            "tid", f"must be a non-negative integer, got {data['tid']!r}"
        )
    if not isinstance(data["args"], dict):
        raise _trace_error(
            "args",
            f"must be a mapping, got {type(data['args']).__name__}",
        )
    return SpanRecord(
        name=data["name"],
        start_s=data["start_us"] / 1e6,
        duration_s=data["dur_us"] / 1e6,
        tid=data["tid"],
        attributes=dict(data["args"]),
    )


def telemetry_from_dict(data: Any) -> Dict[str, Any]:
    """Validate a :meth:`repro.obs.Tracer.to_telemetry` document.

    Returns the document unchanged (telemetry stays plain data on the
    result; spans rebuild on demand via :func:`trace_event_from_dict`),
    after checking the version pin and the events' wire shape.
    """
    if data is None:
        return data
    if not isinstance(data, dict):
        raise ConfigurationError(
            "telemetry field '<root>': must be a mapping or null, got "
            f"{type(data).__name__}"
        )
    version = data.get("version")
    if version != TELEMETRY_VERSION:
        raise ConfigurationError(
            f"telemetry field 'version': unsupported version {version!r}; "
            f"this build reads version {TELEMETRY_VERSION}"
        )
    for event in data.get("events", ()):
        trace_event_from_dict(event)
    for key in ("counters", "gauges"):
        if key in data and not isinstance(data[key], dict):
            raise ConfigurationError(
                f"telemetry field {key!r}: must be a mapping, got "
                f"{type(data[key]).__name__}"
            )
    return data


# ---------------------------------------------------------------------------
# Serve envelopes (the wire format of repro.serve)
# ---------------------------------------------------------------------------
#: Version stamped on every HTTP envelope :mod:`repro.serve` emits
#: (acks, statuses, progress events, errors, stats).  Bump on any
#: shape change, exactly like :data:`MANIFEST_VERSION` above.
SERVE_PROTOCOL_VERSION = 1

#: Envelope kinds a serve document may carry.
SERVE_ENVELOPE_KINDS = ("ack", "status", "progress", "error", "stats")

#: Lifecycle states a served study moves through (in order; terminal
#: states are the last two).
STUDY_STATES = ("queued", "running", "done", "failed")

#: Required keys per envelope kind (beyond ``version``/``kind``),
#: shared by the builders below and :func:`serve_envelope_from_dict`.
_SERVE_ENVELOPE_FIELDS = {
    "ack": ("study_id", "state", "coalesced", "queue_depth"),
    "status": (
        "study_id",
        "state",
        "spec_digest",
        "queue_position",
        "progress",
        "error",
        "result_ready",
    ),
    "progress": ("study_id", "seq", "state", "progress", "final"),
    "error": ("status", "error", "message", "retry_after_s"),
    "stats": ("counters", "gauges"),
}


def _serve_envelope(kind: str, obj: Any) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "version": SERVE_PROTOCOL_VERSION,
        "kind": kind,
    }
    for name in _SERVE_ENVELOPE_FIELDS[kind]:
        data[name] = getattr(obj, name)
    return data


def serve_ack_to_dict(ack: "StudyAck") -> Dict[str, Any]:
    """Serialize a study-submission ack to its JSON wire format.

    The body of ``202 Accepted`` (and of the ``200 OK`` a coalesced
    resubmission gets)::

        {"version": 1, "kind": "ack",
         "study_id": "study-9f2c...",   // digest-derived, idempotent
         "state": "queued",             // lifecycle state at submit
         "coalesced": false,            // true: joined an existing run
         "queue_depth": 3}              // queued studies after this one
    """
    return _serve_envelope("ack", ack)


def serve_status_to_dict(status: "StudyStatus") -> Dict[str, Any]:
    """Serialize a study status to its JSON wire format.

    The body of ``GET /v1/studies/{id}``::

        {"version": 1, "kind": "status",
         "study_id": "study-9f2c...",
         "state": "running",            // queued|running|done|failed
         "spec_digest": "9f2c...",
         "queue_position": null,        // 0-based while queued
         "progress": { ... },           // Progress.to_dict(), or null
         "error": null,                 // failure message when failed
         "result_ready": false}         // GET ?result=1 will succeed

    The finished :class:`~repro.study.result.StudyResult` document
    itself is *not* re-pinned here — it already carries its own
    ``RESULT_VERSION``.
    """
    return _serve_envelope("status", status)


def serve_progress_to_dict(event: "ProgressEvent") -> Dict[str, Any]:
    """Serialize one progress-stream event to its JSON wire format.

    ``GET /v1/studies/{id}/progress`` streams one such object per
    line; ``seq`` increases monotonically and the ``final`` event
    carries the terminal state::

        {"version": 1, "kind": "progress",
         "study_id": "study-9f2c...",
         "seq": 4,
         "state": "running",
         "progress": {"rows_done": 4096, ...},   // or null pre-start
         "final": false}
    """
    return _serve_envelope("progress", event)


def serve_error_to_dict(error: "ErrorEnvelope") -> Dict[str, Any]:
    """Serialize an error envelope to its JSON wire format.

    Every non-2xx serve response carries one, mapping the
    :mod:`repro.errors` taxonomy onto HTTP::

        {"version": 1, "kind": "error",
         "status": 429,                       // HTTP status code
         "error": "StudyQueueFullError",      // taxonomy class name
         "message": "study queue is full ...",
         "retry_after_s": 2.0}                // null unless 429/503
    """
    return _serve_envelope("error", error)


def serve_stats_to_dict(stats: "ServeStats") -> Dict[str, Any]:
    """Serialize a server stats snapshot to its JSON wire format.

    The body of ``GET /v1/stats``: the serving layer's observability
    counters and gauges (:mod:`repro.obs` snapshots)::

        {"version": 1, "kind": "stats",
         "counters": {"serve.studies.coalesced": 7, ...},
         "gauges": {"serve.queue_depth": 0.0, ...}}
    """
    return _serve_envelope("stats", stats)


def _serve_error(field: str, message: str) -> ConfigurationError:
    return ConfigurationError(f"serve envelope field {field!r}: {message}")


def serve_envelope_from_dict(data: Any) -> Dict[str, Any]:
    """Validate any serve envelope; returns the document unchanged.

    The client-side guard: checks the version pin, the ``kind``
    discriminator, and the kind's required keys, then hands the plain
    dict back (envelopes stay data end to end; no dataclass rebuild is
    needed to act on them).
    """
    if not isinstance(data, dict):
        raise _serve_error(
            "<root>", f"must be a mapping, got {type(data).__name__}"
        )
    version = data.get("version")
    if version != SERVE_PROTOCOL_VERSION:
        raise _serve_error(
            "version",
            f"unsupported version {version!r}; this build reads "
            f"version {SERVE_PROTOCOL_VERSION}",
        )
    kind = data.get("kind")
    if kind not in _SERVE_ENVELOPE_FIELDS:
        raise _serve_error(
            "kind",
            f"unknown kind {kind!r}; known: "
            f"{', '.join(SERVE_ENVELOPE_KINDS)}",
        )
    missing = [
        name for name in _SERVE_ENVELOPE_FIELDS[kind] if name not in data
    ]
    if missing:
        raise _serve_error(missing[0], "missing")
    if "state" in data and data["state"] not in STUDY_STATES:
        raise _serve_error(
            "state",
            f"unknown study state {data['state']!r}; known: "
            f"{', '.join(STUDY_STATES)}",
        )
    return data


def design_matrices_equal(a: "DesignMatrix", b: "DesignMatrix") -> bool:
    """Bitwise column equality plus labels and knee rule."""
    import numpy as np

    return (
        len(a) == len(b)
        and all(
            np.array_equal(left, right)
            for left, right in zip(a.columns(), b.columns())
        )
        and a.labels == b.labels
        and a.knee_fraction == b.knee_fraction
    )


def batch_results_equal(a: "BatchResult", b: "BatchResult") -> bool:
    """Bitwise equality of two batch results, matrices included."""
    import numpy as np

    return (
        design_matrices_equal(a.matrix, b.matrix)
        and all(
            np.array_equal(getattr(a, name), getattr(b, name))
            for name in _RESULT_COLUMNS
        )
        and np.array_equal(a.bound_codes, b.bound_codes)
        and np.array_equal(a.status_codes, b.status_codes)
        and a.knee_fraction == b.knee_fraction
        and a.tolerance == b.tolerance
    )
