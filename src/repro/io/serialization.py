"""JSON-friendly (de)serialization of UAV configurations.

Round-trips every component dataclass through plain dicts so Skyline
sessions and DSE sweeps can be saved, diffed and re-loaded.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from ..errors import ConfigurationError
from ..uav.components import (
    Battery,
    ComputePlatform,
    FlightControllerBoard,
    Frame,
    Motor,
    Sensor,
)
from ..uav.configuration import UAVConfiguration

_COMPONENT_TYPES = {
    "frame": Frame,
    "motor": Motor,
    "battery": Battery,
    "sensor": Sensor,
    "compute": ComputePlatform,
    "flight_controller": FlightControllerBoard,
}

_SCALAR_FIELDS = (
    "name",
    "compute_redundancy",
    "extra_payload_g",
    "payload_override_g",
    "braking_pitch_deg",
)


def _dataclass_to_dict(obj: Any) -> Dict[str, Any]:
    return {
        field_name: getattr(obj, field_name)
        for field_name in obj.__dataclass_fields__  # type: ignore[attr-defined]
    }


def configuration_to_dict(uav: UAVConfiguration) -> Dict[str, Any]:
    """Serialize a configuration to a JSON-compatible dict."""
    data: Dict[str, Any] = {
        key: _dataclass_to_dict(getattr(uav, key))
        for key in _COMPONENT_TYPES
    }
    for field_name in _SCALAR_FIELDS:
        data[field_name] = getattr(uav, field_name)
    return data


def _component_from_section(key: str, cls: type, section: Any) -> Any:
    """Build one component, mapping malformed sections to clear errors.

    A bad field used to surface as a raw ``TypeError`` from the
    dataclass constructor; unknown and missing fields are now reported
    as :class:`ConfigurationError` naming the section and the field.
    """
    if not isinstance(section, dict):
        raise ConfigurationError(
            f"component section {key!r} must be a mapping, got "
            f"{type(section).__name__}"
        )
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(section) - field_names)
    if unknown:
        raise ConfigurationError(
            f"component section {key!r} has unknown field(s) "
            f"{', '.join(map(repr, unknown))}; known fields: "
            f"{', '.join(sorted(field_names))}"
        )
    required = {
        f.name
        for f in dataclasses.fields(cls)
        if f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING
    }
    missing = sorted(required - set(section))
    if missing:
        raise ConfigurationError(
            f"component section {key!r} is missing required field(s) "
            f"{', '.join(map(repr, missing))}"
        )
    try:
        return cls(**section)
    except TypeError as exc:  # e.g. non-string keys the checks can't name
        raise ConfigurationError(
            f"component section {key!r} could not be constructed: {exc}"
        ) from exc


def configuration_from_dict(data: Dict[str, Any]) -> UAVConfiguration:
    """Rebuild a configuration from :func:`configuration_to_dict` output."""
    kwargs: Dict[str, Any] = {}
    for key, cls in _COMPONENT_TYPES.items():
        if key not in data:
            raise ConfigurationError(f"missing component section {key!r}")
        kwargs[key] = _component_from_section(key, cls, data[key])
    for field_name in _SCALAR_FIELDS:
        if field_name in data:
            kwargs[field_name] = data[field_name]
    return UAVConfiguration(**kwargs)
