"""JSON-friendly (de)serialization of UAV configurations.

Round-trips every component dataclass through plain dicts so Skyline
sessions and DSE sweeps can be saved, diffed and re-loaded.
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import ConfigurationError
from ..uav.components import (
    Battery,
    ComputePlatform,
    FlightControllerBoard,
    Frame,
    Motor,
    Sensor,
)
from ..uav.configuration import UAVConfiguration

_COMPONENT_TYPES = {
    "frame": Frame,
    "motor": Motor,
    "battery": Battery,
    "sensor": Sensor,
    "compute": ComputePlatform,
    "flight_controller": FlightControllerBoard,
}

_SCALAR_FIELDS = (
    "name",
    "compute_redundancy",
    "extra_payload_g",
    "payload_override_g",
    "braking_pitch_deg",
)


def _dataclass_to_dict(obj: Any) -> Dict[str, Any]:
    return {
        field_name: getattr(obj, field_name)
        for field_name in obj.__dataclass_fields__  # type: ignore[attr-defined]
    }


def configuration_to_dict(uav: UAVConfiguration) -> Dict[str, Any]:
    """Serialize a configuration to a JSON-compatible dict."""
    data: Dict[str, Any] = {
        key: _dataclass_to_dict(getattr(uav, key))
        for key in _COMPONENT_TYPES
    }
    for field_name in _SCALAR_FIELDS:
        data[field_name] = getattr(uav, field_name)
    return data


def configuration_from_dict(data: Dict[str, Any]) -> UAVConfiguration:
    """Rebuild a configuration from :func:`configuration_to_dict` output."""
    kwargs: Dict[str, Any] = {}
    for key, cls in _COMPONENT_TYPES.items():
        if key not in data:
            raise ConfigurationError(f"missing component section {key!r}")
        kwargs[key] = cls(**data[key])
    for field_name in _SCALAR_FIELDS:
        if field_name in data:
            kwargs[field_name] = data[field_name]
    return UAVConfiguration(**kwargs)
