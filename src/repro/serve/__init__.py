"""Skyline-as-a-service: the asyncio HTTP front door.

``repro-skyline serve`` turns the closed-form analyzer and the
declarative study engine into a long-lived service:

* ``POST /v1/analyze`` — one closed-form design-point analysis,
  answered inline;
* ``POST /v1/studies`` — enqueue a
  :class:`~repro.study.spec.StudySpec`; identical specs coalesce onto
  one execution (content-digest keyed, like the batch cache);
* ``GET /v1/studies/{id}`` / ``.../result`` / ``.../progress`` —
  status, the finished result (bitwise-identical for every waiter),
  and a streaming progress feed backed by :mod:`repro.obs`;
* ``GET /health`` and ``GET /v1/stats`` — readiness and the service's
  observability counters.

Wire formats are version-pinned in :mod:`repro.io.serialization`
(``SERVE_PROTOCOL_VERSION``); failures map the :mod:`repro.errors`
taxonomy onto HTTP status codes.  Everything is stdlib-only.
"""

from .client import ServeClient
from .protocol import (
    ErrorEnvelope,
    ProgressEvent,
    ServeStats,
    StudyAck,
    StudyStatus,
    envelope_for_exception,
    parse_analyze_request,
    parse_study_request,
    run_analyze,
)
from .scheduler import StudyScheduler
from .server import ReproServer, ServeConfig, ServerHandle
from .state import StudyRecord, StudyStore, study_id_for_digest

__all__ = [
    "ErrorEnvelope",
    "ProgressEvent",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeStats",
    "ServerHandle",
    "StudyAck",
    "StudyRecord",
    "StudyScheduler",
    "StudyStatus",
    "StudyStore",
    "envelope_for_exception",
    "parse_analyze_request",
    "parse_study_request",
    "run_analyze",
    "study_id_for_digest",
]
