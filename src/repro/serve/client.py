"""A pure-stdlib client for the serving layer, plus the CI smoke.

:class:`ServeClient` speaks the protocol of
:mod:`repro.serve.server` over :mod:`http.client` — no third-party
HTTP stack — and maps error envelopes back onto the
:mod:`repro.errors` taxonomy, so a saturated server raises the *same*
:class:`~repro.errors.StudyQueueFullError` (with its
``retry_after_s``) a caller would see in-process.  One client holds
one connection; share across threads by giving each thread its own
client (they are cheap).

``python -m repro.serve.client`` (or :func:`main`) is the end-to-end
smoke CI runs against a live server: wait for ``/health``, submit a
small study, stream its progress, fetch the result, and verify it
matches an in-process :func:`repro.study.runner.run_study` of the
same spec.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
from time import perf_counter, sleep
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import (
    ConfigurationError,
    ReproError,
    ServiceUnavailableError,
    StudyQueueFullError,
    UnknownStudyError,
)
from ..io.serialization import serve_envelope_from_dict

__all__ = ["ServeClient", "main"]

#: Error-envelope ``error`` names mapped back onto taxonomy types.
_ERROR_TYPES = {
    "StudyQueueFullError": StudyQueueFullError,
    "UnknownStudyError": UnknownStudyError,
    "ServiceUnavailableError": ServiceUnavailableError,
    "ConfigurationError": ConfigurationError,
}


class ServeClient:
    """A blocking HTTP client for one ``repro-skyline serve`` server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout_s: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing -------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                response_headers = {
                    name.lower(): value
                    for name, value in response.getheaders()
                }
                return response.status, response_headers, data
            except (ConnectionError, http.client.HTTPException, OSError):
                # A dropped keep-alive connection gets one clean
                # reconnect; a genuinely down server fails the retry.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _raise_for_envelope(self, status: int, data: bytes) -> None:
        """Map a non-2xx error envelope back onto the taxonomy."""
        try:
            doc = json.loads(data.decode("utf-8"))
            envelope = serve_envelope_from_dict(doc)
        except (ValueError, ReproError):
            raise ServiceUnavailableError(
                f"server returned HTTP {status} with an unparseable "
                f"body: {data[:200]!r}"
            ) from None
        error = str(envelope.get("error", "ReproError"))
        message = str(envelope.get("message", ""))
        error_type = _ERROR_TYPES.get(error)
        if error_type is StudyQueueFullError:
            raise StudyQueueFullError(
                message,
                retry_after_s=float(envelope.get("retry_after_s") or 1.0),
            )
        if error_type is not None:
            raise error_type(message)
        raise ReproError(f"server error {status} ({error}): {message}")

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok: Tuple[int, ...] = (200,),
    ) -> Dict[str, Any]:
        status, _, data = self._request(method, path, body)
        if status not in ok:
            self._raise_for_envelope(status, data)
        doc = json.loads(data.decode("utf-8"))
        if not isinstance(doc, dict):
            raise ReproError(
                f"server returned a non-object JSON body for {path}"
            )
        return doc

    # -- endpoints ------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """The /health document; raises if the server is not ready."""
        status, _, data = self._request("GET", "/health")
        doc = json.loads(data.decode("utf-8"))
        if status != 200:
            raise ServiceUnavailableError(
                f"server not ready: {doc.get('status', status)}"
            )
        return dict(doc)

    def wait_ready(
        self, timeout_s: float = 30.0, poll_s: float = 0.1
    ) -> Dict[str, Any]:
        """Poll /health until the server answers ready (or timeout)."""
        deadline = perf_counter() + timeout_s
        while True:
            try:
                return self.health()
            except (ReproError, OSError):
                if perf_counter() >= deadline:
                    raise
                sleep(poll_s)

    def stats(self) -> Dict[str, Any]:
        """The /v1/stats envelope: obs counter/gauge snapshots."""
        return self._json("GET", "/v1/stats")

    def analyze(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One inline closed-form analysis (``POST /v1/analyze``)."""
        return self._json("POST", "/v1/analyze", body=request)

    def submit(self, spec_doc: Dict[str, Any]) -> Dict[str, Any]:
        """Enqueue a StudySpec document; returns the ack envelope."""
        return self._json(
            "POST", "/v1/studies", body=spec_doc, ok=(200, 202)
        )

    def status(self, study_id: str) -> Dict[str, Any]:
        """The status envelope (plus embedded result once done)."""
        return self._json("GET", f"/v1/studies/{study_id}")

    def result_text(self, study_id: str) -> Optional[str]:
        """The finished StudyResult JSON *text*, verbatim.

        Returns ``None`` while the study is still queued or running
        (HTTP 202); raises for unknown ids and failed studies.
        """
        status, _, data = self._request(
            "GET", f"/v1/studies/{study_id}/result"
        )
        if status == 202:
            return None
        if status != 200:
            self._raise_for_envelope(status, data)
        return data.decode("utf-8")

    def wait_result(
        self,
        study_id: str,
        timeout_s: float = 60.0,
        poll_s: float = 0.05,
    ) -> str:
        """Block (polling) until the result text is available."""
        deadline = perf_counter() + timeout_s
        while True:
            text = self.result_text(study_id)
            if text is not None:
                return text
            if perf_counter() >= deadline:
                raise ServiceUnavailableError(
                    f"study {study_id} did not finish within "
                    f"{timeout_s:g}s"
                )
            sleep(poll_s)

    def progress_events(self, study_id: str) -> Iterator[Dict[str, Any]]:
        """Stream progress envelopes until the study finishes.

        Each yielded dict is one version-pinned ``progress`` envelope;
        the last one has ``final: true``.  Uses its own connection so
        a long stream does not block other calls on this client.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request("GET", f"/v1/studies/{study_id}/progress")
            response = conn.getresponse()
            if response.status != 200:
                self._raise_for_envelope(
                    response.status, response.read()
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                event = serve_envelope_from_dict(json.loads(line))
                yield event
                if event.get("final"):
                    return
        finally:
            conn.close()


# ---------------------------------------------------------------------
# The CI smoke: one client exercising a live server end to end.
# ---------------------------------------------------------------------
def _smoke_spec_doc(n_rows: int) -> Dict[str, Any]:
    from ..study import DesignSpec, StudySpec

    values = [0.01 + 0.002 * i for i in range(n_rows)]
    spec = StudySpec(
        design=DesignSpec.knob_axes(axes={"compute_runtime_s": values})
    )
    return spec.to_dict()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """End-to-end smoke against a running server; exit 0 on success."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="serve smoke: health, submit, stream, verify",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--rows", type=int, default=64,
        help="design rows in the smoke study (default 64)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="overall deadline in seconds (default 60)",
    )
    parser.add_argument(
        "--artifact", default=None,
        help="write a JSON artifact (events, stats, timings) here",
    )
    args = parser.parse_args(argv)

    from ..study import StudySpec, run_study
    from ..study.result import StudyResult

    client = ServeClient(
        host=args.host, port=args.port, timeout_s=args.timeout
    )
    started_clock = perf_counter()
    client.wait_ready(timeout_s=args.timeout)
    print(f"[smoke] /health ok on {args.host}:{args.port}")

    spec_doc = _smoke_spec_doc(args.rows)
    ack = client.submit(spec_doc)
    study_id = str(ack["study_id"])
    print(f"[smoke] submitted {study_id} (state={ack['state']})")

    events: List[Dict[str, Any]] = []
    for event in client.progress_events(study_id):
        events.append(event)
    rows_seen = [
        event["progress"]["rows_done"]
        for event in events
        if event.get("progress")
    ]
    if rows_seen != sorted(rows_seen):
        print(f"[smoke] FAIL: progress not monotone: {rows_seen}")
        return 1
    print(f"[smoke] streamed {len(events)} progress events")

    result_text = client.wait_result(study_id, timeout_s=args.timeout)
    served = StudyResult.from_json(result_text)

    spec = StudySpec.from_dict(spec_doc)
    local = run_study(spec)
    if not served.equals(local):
        print("[smoke] FAIL: served result != in-process run_study")
        return 1
    print(f"[smoke] served result matches in-process run "
          f"({len(events)} progress events, "
          f"{int(served.total_mass_g.size)} design rows)")

    stats = client.stats()
    if args.artifact:
        from pathlib import Path

        artifact = {
            "study_id": study_id,
            "ack": ack,
            "events": events,
            "stats": stats,
            "elapsed_s": perf_counter() - started_clock,
        }
        Path(args.artifact).write_text(
            json.dumps(artifact, indent=2, sort_keys=True),
            encoding="utf-8",
        )
        print(f"[smoke] artifact written to {args.artifact}")
    client.close()
    print(f"[smoke] PASS in {perf_counter() - started_clock:.2f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
