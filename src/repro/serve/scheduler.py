"""The study scheduler: FIFO queue, worker threads, coalescing.

The front door (:mod:`repro.serve.server`) is an asyncio event loop
and must never block on a study; this module is the bridge onto the
synchronous PR-4 execution stack.  A :class:`StudyScheduler` owns

* a **bounded FIFO queue** — at most ``max_queue`` studies waiting;
  beyond that :meth:`submit` raises
  :class:`~repro.errors.StudyQueueFullError` carrying a concrete
  ``retry_after_s`` estimate (the 429 + ``Retry-After`` backpressure
  contract), so a burst degrades into polite retries instead of an
  unbounded memory footprint;
* ``max_concurrent`` **worker threads**, each draining the queue and
  running :func:`repro.study.runner.run_study` *sharded* (chunked
  streaming bounds memory and makes the PR-5 progress callback fire
  once per completed shard — the signal the ``/progress`` stream
  serves);
* **request coalescing** — studies are registered by spec content
  digest (:class:`~repro.serve.state.StudyStore`), so identical specs
  submitted while one is queued, running, or already finished all
  resolve to the same record and exactly one execution; the batch
  cache already keys results this way, the scheduler extends the same
  idea across HTTP clients.

Everything observable is counted on the scheduler's
:class:`~repro.obs.tracer.Tracer` (``serve.studies.*`` counters,
``serve.queue_depth`` gauge) — the numbers ``GET /v1/stats`` serves
and the benchmarks assert on.
"""

from __future__ import annotations

import threading
from collections import deque
from pathlib import Path
from typing import Any, Deque, Optional, Union

from ..batch.executor import ParallelExecutor, default_chunk_rows
from ..errors import (
    ConfigurationError,
    ServiceUnavailableError,
    StudyQueueFullError,
)
from ..obs.progress import Progress
from ..obs.tracer import Tracer
from ..study.planner import study_size
from ..study.runner import run_study
from ..study.spec import StudySpec
from .state import StudyRecord, StudyStore

__all__ = ["StudyScheduler"]

#: Fallback per-study duration estimate before any study completed.
_DEFAULT_STUDY_S = 1.0

#: Completed-study durations kept for the Retry-After estimate.
_DURATION_WINDOW = 32


class StudyScheduler:
    """Run submitted studies on worker threads with bounded queueing."""

    def __init__(
        self,
        store: Optional[StudyStore] = None,
        max_concurrent: int = 1,
        max_queue: int = 16,
        study_workers: Optional[int] = None,
        backend: str = "process",
        chunk_rows: Optional[int] = None,
        checkpoint_root: Optional[Union[str, Path]] = None,
        distrib_root: Optional[Union[str, Path]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_concurrent < 1:
            raise ConfigurationError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1, got {max_queue}"
            )
        if study_workers is not None and study_workers < 1:
            raise ConfigurationError(
                f"study_workers must be >= 1, got {study_workers}"
            )
        if chunk_rows is not None and chunk_rows < 1:
            raise ConfigurationError(
                f"chunk_rows must be >= 1, got {chunk_rows}"
            )
        self.store = store if store is not None else StudyStore()
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.study_workers = study_workers
        self.backend = backend
        self.chunk_rows = chunk_rows
        if checkpoint_root is not None and distrib_root is not None:
            raise ConfigurationError(
                "checkpoint_root and distrib_root are mutually "
                "exclusive: a distributed work dir already checkpoints "
                "every shard"
            )
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self.distrib_root = (
            Path(distrib_root) if distrib_root is not None else None
        )
        # The scheduler's tracer is always-on: counters and gauges are
        # the service's public /v1/stats surface, not an opt-in debug
        # aid, and cost nothing between requests.
        self.tracer = tracer if tracer is not None else Tracer()
        self._lock = threading.Condition()
        self._queue: Deque[StudyRecord] = deque()
        self._running = 0
        self._durations_s: Deque[float] = deque(maxlen=_DURATION_WINDOW)
        self._shutdown = False
        self._threads: list[threading.Thread] = []

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Spin up the ``max_concurrent`` worker threads (idempotent)."""
        with self._lock:
            if self._threads or self._shutdown:
                return
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"serve-study-worker-{i}",
                    daemon=True,
                )
                for i in range(self.max_concurrent)
            ]
        for thread in self._threads:
            thread.start()

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop accepting work and join the workers.

        In-flight studies finish (their waiters still get results);
        still-queued records are failed so no client blocks forever on
        a study that will never run.
        """
        with self._lock:
            self._shutdown = True
            abandoned = list(self._queue)
            self._queue.clear()
            self._lock.notify_all()
        for record in abandoned:
            record.mark_failed("server shut down before this study ran")
        for thread in self._threads:
            thread.join(timeout=timeout_s)

    @property
    def accepting(self) -> bool:
        with self._lock:
            return not self._shutdown and bool(self._threads)

    # -- submission (front-door side) -----------------------------------
    def submit(self, spec: StudySpec) -> "tuple[StudyRecord, bool]":
        """Register a spec; returns ``(record, coalesced)``.

        The whole operation is serialized under the scheduler lock so
        a record can never be created and rejected concurrently: either
        the spec coalesces onto an existing record (no capacity
        consumed, any state), or it needs a queue slot — and if none is
        free, :class:`~repro.errors.StudyQueueFullError` carries the
        backpressure estimate and *nothing* is registered.
        """
        with self._lock:
            if self._shutdown or not self._threads:
                raise ServiceUnavailableError(
                    "the study scheduler is not accepting submissions"
                )
            record, created = self.store.register(spec)
            if not created:
                self.tracer.counter("serve.studies.coalesced").add()
                return record, True
            if len(self._queue) >= self.max_queue:
                self.store.discard(record.study_id)
                self.tracer.counter("serve.studies.rejected").add()
                raise StudyQueueFullError(
                    f"study queue is full ({self.max_queue} waiting); "
                    f"retry after the estimated drain time",
                    retry_after_s=self._retry_after_locked(),
                )
            self._queue.append(record)
            self.tracer.counter("serve.studies.submitted").add()
            self._set_depth_gauge_locked()
            self._lock.notify()
            return record, False

    def queue_depth(self) -> int:
        """Studies currently waiting (not running) in the queue."""
        with self._lock:
            return len(self._queue)

    def queue_position(self, record: StudyRecord) -> Optional[int]:
        """0-based position in the FIFO queue, ``None`` once dequeued."""
        with self._lock:
            for position, queued in enumerate(self._queue):
                if queued is record:
                    return position
        return None

    def retry_after_s(self) -> float:
        """The current backpressure estimate, for 503 responses."""
        with self._lock:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:
        mean_s = (
            sum(self._durations_s) / len(self._durations_s)
            if self._durations_s
            else _DEFAULT_STUDY_S
        )
        waiting = len(self._queue) + self._running
        slots = max(1, self.max_concurrent)
        return max(1.0, round(mean_s * (waiting / slots + 1), 1))

    def _set_depth_gauge_locked(self) -> None:
        self.tracer.gauge("serve.queue_depth").set(len(self._queue))
        self.tracer.gauge("serve.studies.running").set(self._running)

    # -- execution (worker side) ----------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._shutdown:
                    self._lock.wait()
                if self._shutdown and not self._queue:
                    return
                record = self._queue.popleft()
                self._running += 1
                self._set_depth_gauge_locked()
            try:
                self._execute(record)
            finally:
                with self._lock:
                    self._running -= 1
                    self._set_depth_gauge_locked()

    def _execute(self, record: StudyRecord) -> None:
        record.mark_running()
        started_clock = self.tracer.now()
        study_tracer = Tracer()
        executor: Optional[Any] = None
        try:
            chunk_rows = self.chunk_rows
            if chunk_rows is None:
                # Serve always runs studies sharded: chunked streaming
                # bounds worker memory and gives the /progress stream
                # one callback per completed shard.
                chunk_rows = default_chunk_rows(
                    study_size(record.spec), self.study_workers or 1
                )
            if self.distrib_root is not None:
                # Each study gets its own work dir (keyed by study id,
                # itself digest-derived), so external `repro-skyline
                # worker` processes can join it by path, and restarting
                # the server resumes from the records already there.
                from ..distrib import DistributedExecutor, default_worker_id

                executor = DistributedExecutor(
                    self.distrib_root / record.study_id,
                    worker_id=f"serve-{default_worker_id()}",
                    n_workers=self.study_workers or 1,
                )
            elif self.study_workers is not None:
                executor = ParallelExecutor(
                    n_workers=self.study_workers, backend=self.backend
                )
            checkpoint = None
            if self.checkpoint_root is not None:
                checkpoint = self.checkpoint_root / record.study_id
            result = run_study(
                record.spec,
                executor=executor,
                chunk_rows=chunk_rows,
                checkpoint=checkpoint,
                tracer=study_tracer,
                progress=_RecordProgress(record),
            )
            record.mark_done(result.to_json())
            self.tracer.counter("serve.studies.completed").add()
        except Exception as exc:
            record.mark_failed(f"{type(exc).__name__}: {exc}")
            self.tracer.counter("serve.studies.failed").add()
        finally:
            if executor is not None:
                executor.close()
            self._durations_s.append(
                max(0.0, self.tracer.now() - started_clock)
            )
            self.tracer.counter("serve.studies.executed").add()


class _RecordProgress:
    """The :data:`~repro.obs.progress.ProgressCallback` serve installs.

    A named class (not a closure) so the callback survives pickling
    rules and shows up in tracebacks; it simply stores each snapshot
    on the study's record, where the streaming endpoint picks it up.
    """

    __slots__ = ("_record",)

    def __init__(self, record: StudyRecord) -> None:
        self._record = record

    def __call__(self, progress: Progress) -> None:
        self._record.update_progress(progress.to_dict())
