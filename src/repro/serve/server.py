"""The asyncio HTTP front door for skyline-as-a-service.

Pure stdlib (:func:`asyncio.start_server` + hand-rolled HTTP/1.1):
the container bakes in no web framework, and the protocol surface is
small enough that owning the parser is cheaper than depending on one.

Request handling is split by cost:

* **inline** — ``GET /health``, ``GET /v1/stats``, study status
  lookups, and ``POST /v1/analyze`` (one closed-form evaluation) run
  on a bounded thread pool via ``run_in_executor`` so the event loop
  never blocks on a lock or a model evaluation;
* **queued** — ``POST /v1/studies`` only *registers* work with the
  :class:`~repro.serve.scheduler.StudyScheduler` and immediately acks
  with a study id; execution happens on the scheduler's workers;
* **streaming** — ``GET /v1/studies/{id}/progress`` holds its
  connection open (chunked transfer) and emits one JSON line per
  progress update, backed by
  :meth:`~repro.serve.state.StudyRecord.wait_update` rather than
  polling.

Every response body is a version-pinned envelope or document from
:mod:`repro.serve.protocol`; every failure maps through
:func:`~repro.serve.protocol.envelope_for_exception` so HTTP codes
track the :mod:`repro.errors` taxonomy (400 names the bad field, 404
unknown id, 429 + ``Retry-After`` when saturated, 503 while not
ready).
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError, ReproError, ServiceUnavailableError
from ..io.serialization import SERVE_PROTOCOL_VERSION
from ..obs.tracer import Tracer
from .protocol import (
    ErrorEnvelope,
    ProgressEvent,
    ServeStats,
    StudyAck,
    StudyStatus,
    envelope_for_exception,
    parse_analyze_request,
    parse_study_request,
    run_analyze,
)
from .scheduler import StudyScheduler
from .state import StudyRecord, StudyStore

__all__ = ["ServeConfig", "ReproServer", "ServerHandle"]

#: Largest request body the server will read (a StudySpec with a few
#: hundred thousand explicit grid points still fits comfortably).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Largest request-line + header block accepted.
MAX_HEADER_BYTES = 32 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for one server instance (mirrors the CLI flags)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read it back from .port
    max_concurrent: int = 1  # study worker threads
    max_queue: int = 16  # queued studies before 429
    study_workers: Optional[int] = None  # per-study executor fan-out
    backend: str = "process"
    chunk_rows: Optional[int] = None  # None = size-derived default
    checkpoint_root: Optional[str] = None
    distrib_root: Optional[str] = None  # per-study distributed work dirs
    request_concurrency: int = 32  # concurrently served HTTP requests
    progress_poll_s: float = 0.25  # stream wake-up cadence


class _HttpError(ReproError):
    """An HTTP-level failure (routing/method), outside the taxonomy
    mapping — it knows its own status code and error name."""

    def __init__(self, status: int, error: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.error = error

    def envelope(self) -> ErrorEnvelope:
        return ErrorEnvelope(self.status, self.error, str(self))


@dataclass(frozen=True)
class _Request:
    method: str
    path: str
    headers: Mapping[str, str]
    body: bytes


class ReproServer:
    """One serving instance: store + scheduler + asyncio front door."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        if self.config.request_concurrency < 1:
            raise ConfigurationError(
                "request_concurrency must be >= 1, got "
                f"{self.config.request_concurrency}"
            )
        # One tracer spans the whole service; /v1/stats serves its
        # snapshots, so scheduler and front-door counters land in the
        # same namespace.
        self.tracer = tracer if tracer is not None else Tracer()
        self.store = StudyStore()
        self.scheduler = StudyScheduler(
            store=self.store,
            max_concurrent=self.config.max_concurrent,
            max_queue=self.config.max_queue,
            study_workers=self.config.study_workers,
            backend=self.config.backend,
            chunk_rows=self.config.chunk_rows,
            checkpoint_root=self.config.checkpoint_root,
            distrib_root=self.config.distrib_root,
            tracer=self.tracer,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._stopping = False

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        self.scheduler.start()
        self._semaphore = asyncio.Semaphore(
            self.config.request_concurrency
        )
        # A dedicated pool for blocking waits (locks, progress
        # streams) so they cannot starve the loop's tiny default
        # executor; sized with the semaphore since each in-flight
        # request holds at most one slot at a time.
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.request_concurrency,
            thread_name_prefix="serve-io",
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_HEADER_BYTES,
        )

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        if self._server is None:
            raise ServiceUnavailableError("server has not been started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def ready(self) -> bool:
        return (
            self._server is not None
            and not self._stopping
            and self.scheduler.accepting
        )

    async def stop(self) -> None:
        """Stop accepting connections, then drain the scheduler."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.scheduler.shutdown)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)

    async def _blocking(self, fn: Any, *args: Any) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, partial(fn, *args))

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                assert self._semaphore is not None
                async with self._semaphore:
                    self.tracer.counter("serve.requests").add()
                    keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
                await writer.drain()
        except (ConnectionError, asyncio.LimitOverrunError):
            pass  # client went away or sent garbage; nothing to save
        except asyncio.CancelledError:
            # Loop shutdown with the connection idle: finish quietly
            # (a cancelled-task exception in asyncio.streams' done
            # callback would otherwise log a spurious traceback).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[_Request]:
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                self._write_envelope(
                    writer,
                    ErrorEnvelope(400, "BadRequest",
                                  "truncated HTTP request"),
                )
            return None
        except asyncio.LimitOverrunError:
            self._write_envelope(
                writer,
                ErrorEnvelope(
                    413, "HeaderTooLarge",
                    f"request headers exceed {MAX_HEADER_BYTES} bytes",
                ),
            )
            return None
        lines = header_blob.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            self._write_envelope(
                writer,
                ErrorEnvelope(400, "BadRequest",
                              f"malformed request line {lines[0]!r}"),
            )
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            self._write_envelope(
                writer,
                ErrorEnvelope(400, "BadRequest",
                              f"bad Content-Length {length_text!r}"),
            )
            return None
        if length > MAX_BODY_BYTES:
            self._write_envelope(
                writer,
                ErrorEnvelope(
                    413, "PayloadTooLarge",
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit",
                ),
            )
            return None
        body = b""
        if length > 0:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        return _Request(method=method, path=target,
                        headers=headers, body=body)

    # -- routing --------------------------------------------------------
    async def _dispatch(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one request; returns whether to keep the connection."""
        path = request.path.split("?", 1)[0]
        try:
            if path == "/health":
                self._require_method(request, "GET")
                return self._respond_health(request, writer)
            if path == "/v1/stats":
                self._require_method(request, "GET")
                stats = ServeStats(
                    counters=self.tracer.counters_snapshot(),
                    gauges=self.tracer.gauges_snapshot(),
                )
                self._write_json(writer, 200, stats.to_dict())
                return self._keep_alive(request)
            if path == "/v1/analyze":
                self._require_method(request, "POST")
                return await self._respond_analyze(request, writer)
            if path == "/v1/studies":
                self._require_method(request, "POST")
                return await self._respond_submit(request, writer)
            if path.startswith("/v1/studies/"):
                return await self._dispatch_study(request, path, writer)
            raise _HttpError(404, "NotFound", f"unknown path {path!r}")
        except Exception as exc:  # one funnel: taxonomy -> HTTP
            if isinstance(exc, _HttpError):
                envelope = exc.envelope()
            else:
                envelope = envelope_for_exception(exc)
            if envelope.status >= 500:
                self.tracer.counter("serve.errors.internal").add()
            self._write_envelope(writer, envelope)
            return self._keep_alive(request)

    async def _dispatch_study(
        self, request: _Request, path: str, writer: asyncio.StreamWriter
    ) -> bool:
        rest = path[len("/v1/studies/"):]
        study_id, _, tail = rest.partition("/")
        record = self.store.get(study_id)  # UnknownStudyError -> 404
        if tail == "progress":
            self._require_method(request, "GET")
            await self._stream_progress(record, writer)
            return False  # streaming responses close the connection
        if tail == "result":
            self._require_method(request, "GET")
            return self._respond_result(request, record, writer)
        if tail == "":
            self._require_method(request, "GET")
            return self._respond_status(request, record, writer)
        raise _HttpError(
            404, "NotFound",
            f"unknown study subresource {tail!r}; expected no suffix, "
            f"'/result', or '/progress'",
        )

    # -- endpoint bodies ------------------------------------------------
    def _respond_health(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        doc = {
            "status": "ok" if self.ready else "unavailable",
            "protocol_version": SERVE_PROTOCOL_VERSION,
            "studies": len(self.store),
        }
        status = 200 if self.ready else 503
        headers = {} if self.ready else {"Retry-After": "1"}
        self._write_json(writer, status, doc, extra_headers=headers)
        return self._keep_alive(request)

    async def _respond_analyze(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        if not self.ready:
            raise ServiceUnavailableError(
                "server is not accepting analyze requests"
            )
        parsed = parse_analyze_request(self._json_body(request))
        report = await self._blocking(run_analyze, parsed)
        self.tracer.counter("serve.analyze.requests").add()
        self._write_json(writer, 200, report)
        return self._keep_alive(request)

    async def _respond_submit(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        spec = parse_study_request(self._json_body(request))
        record, coalesced = await self._blocking(
            self.scheduler.submit, spec
        )
        ack = StudyAck(
            study_id=record.study_id,
            state=record.state,
            coalesced=coalesced,
            queue_depth=self.scheduler.queue_depth(),
        )
        # 202 acknowledges newly queued work; a coalesced duplicate is
        # a plain 200 because the work already exists.
        self._write_json(writer, 200 if coalesced else 202, ack.to_dict())
        return self._keep_alive(request)

    def _respond_status(
        self,
        request: _Request,
        record: StudyRecord,
        writer: asyncio.StreamWriter,
    ) -> bool:
        seq, state, progress = record.snapshot()
        status = StudyStatus(
            study_id=record.study_id,
            state=state,
            spec_digest=record.digest,
            queue_position=self.scheduler.queue_position(record),
            progress=progress,
            error=record.error,
            result_ready=state == "done",
        )
        doc = status.to_dict()
        # The issue contract: the status endpoint carries the full
        # StudyResult document once the study is done (clients that
        # need the bitwise-exact text use /result instead).
        result_json = record.result_json()
        doc["result"] = (
            json.loads(result_json) if result_json is not None else None
        )
        self._write_json(writer, 200, doc)
        return self._keep_alive(request)

    def _respond_result(
        self,
        request: _Request,
        record: StudyRecord,
        writer: asyncio.StreamWriter,
    ) -> bool:
        state = record.state
        if state == "failed":
            self._write_envelope(
                writer,
                ErrorEnvelope(
                    409, "StudyFailed",
                    record.error or "study failed with no message",
                ),
            )
            return self._keep_alive(request)
        result_json = record.result_json()
        if result_json is None:
            # Not an error: the study exists but has not finished.
            # 202 + the status envelope tells the client to keep
            # polling (Retry-After carries the scheduler's estimate).
            retry_s = self.scheduler.retry_after_s()
            seq, state, progress = record.snapshot()
            status = StudyStatus(
                study_id=record.study_id,
                state=state,
                spec_digest=record.digest,
                queue_position=self.scheduler.queue_position(record),
                progress=progress,
                error=None,
                result_ready=False,
            )
            self._write_json(
                writer, 202, status.to_dict(),
                extra_headers={
                    "Retry-After": str(int(math.ceil(retry_s)))
                },
            )
            return self._keep_alive(request)
        # The stored text verbatim: every waiter receives the same
        # bytes, so fan-out is bitwise identical by construction.
        self._write_raw(
            writer, 200, result_json.encode("utf-8"),
            content_type="application/json",
        )
        return self._keep_alive(request)

    async def _stream_progress(
        self, record: StudyRecord, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        self.tracer.counter("serve.progress.streams").add()
        last_seq = -1
        while True:
            seq, state, progress = await self._blocking(
                record.wait_update, last_seq, self.config.progress_poll_s
            )
            if seq <= last_seq:
                continue  # timeout tick with no news; wait again
            final = state in ("done", "failed")
            event = ProgressEvent(
                study_id=record.study_id,
                seq=seq,
                state=state,
                progress=progress,
                final=final,
            )
            payload = (
                json.dumps(event.to_dict(), sort_keys=True) + "\n"
            ).encode("utf-8")
            writer.write(
                f"{len(payload):X}\r\n".encode("ascii")
                + payload + b"\r\n"
            )
            await writer.drain()
            last_seq = seq
            if final:
                break
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- small helpers --------------------------------------------------
    def _require_method(self, request: _Request, method: str) -> None:
        if request.method != method:
            raise _HttpError(
                405, "MethodNotAllowed",
                f"method {request.method} not allowed on "
                f"{request.path.split('?', 1)[0]!r}; use {method}",
            )

    def _json_body(self, request: _Request) -> Any:
        if not request.body:
            raise ConfigurationError(
                "request field 'body': a JSON body is required"
            )
        try:
            return json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"request field 'body': not valid JSON ({exc})"
            ) from exc

    def _keep_alive(self, request: _Request) -> bool:
        return request.headers.get("connection", "").lower() != "close"

    def _write_envelope(
        self, writer: asyncio.StreamWriter, envelope: ErrorEnvelope
    ) -> None:
        headers = {}
        if envelope.retry_after_s is not None:
            headers["Retry-After"] = str(
                int(math.ceil(envelope.retry_after_s))
            )
        self._write_json(
            writer, envelope.status, envelope.to_dict(),
            extra_headers=headers,
        )

    def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        doc: Mapping[str, Any],
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self._write_raw(
            writer, status, payload,
            content_type="application/json",
            extra_headers=extra_headers,
        )

    def _write_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
        )


class ServerHandle:
    """A server running on its own thread (tests, smoke, and the CLI).

    ``start()`` blocks until the socket is bound and returns the
    handle; ``stop()`` shuts the event loop and scheduler down and
    joins the thread.  The asyncio loop lives entirely on the spawned
    thread — callers interact over HTTP (or via :attr:`server` for
    whitebox assertions on counters and the study store).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.server = ReproServer(self.config, tracer=tracer)
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self.port: Optional[int] = None

    def start(self, timeout_s: float = 10.0) -> "ServerHandle":
        self._thread.start()
        if not self._ready.wait(timeout=timeout_s):
            raise ServiceUnavailableError(
                f"server failed to come up within {timeout_s:g}s"
            )
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def stop(self, timeout_s: float = 10.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            stop_event = self._stop_event
            self._loop.call_soon_threadsafe(stop_event.set)
        self._thread.join(timeout=timeout_s)

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.port = self.server.port
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()
