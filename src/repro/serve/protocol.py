"""The serve wire protocol: envelopes, error mapping, request parsing.

Every HTTP body :mod:`repro.serve` emits is one of five envelope
kinds — ``ack``, ``status``, ``progress``, ``error``, ``stats`` —
version-pinned through :mod:`repro.io.serialization` exactly like the
shard-checkpoint and telemetry formats
(:data:`~repro.io.serialization.SERVE_PROTOCOL_VERSION`); the dict
builders live there so the RPL003 wire-fingerprint guard watches them.
This module holds the dataclasses behind those builders, the mapping
from the :mod:`repro.errors` taxonomy onto HTTP status codes, and the
request-side parsers (which reject malformed bodies with
:class:`~repro.errors.ConfigurationError` messages naming the
offending field, so a 400 always says *what* was wrong).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import (
    ConfigurationError,
    ReproError,
    ServiceUnavailableError,
    StudyQueueFullError,
    UnknownStudyError,
)
from ..io.serialization import (
    SERVE_PROTOCOL_VERSION,
    STUDY_STATES,
    serve_ack_to_dict,
    serve_error_to_dict,
    serve_progress_to_dict,
    serve_stats_to_dict,
    serve_status_to_dict,
)

__all__ = [
    "SERVE_PROTOCOL_VERSION",
    "STUDY_STATES",
    "ErrorEnvelope",
    "ProgressEvent",
    "ServeStats",
    "StudyAck",
    "StudyStatus",
    "envelope_for_exception",
    "parse_analyze_request",
    "parse_study_request",
]

#: HTTP status code each taxonomy error maps to.  Anything not listed
#: (including non-:class:`ReproError` crashes) becomes a 500.
STATUS_FOR_ERROR: Tuple[Tuple[type, int], ...] = (
    (StudyQueueFullError, 429),
    (UnknownStudyError, 404),
    (ServiceUnavailableError, 503),
    (ConfigurationError, 400),
    (ReproError, 400),
)


@dataclass(frozen=True)
class StudyAck:
    """The response body of ``POST /v1/studies``."""

    study_id: str
    state: str
    coalesced: bool
    queue_depth: int

    def to_dict(self) -> Dict[str, Any]:
        return serve_ack_to_dict(self)


@dataclass(frozen=True)
class StudyStatus:
    """The response body of ``GET /v1/studies/{id}``."""

    study_id: str
    state: str
    spec_digest: str
    queue_position: Optional[int]
    progress: Optional[Dict[str, Any]]
    error: Optional[str]
    result_ready: bool

    def to_dict(self) -> Dict[str, Any]:
        return serve_status_to_dict(self)


@dataclass(frozen=True)
class ProgressEvent:
    """One line of the ``GET /v1/studies/{id}/progress`` stream."""

    study_id: str
    seq: int
    state: str
    progress: Optional[Dict[str, Any]]
    final: bool

    def to_dict(self) -> Dict[str, Any]:
        return serve_progress_to_dict(self)


@dataclass(frozen=True)
class ErrorEnvelope:
    """The body of every non-2xx serve response."""

    status: int
    error: str
    message: str
    retry_after_s: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return serve_error_to_dict(self)


@dataclass(frozen=True)
class ServeStats:
    """The body of ``GET /v1/stats``: obs counter/gauge snapshots."""

    counters: Dict[str, int]
    gauges: Dict[str, float]

    def to_dict(self) -> Dict[str, Any]:
        return serve_stats_to_dict(self)


def envelope_for_exception(exc: BaseException) -> ErrorEnvelope:
    """Map an exception onto its HTTP status + error envelope.

    The taxonomy contract: malformed requests (any
    :class:`ConfigurationError`, with its field-naming message) are
    400s, unknown study ids are 404s, a saturated queue is a 429
    carrying the scheduler's ``Retry-After`` estimate, a
    shutting-down server is a 503, and anything unrecognized is a 500
    that names only the exception type (internal details stay out of
    responses).
    """
    for error_type, status in STATUS_FOR_ERROR:
        if isinstance(exc, error_type):
            retry_after_s = None
            if isinstance(exc, StudyQueueFullError):
                retry_after_s = exc.retry_after_s
            elif isinstance(exc, ServiceUnavailableError):
                retry_after_s = 1.0
            return ErrorEnvelope(
                status=status,
                error=type(exc).__name__,
                message=str(exc),
                retry_after_s=retry_after_s,
            )
    return ErrorEnvelope(
        status=500,
        error=type(exc).__name__,
        message="internal error; see server logs",
        retry_after_s=None,
    )


def _request_error(field: str, message: str) -> ConfigurationError:
    return ConfigurationError(f"request field {field!r}: {message}")


def _optional_number(body: Mapping[str, Any], field: str) -> Optional[float]:
    value = body.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _request_error(
            field, f"must be a number, got {type(value).__name__}"
        )
    return float(value)


#: Keys a ``POST /v1/analyze`` body may carry.
ANALYZE_FIELDS = (
    "uav",
    "compute",
    "algorithm",
    "runtime_s",
    "sensor_range_m",
    "sensor_framerate_hz",
)


def parse_analyze_request(body: Any) -> Dict[str, Any]:
    """Validate a ``POST /v1/analyze`` body into normalized kwargs.

    The request mirrors ``repro-skyline analyze``: a ``uav`` preset
    name, optional ``compute`` platform and sensor overrides, and
    exactly one of ``algorithm`` (a registered autonomy algorithm) or
    ``runtime_s`` (the closed-form compute-runtime knob).
    """
    if not isinstance(body, dict):
        raise _request_error(
            "<root>", f"must be a JSON object, got {type(body).__name__}"
        )
    unknown = sorted(set(body) - set(ANALYZE_FIELDS))
    if unknown:
        raise _request_error(
            unknown[0],
            f"unknown field; known fields: {', '.join(ANALYZE_FIELDS)}",
        )
    uav = body.get("uav")
    if not isinstance(uav, str) or not uav:
        raise _request_error("uav", "must name a UAV preset")
    algorithm = body.get("algorithm")
    runtime_s = _optional_number(body, "runtime_s")
    if (algorithm is None) == (runtime_s is None):
        raise _request_error(
            "algorithm",
            "exactly one of 'algorithm' or 'runtime_s' is required",
        )
    if algorithm is not None and not isinstance(algorithm, str):
        raise _request_error(
            "algorithm",
            f"must be a string, got {type(algorithm).__name__}",
        )
    if runtime_s is not None and runtime_s <= 0:
        raise _request_error(
            "runtime_s", f"must be > 0 seconds, got {runtime_s!r}"
        )
    compute = body.get("compute")
    if compute is not None and not isinstance(compute, str):
        raise _request_error(
            "compute", f"must be a string, got {type(compute).__name__}"
        )
    return {
        "uav": uav,
        "compute": compute,
        "algorithm": algorithm,
        "runtime_s": runtime_s,
        "sensor_range_m": _optional_number(body, "sensor_range_m"),
        "sensor_framerate_hz": _optional_number(
            body, "sensor_framerate_hz"
        ),
    }


def run_analyze(request: Mapping[str, Any]) -> Dict[str, Any]:
    """Execute one parsed analyze request (closed-form, inline).

    Returns the same report document as ``repro-skyline analyze
    --json`` (:meth:`repro.skyline.tool.SkylineReport.to_dict`).
    """
    from ..skyline.tool import Skyline

    session = Skyline.from_preset(
        request["uav"],
        compute_name=request["compute"],
        sensor_range_m=request["sensor_range_m"],
        sensor_framerate_hz=request["sensor_framerate_hz"],
    )
    if request["algorithm"] is not None:
        report = session.evaluate_algorithm(request["algorithm"])
    else:
        runtime_s = request["runtime_s"]
        report = session.evaluate_throughput(
            1.0 / runtime_s, label=f"runtime={runtime_s:g}s"
        )
    return report.to_dict()


def parse_study_request(body: Any) -> "Any":
    """Validate a ``POST /v1/studies`` body into a ``StudySpec``.

    The body is the :class:`~repro.study.spec.StudySpec` document
    itself (the exact JSON ``StudySpec.to_dict`` emits); spec-level
    validation errors pass through with their field-naming messages.
    """
    from ..study.spec import StudySpec

    if not isinstance(body, dict):
        raise _request_error(
            "<root>",
            f"must be a StudySpec JSON object, got {type(body).__name__}",
        )
    return StudySpec.from_dict(body)
