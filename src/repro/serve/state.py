"""Shared, thread-safe study state for the serving layer.

A :class:`StudyRecord` is the single source of truth for one submitted
study: its lifecycle state, the latest progress snapshot, and (once
finished) the exact ``StudyResult`` JSON text every waiter receives.
Records are keyed by the spec's content digest
(:meth:`~repro.study.spec.StudySpec.content_digest`) — the same digest
the batch layer's checkpoint manifests pin — which is what makes
submission idempotent and request coalescing possible: two clients
posting byte-different JSON of the *same* study resolve to the same
record.

All mutation happens under the record's condition variable; the
asyncio front door and the scheduler's worker threads only ever
observe consistent snapshots, and progress streams block on
:meth:`StudyRecord.wait_update` instead of polling raw fields.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..errors import UnknownStudyError
from ..io.serialization import STUDY_STATES
from ..study.spec import StudySpec

__all__ = [
    "StudyRecord",
    "StudyStore",
    "study_id_for_digest",
]

#: Hex digits of the spec digest a study id carries (collision odds at
#: 16 hex chars are ~2^-64 per pair — and a collision only merges two
#: studies the digest already calls identical).
_ID_DIGEST_CHARS = 16


def study_id_for_digest(digest: str) -> str:
    """The public study id for a spec content digest (deterministic)."""
    return f"study-{digest[:_ID_DIGEST_CHARS]}"


class StudyRecord:
    """One submitted study's mutable lifecycle state.  Thread-safe."""

    def __init__(self, spec: StudySpec, digest: str) -> None:
        self.spec = spec
        self.digest = digest
        self.study_id = study_id_for_digest(digest)
        self._condition = threading.Condition()
        self._state = "queued"
        self._seq = 0
        self._progress: Optional[Dict[str, Any]] = None
        self._result_json: Optional[str] = None
        self._error: Optional[str] = None
        self.created_clock = perf_counter()
        self.started_clock: Optional[float] = None
        self.finished_clock: Optional[float] = None

    # -- snapshots ------------------------------------------------------
    @property
    def state(self) -> str:
        with self._condition:
            return self._state

    @property
    def seq(self) -> int:
        with self._condition:
            return self._seq

    @property
    def progress(self) -> Optional[Dict[str, Any]]:
        with self._condition:
            return dict(self._progress) if self._progress else None

    @property
    def error(self) -> Optional[str]:
        with self._condition:
            return self._error

    @property
    def done(self) -> bool:
        with self._condition:
            return self._state in ("done", "failed")

    def result_json(self) -> Optional[str]:
        """The finished result's JSON text; every waiter gets this
        same string, so fan-out is bitwise identical by construction."""
        with self._condition:
            return self._result_json

    def snapshot(self) -> Tuple[int, str, Optional[Dict[str, Any]]]:
        """One consistent ``(seq, state, progress)`` view."""
        with self._condition:
            return (
                self._seq,
                self._state,
                dict(self._progress) if self._progress else None,
            )

    # -- transitions (scheduler side) -----------------------------------
    def _bump(self) -> None:
        self._seq += 1
        self._condition.notify_all()

    def mark_running(self) -> None:
        with self._condition:
            self._state = "running"
            self.started_clock = perf_counter()
            self._bump()

    def update_progress(self, progress: Dict[str, Any]) -> None:
        """Record the latest progress snapshot (monotone by rows).

        The executor's callback fires once per completed shard from
        the study's worker thread; a stale or out-of-order snapshot
        (fewer rows done than already recorded) is dropped so the
        progress stream is monotone even under concurrent writers.
        """
        with self._condition:
            if self._progress is not None and (
                progress.get("rows_done", 0)
                < self._progress.get("rows_done", 0)
            ):
                return
            self._progress = dict(progress)
            self._bump()

    def mark_done(self, result_json: str) -> None:
        with self._condition:
            self._state = "done"
            self._result_json = result_json
            self.finished_clock = perf_counter()
            self._bump()

    def mark_failed(self, message: str) -> None:
        with self._condition:
            self._state = "failed"
            self._error = message
            self.finished_clock = perf_counter()
            self._bump()

    # -- waiting (front-door side) --------------------------------------
    def wait_update(
        self, last_seq: int, timeout_s: float
    ) -> Tuple[int, str, Optional[Dict[str, Any]]]:
        """Block until the record changes past ``last_seq`` (or timeout).

        Returns the freshest ``(seq, state, progress)`` snapshot either
        way; callers loop on the returned ``seq``.  Terminal records
        return immediately, so a stream reader never blocks on a study
        that already finished.
        """
        deadline = perf_counter() + timeout_s
        with self._condition:
            while (
                self._seq <= last_seq
                and self._state not in ("done", "failed")
            ):
                remaining_s = deadline - perf_counter()
                if remaining_s <= 0:
                    break
                self._condition.wait(remaining_s)
            return (
                self._seq,
                self._state,
                dict(self._progress) if self._progress else None,
            )

    def wait_done(self, timeout_s: Optional[float] = None) -> bool:
        """Block until the study reaches a terminal state."""
        deadline = (
            None if timeout_s is None else perf_counter() + timeout_s
        )
        with self._condition:
            while self._state not in ("done", "failed"):
                if deadline is None:
                    self._condition.wait()
                    continue
                remaining_s = deadline - perf_counter()
                if remaining_s <= 0:
                    return False
                self._condition.wait(remaining_s)
            return True


class StudyStore:
    """The digest-keyed registry of every study this server has seen."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_id: Dict[str, StudyRecord] = {}

    def register(self, spec: StudySpec) -> Tuple[StudyRecord, bool]:
        """The record for ``spec``, creating it on first sight.

        Returns ``(record, created)``; ``created=False`` is the
        coalescing path — the caller joins an existing submission
        (queued, running, or already finished) instead of enqueuing a
        duplicate execution.
        """
        digest = spec.content_digest()
        study_id = study_id_for_digest(digest)
        with self._lock:
            record = self._by_id.get(study_id)
            if record is not None:
                return record, False
            record = StudyRecord(spec, digest)
            self._by_id[study_id] = record
            return record, True

    def discard(self, study_id: str) -> None:
        """Forget a record (used when a fresh submission is rejected
        for capacity before it ever reached the queue)."""
        with self._lock:
            self._by_id.pop(study_id, None)

    def get(self, study_id: str) -> StudyRecord:
        with self._lock:
            record = self._by_id.get(study_id)
        if record is None:
            raise UnknownStudyError(
                f"unknown study id {study_id!r}; ids are returned by "
                f"POST /v1/studies and look like 'study-<digest16>'"
            )
        return record

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

    def records(self) -> List[StudyRecord]:
        with self._lock:
            return list(self._by_id.values())


# STUDY_STATES is re-exported for callers that enumerate lifecycle
# states without importing the serialization layer directly.
assert set(STUDY_STATES) == {"queued", "running", "done", "failed"}
