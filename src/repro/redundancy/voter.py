"""A majority voter over replicated decision channels, with fault
injection.

Models the validate-then-control arrangement of Fig. 14a ("similar to
Tesla's FSD stack"): replicas compute an action from the same sensor
input; the voter compares them.  DMR can only *detect* a divergence
(and falls back to a safe action); TMR can *mask* a single fault by
majority.  Fault injection flips a channel's output with a
per-decision probability, letting tests measure detected, masked and
silent-failure rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..units import require_in_range

Action = int  # discretized high-level action (e.g. steering bin)


class VoteOutcome(Enum):
    """Result of one voting round."""

    UNANIMOUS = "unanimous"
    MASKED = "masked"  # majority correct despite a divergence
    DETECTED = "detected"  # divergence seen, no majority -> safe action
    SILENT_FAULT = "silent-fault"  # agreeing but wrong (undetectable)


@dataclass
class FaultyChannel:
    """One replica: correct policy output corrupted with probability p."""

    fault_probability: float
    rng: np.random.Generator

    def __post_init__(self) -> None:
        require_in_range("fault_probability", self.fault_probability, 0.0, 1.0)

    def output(self, correct_action: Action) -> Action:
        if self.rng.random() < self.fault_probability:
            # A fault produces an arbitrary wrong action.
            return correct_action + int(self.rng.integers(1, 10))
        return correct_action


class MajorityVoter:
    """Majority vote with divergence detection across N channels."""

    def __init__(self, channels: Sequence[FaultyChannel]) -> None:
        if len(channels) < 1:
            raise ConfigurationError("need at least one channel")
        self.channels = list(channels)

    def vote(
        self, correct_action: Action, safe_action: Action = 0
    ) -> tuple[Action, VoteOutcome]:
        """One decision round: returns (action taken, outcome class)."""
        outputs: List[Action] = [
            channel.output(correct_action) for channel in self.channels
        ]
        values, counts = np.unique(np.asarray(outputs), return_counts=True)
        top = int(values[np.argmax(counts)])
        top_count = int(counts.max())
        n = len(outputs)

        if top_count == n:
            outcome = (
                VoteOutcome.UNANIMOUS
                if top == correct_action
                else VoteOutcome.SILENT_FAULT
            )
            return top, outcome
        if top_count > n // 2:
            return top, VoteOutcome.MASKED
        # No majority: divergence detected, take the safe action.
        return safe_action, VoteOutcome.DETECTED


def fault_injection_campaign(
    replicas: int,
    fault_probability: float,
    decisions: int = 10_000,
    seed: int = 0,
    safe_action: Action = 0,
    correct_action_fn: Callable[[int], Action] = lambda i: 1 + (i % 5),
) -> dict[VoteOutcome, int]:
    """Run ``decisions`` voting rounds and tally outcome classes."""
    if replicas < 1:
        raise ConfigurationError("need at least one replica")
    rng = np.random.default_rng(seed)
    voter = MajorityVoter(
        [FaultyChannel(fault_probability, rng) for _ in range(replicas)]
    )
    tally = {outcome: 0 for outcome in VoteOutcome}
    for index in range(decisions):
        _, outcome = voter.vote(correct_action_fn(index), safe_action)
        tally[outcome] += 1
    return tally
