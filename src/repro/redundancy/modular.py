"""Modular-redundancy schemes and their system-level costs (Sec. VI-C).

Redundancy replicates the onboard computer (dual- or triple-modular);
a validator/voter combines outputs before the flight controller.  The
F-1-relevant consequence is *payload*: every replica adds its module
plus heatsink mass, lowering ``a_max`` and with it the entire
roofline.  The voter also adds a (small) latency to the compute stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..uav.configuration import UAVConfiguration
from ..units import require_nonnegative


class RedundancyScheme(Enum):
    """Replication arrangements the paper discusses."""

    SIMPLEX = 1
    DMR = 2
    TMR = 3

    @property
    def replicas(self) -> int:
        return self.value

    @property
    def tolerates_detected_faults(self) -> int:
        """Faults that can be *detected* (mismatch seen by validator)."""
        return self.value - 1

    @property
    def tolerates_masked_faults(self) -> int:
        """Faults that can be *masked* (majority still correct)."""
        return max(0, (self.value - 1) // 2)


@dataclass(frozen=True)
class RedundantDesign:
    """A UAV design point under a redundancy scheme."""

    scheme: RedundancyScheme
    uav: UAVConfiguration
    voter_latency_s: float

    @property
    def added_payload_g(self) -> float:
        """Payload added relative to the simplex arrangement."""
        return self.uav.compute.flight_mass_g * (self.scheme.replicas - 1)

    def compute_throughput_with_voter(self, f_compute_hz: float) -> float:
        """Effective compute rate after the voter's serialization.

        Replicas run in parallel on the same input, so the decision
        latency is one replica's latency plus the vote.
        """
        if self.voter_latency_s == 0.0:
            return f_compute_hz
        return 1.0 / (1.0 / f_compute_hz + self.voter_latency_s)


def apply_redundancy(
    uav: UAVConfiguration,
    scheme: RedundancyScheme,
    voter_latency_s: float = 0.0,
) -> RedundantDesign:
    """Re-configure ``uav`` under ``scheme`` (replicated computers)."""
    require_nonnegative("voter_latency_s", voter_latency_s)
    return RedundantDesign(
        scheme=scheme,
        uav=uav.with_redundancy(scheme.replicas),
        voter_latency_s=voter_latency_s,
    )
