"""Modular redundancy: payload effects, voting, reliability math."""

from .modular import RedundancyScheme, apply_redundancy
from .reliability import (
    ReliabilityModel,
    mission_reliability,
    mttf_hours,
)
from .voter import FaultyChannel, MajorityVoter, VoteOutcome

__all__ = [
    "RedundancyScheme",
    "apply_redundancy",
    "ReliabilityModel",
    "mission_reliability",
    "mttf_hours",
    "FaultyChannel",
    "MajorityVoter",
    "VoteOutcome",
]
