"""Analytic reliability of simplex / DMR / TMR compute arrangements.

Classic exponential-failure math: each replica fails independently at
rate ``lambda``.  Simplex survives while its single unit does; DMR
(detect-and-safe-stop) survives a mission while *at least one* unit
works but can only continue the mission while *both* agree, so for
mission-completion purposes it is modeled as fail-stop with coverage;
TMR completes while >= 2 of 3 work.  These closed forms quantify the
paper's "redundancy improves safety at the cost of performance"
trade-off from Sec. VI-C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..units import require_nonnegative, require_positive
from .modular import RedundancyScheme


@dataclass(frozen=True)
class ReliabilityModel:
    """Exponential per-unit failure model."""

    failure_rate_per_hour: float

    def __post_init__(self) -> None:
        require_positive("failure_rate_per_hour", self.failure_rate_per_hour)

    def unit_reliability(self, mission_hours: float) -> float:
        """Probability one unit survives a mission."""
        require_nonnegative("mission_hours", mission_hours)
        return math.exp(-self.failure_rate_per_hour * mission_hours)


def mission_reliability(
    scheme: RedundancyScheme,
    model: ReliabilityModel,
    mission_hours: float,
) -> float:
    """Probability the arrangement completes the mission correctly.

    * SIMPLEX: ``R``.
    * DMR: both units must agree to keep flying the mission, but a
      detected divergence triggers a safe abort rather than a crash;
      mission *completion* requires both alive: ``R^2``.  (Safety —
      not crashing — is ``1 - (1-R)^2``; see :func:`safety_probability`.)
    * TMR: at least 2 of 3 alive: ``3R^2 - 2R^3``.
    """
    reliability = model.unit_reliability(mission_hours)
    if scheme is RedundancyScheme.SIMPLEX:
        return reliability
    if scheme is RedundancyScheme.DMR:
        return reliability**2
    if scheme is RedundancyScheme.TMR:
        return _clamp01(3.0 * reliability**2 - 2.0 * reliability**3)
    raise AssertionError(f"unhandled scheme {scheme}")


def _clamp01(p: float) -> float:
    """Guard polynomial round-off so probabilities stay in [0, 1]."""
    return min(max(p, 0.0), 1.0)


def safety_probability(
    scheme: RedundancyScheme,
    model: ReliabilityModel,
    mission_hours: float,
) -> float:
    """Probability the vehicle avoids an *unsafe* outcome.

    A simplex failure is unsafe (undetected wrong actions); DMR detects
    any single failure and aborts safely, so it is unsafe only if both
    fail: ``1 - (1-R)^2``.  TMR additionally masks one failure and is
    unsafe only when two or more fail within the mission.
    """
    reliability = model.unit_reliability(mission_hours)
    failure = 1.0 - reliability
    if scheme is RedundancyScheme.SIMPLEX:
        return reliability
    if scheme is RedundancyScheme.DMR:
        return _clamp01(1.0 - failure**2)
    if scheme is RedundancyScheme.TMR:
        # Safe while the majority is alive: P(>= 2 of 3 alive).
        return _clamp01(reliability**3 + 3.0 * reliability**2 * failure)
    raise AssertionError(f"unhandled scheme {scheme}")


def mttf_hours(scheme: RedundancyScheme, model: ReliabilityModel) -> float:
    """Mean time to (mission) failure of the arrangement, in hours.

    Integrals of the reliability curves: simplex ``1/λ``, DMR (series
    for completion) ``1/(2λ)``, TMR ``5/(6λ)``.
    """
    lam = model.failure_rate_per_hour
    if scheme is RedundancyScheme.SIMPLEX:
        return 1.0 / lam
    if scheme is RedundancyScheme.DMR:
        return 1.0 / (2.0 * lam)
    if scheme is RedundancyScheme.TMR:
        return 5.0 / (6.0 * lam)
    raise AssertionError(f"unhandled scheme {scheme}")
