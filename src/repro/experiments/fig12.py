"""Fig. 12: heatsink weight vs TDP (Sec. VI-A).

Sweeps the fitted heatsink law and checks the paper's three anchors:
162 g at 30 W, ~halved at 15 W, and "~20x in TDP -> ~16.2x in heatsink
weight" down to ~10 g.
"""

from __future__ import annotations

import numpy as np

from ..core.heatsink import heatsink_mass_g
from ..viz.lineplot import LinePlot
from .base import Comparison, ExperimentResult

TDP_SWEEP_W = np.linspace(1.0, 35.0, 69)


def run() -> ExperimentResult:
    """Reproduce the heatsink-vs-TDP relationship."""
    masses = [heatsink_mass_g(t) for t in TDP_SWEEP_W]

    figure = LinePlot(
        title="Fig. 12: heatsink mass vs TDP",
        x_label="TDP (W)",
        y_label="Heatsink Mass (g)",
    )
    figure.add_series("fitted power law", list(TDP_SWEEP_W), masses)
    for tdp, label in ((30.0, "AGX 30 W"), (15.0, "AGX 15 W"), (1.5, "1.5 W")):
        figure.add_marker(tdp, heatsink_mass_g(tdp), label=label)

    m30 = heatsink_mass_g(30.0)
    m15 = heatsink_mass_g(15.0)
    m1_5 = heatsink_mass_g(1.5)

    rows = [
        (f"{tdp:.1f}", f"{heatsink_mass_g(tdp):.1f}")
        for tdp in (1.5, 5.0, 7.5, 15.0, 30.0)
    ]

    comparisons = (
        Comparison("heatsink @ 30 W", "162 g", f"{m30:.1f} g"),
        Comparison(
            "heatsink @ 15 W", "81 g (halved)", f"{m15:.1f} g",
            "power-law fit vs the paper's 'half'",
        ),
        Comparison(
            "20x TDP reduction",
            "~16.2x heatsink reduction (to ~10 g)",
            f"{m30 / m1_5:.1f}x (to {m1_5:.1f} g)",
        ),
    )

    return ExperimentResult(
        experiment_id="fig12",
        title="Heatsink weight vs TDP",
        table_headers=("TDP (W)", "heatsink (g)"),
        table_rows=rows,
        comparisons=comparisons,
        figure=figure,
    )
