"""Tables I-III of the paper, regenerated from the library's data.

* Table I: the four custom validation UAVs' specifications.
* Table II: the Skyline knob set (schema + defaults).
* Table III: the evaluation case-study configuration matrix.
"""

from __future__ import annotations

from dataclasses import fields

from ..skyline.knobs import Knobs
from ..uav.presets import S500_COMPUTE, S500_PAYLOAD_G, custom_s500
from .base import Comparison, ExperimentResult

#: Table I's published per-variant values for cross-checking.
PAPER_TABLE1 = {
    "A": {"payload_g": 590.0, "compute": "raspi4"},
    "B": {"payload_g": 800.0, "compute": "upboard"},
    "C": {"payload_g": 640.0, "compute": "raspi4"},
    "D": {"payload_g": 690.0, "compute": "raspi4"},
}


def run_table1() -> ExperimentResult:
    """Regenerate Table I from the presets."""
    rows = []
    comparisons = []
    for variant in sorted(S500_PAYLOAD_G):
        uav = custom_s500(variant)
        rows.append(
            (
                f"UAV-{variant}",
                f"{uav.frame.base_mass_g:.0f}",
                uav.compute.name,
                f"{uav.motor.rated_pull_g:.0f}",
                f"{uav.payload_mass_g:.0f}",
                f"{uav.total_mass_g:.0f}",
                f"{uav.max_acceleration:.3f}",
            )
        )
        paper = PAPER_TABLE1[variant]
        comparisons.append(
            Comparison(
                f"UAV-{variant} payload / compute",
                f"{paper['payload_g']:.0f} g / {paper['compute']}",
                f"{uav.payload_mass_g:.0f} g / {uav.compute.name}",
            )
        )

    return ExperimentResult(
        experiment_id="table1",
        title="Table I: custom validation UAV specifications",
        table_headers=(
            "uav", "base (g)", "compute", "pull/motor (g)",
            "payload (g)", "all-up (g)", "a_max (m/s^2)",
        ),
        table_rows=rows,
        comparisons=tuple(comparisons),
        notes=(
            "base weight includes motors + ESCs + frame (1030 g); "
            "battery is 3S 5000 mAh for all variants; a_max derives "
            "from Eq. 5 with the 2.3 deg braking floor",
        ),
    )


def run_table2() -> ExperimentResult:
    """Regenerate Table II: the Skyline knob schema."""
    descriptions = {
        "sensor_framerate_hz": ("Hz", "throughput of the sensor"),
        "compute_tdp_w": ("W", "max TDP; sizes the heatsink"),
        "compute_runtime_s": ("s", "autonomy-algorithm latency"),
        "sensor_range_m": ("m", "maximum range of the sensor"),
        "drone_weight_g": ("g", "UAV weight without extra payload"),
        "rotor_pull_g": ("g", "thrust produced by one rotor"),
        "payload_weight_g": ("g", "non-compute payload weight"),
        "compute_mass_g": ("g", "bare compute module mass"),
        "rotor_count": ("-", "number of rotors"),
    }
    defaults = Knobs()
    rows = [
        (
            field.name,
            descriptions[field.name][0],
            getattr(defaults, field.name),
            descriptions[field.name][1],
        )
        for field in fields(Knobs)
    ]
    comparisons = (
        Comparison(
            "knob coverage",
            "8 knobs (Table II)",
            f"{len(rows)} knobs",
            "adds compute mass and rotor count as explicit knobs",
        ),
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Table II: Skyline parameter knobs",
        table_headers=("knob", "unit", "default", "description"),
        table_rows=rows,
        comparisons=comparisons,
    )


def run_table3() -> ExperimentResult:
    """Regenerate Table III: the case-study configuration matrix."""
    rows = (
        (
            "VI-A", "onboard compute", "Intel NCS & Nvidia AGX",
            "DroNet", "none", "DJI Spark",
        ),
        (
            "VI-B", "autonomy algorithms", "Nvidia TX2",
            "SPA & TrailNet & DroNet", "none", "AscTec Pelican",
        ),
        (
            "VI-C", "payload redundancy", "two Nvidia TX2",
            "DroNet", "dual modular", "AscTec Pelican",
        ),
        (
            "VI-D", "full UAV system", "TX2/AGX/NCS/Ras-Pi",
            "CAD2RL/DroNet/TrailNet", "none", "Pelican & Spark",
        ),
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Table III: evaluation case-study overview",
        table_headers=(
            "case", "varied parameter", "onboard compute",
            "autonomy algorithm", "redundancy", "uav type",
        ),
        table_rows=rows,
        comparisons=(
            Comparison(
                "case-study coverage",
                "4 case studies",
                "4 reproduced (fig11, fig13, fig14, fig15)",
            ),
        ),
    )
