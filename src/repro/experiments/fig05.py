"""Fig. 5: the safety model and the F-1 roofline (Sec. III-D).

Sweeps the canonical example (a_max = 50 m/s^2, d = 10 m): velocity vs
T_action (Fig. 5a) and vs f_action on a log axis (Fig. 5b), annotating
point 'A' (1 Hz) and the knee (~100 Hz in the paper).
"""

from __future__ import annotations

import numpy as np

from ..core.model import F1Model
from ..core.safety import safe_velocity
from ..viz.lineplot import LinePlot
from .base import Comparison, ExperimentResult

#: The paper's Fig. 5 parameters.
A_MAX = 50.0
SENSING_RANGE_M = 10.0
POINT_A_HZ = 1.0


def run() -> ExperimentResult:
    """Reproduce Fig. 5 and its annotated quantities."""
    model = F1Model.from_components(
        sensing_range_m=SENSING_RANGE_M,
        a_max=A_MAX,
        f_sensor_hz=1e6,  # isolate the physics: nothing else binds
        f_compute_hz=1e6,
    )
    knee = model.knee
    roof = model.roof_velocity
    v_point_a = model.velocity_at(POINT_A_HZ)
    v_knee_x100 = model.velocity_at(knee.throughput_hz * 100.0)

    figure = LinePlot(
        title="Fig. 5b: F-1 roofline (a=50 m/s^2, d=10 m)",
        x_label="Action Throughput (Hz)",
        y_label="Safe Velocity (m/s)",
        log_x=True,
    )
    curve = model.curve(f_min_hz=0.1, f_max_hz=10_000.0, points=256)
    figure.add_series("v_safe", list(curve.throughput_hz), list(curve.velocity))
    figure.add_hline(roof, label=f"physics roof {roof:.1f} m/s")
    figure.add_marker(POINT_A_HZ, v_point_a, label="A (1 Hz)")
    figure.add_marker(knee.throughput_hz, knee.velocity, label="knee")

    t_grid = np.linspace(0.01, 5.0, 40)
    rows = [
        (f"{t:.2f}", f"{safe_velocity(t, SENSING_RANGE_M, A_MAX):.2f}")
        for t in t_grid[::8]
    ]

    comparisons = (
        Comparison(
            "asymptotic velocity (T->0)",
            "~32 m/s",
            f"{roof:.1f} m/s",
            "sqrt(2*d*a_max)",
        ),
        Comparison(
            "velocity at point A (1 Hz)",
            "~10 m/s",
            f"{v_point_a:.2f} m/s",
        ),
        Comparison(
            "knee-point throughput",
            "~100 Hz",
            f"{knee.throughput_hz:.1f} Hz",
            "fraction-of-roof knee, rho=0.984",
        ),
        Comparison(
            "A -> knee velocity gain",
            "10 -> 30 m/s (3x)",
            f"{v_point_a:.1f} -> {knee.velocity:.1f} m/s "
            f"({knee.velocity / v_point_a:.1f}x)",
        ),
        Comparison(
            "100x beyond the knee",
            "1.0004x velocity",
            f"{v_knee_x100 / knee.velocity:.4f}x",
            "both negligible; the paper's digit count differs",
        ),
    )

    return ExperimentResult(
        experiment_id="fig05",
        title="Safety model and F-1 roofline (canonical example)",
        table_headers=("T_action (s)", "v_safe (m/s)"),
        table_rows=rows,
        comparisons=comparisons,
        figure=figure,
    )
