"""Fig. 13: case study B — autonomy algorithms on Pelican + TX2
(Sec. VI-B).

Fixed UAV and computer; swap the algorithm.  The SPA package-delivery
pipeline manages only 1.1 Hz and is hard compute-bound (2.3 m/s); the
E2E networks blow past the 43 Hz knee and are physics-bound, i.e.
over-provisioned (TrailNet 1.27x, DroNet 4.13x in the paper).
"""

from __future__ import annotations

from ..autonomy.workloads import get_algorithm
from ..compute.platforms import get_platform
from ..core.bounds import BoundKind
from ..skyline.plotting import roofline_figure
from ..uav.presets import PELICAN_SENSING_RANGE_M, asctec_pelican
from .base import Comparison, ExperimentResult

ALGORITHM_NAMES = ("spa-package-delivery", "trailnet", "dronet")


def run() -> ExperimentResult:
    """Reproduce Fig. 13b and the Sec. VI-B quantities."""
    tx2 = get_platform("jetson-tx2")
    uav = asctec_pelican(tx2, sensor_range_m=PELICAN_SENSING_RANGE_M)

    entries = []
    rows = []
    models = {}
    for name in ALGORITHM_NAMES:
        algorithm = get_algorithm(name)
        f_compute = algorithm.throughput_on(tx2)
        model = uav.f1(f_compute)
        models[name] = model
        entries.append((f"{name} ({f_compute:.1f} Hz)", model))
        rows.append(
            (
                name,
                f"{f_compute:.1f}",
                f"{model.knee.throughput_hz:.1f}",
                f"{model.safe_velocity:.2f}",
                model.bound.value,
                f"{model.compute_overprovision_factor:.2f}x",
            )
        )

    spa = models["spa-package-delivery"]
    trailnet = models["trailnet"]
    dronet = models["dronet"]
    knee_hz = spa.knee.throughput_hz

    figure = roofline_figure(
        entries,
        title="Fig. 13b: AscTec Pelican + TX2 — SPA vs TrailNet vs DroNet",
        f_min_hz=0.5,
        f_max_hz=1000.0,
    )

    comparisons = (
        Comparison("knee-point throughput", "43 Hz", f"{knee_hz:.1f} Hz"),
        Comparison(
            "SPA safe velocity",
            "2.3 m/s",
            f"{spa.safe_velocity:.2f} m/s",
            "compute-bound ceiling at 1.1 Hz",
        ),
        Comparison(
            "SPA bound classification",
            "compute-bound",
            spa.bound.value,
        ),
        Comparison(
            "SPA speedup needed to reach the knee",
            "39x",
            f"{spa.optimality().required_speedup:.1f}x",
        ),
        Comparison(
            "TrailNet over-provisioning",
            "1.27x",
            f"{trailnet.compute_overprovision_factor:.2f}x",
        ),
        Comparison(
            "DroNet over-provisioning",
            "4.13x",
            f"{dronet.compute_overprovision_factor:.2f}x",
        ),
        Comparison(
            "E2E bound classification",
            "physics-bound",
            f"{trailnet.bound.value} / {dronet.bound.value}",
            "compute exceeds the knee; the 60 Hz sensor also does",
        ),
    )

    assert spa.bound is BoundKind.COMPUTE  # sanity: the case study's point

    return ExperimentResult(
        experiment_id="fig13",
        title="Case study B: autonomy algorithm choice (SPA vs E2E)",
        table_headers=(
            "algorithm", "f_c (Hz)", "knee (Hz)", "v_safe (m/s)",
            "bound", "over-prov",
        ),
        table_rows=rows,
        comparisons=comparisons,
        figure=figure,
    )
