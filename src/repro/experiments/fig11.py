"""Fig. 11: case study A — Intel NCS vs Nvidia AGX on a DJI Spark
running DroNet (Sec. VI-A).

The lighter NCS yields a *higher* roofline than the faster AGX: the
AGX's 280 g module + 162 g heatsink crushes the Spark's acceleration,
so its extra compute throughput buys nothing.  Re-binning the AGX at
15 W (halved heatsink) recovers a large fraction of the roof — the
paper quotes +75 %.
"""

from __future__ import annotations

from ..autonomy.workloads import get_algorithm
from ..compute.platforms import get_platform
from ..uav.presets import dji_spark
from .base import Comparison, ExperimentResult
from ..skyline.plotting import roofline_figure

PLATFORM_NAMES = ("intel-ncs", "jetson-agx-30w", "jetson-agx-15w")


def run() -> ExperimentResult:
    """Reproduce the Fig. 11b rooflines and the Sec. VI-A quantities."""
    dronet = get_algorithm("dronet")
    entries = []
    rows = []
    models = {}
    for name in PLATFORM_NAMES:
        platform = get_platform(name)
        uav = dji_spark(platform)
        f_compute = dronet.throughput_on(platform)
        model = uav.f1(f_compute)
        models[name] = model
        entries.append((f"{name} ({f_compute:.0f} Hz)", model))
        rows.append(
            (
                name,
                f"{platform.flight_mass_g:.0f}",
                f"{f_compute:.0f}",
                f"{model.knee.throughput_hz:.1f}",
                f"{model.roof_velocity:.2f}",
                model.bound.value,
                f"{model.compute_overprovision_factor:.1f}x",
            )
        )

    ncs = models["intel-ncs"]
    agx30 = models["jetson-agx-30w"]
    agx15 = models["jetson-agx-15w"]

    figure = roofline_figure(
        entries,
        title="Fig. 11b: DJI Spark + DroNet — NCS vs AGX",
        f_min_hz=1.0,
        f_max_hz=1000.0,
    )

    comparisons = (
        Comparison(
            "NCS roofline vs AGX-30W roofline",
            "NCS strictly higher",
            f"{ncs.roof_velocity:.1f} vs {agx30.roof_velocity:.1f} m/s",
            "lighter compute wins despite 1.5x lower throughput",
        ),
        Comparison(
            "AGX throughput advantage over NCS",
            "1.5x (230 vs 150 FPS)",
            f"{230.0 / 150.0:.2f}x",
            "from the characterization table",
        ),
        Comparison(
            "AGX-15W safe-velocity gain over AGX-30W",
            "+75%",
            f"+{(agx15.roof_velocity / agx30.roof_velocity - 1) * 100:.0f}%",
            "heatsink halves 162 g -> 85 g",
        ),
        Comparison(
            "AGX-30W compute over-provisioning",
            "33x",
            f"{agx30.compute_overprovision_factor:.0f}x",
            "knee definitions differ; both say 'grossly over-provisioned'",
        ),
    )

    return ExperimentResult(
        experiment_id="fig11",
        title="Case study A: onboard compute choice (NCS vs AGX)",
        table_headers=(
            "platform", "payload (g)", "f_c (Hz)", "knee (Hz)",
            "roof (m/s)", "bound", "over-prov",
        ),
        table_rows=rows,
        comparisons=comparisons,
        figure=figure,
    )
