"""Registry and lookup of all reproduction experiments."""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import UnknownComponentError
from . import (
    fig02b,
    fig05,
    fig07,
    fig09,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    tables,
)
from .base import ExperimentResult

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig02b": fig02b.run,
    "fig05": fig05.run,
    "fig07": fig07.run,
    "fig09": fig09.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "table3": tables.run_table3,
}


def get_experiment(experiment_id: str) -> Callable[[], ExperimentResult]:
    """Look up an experiment runner by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise UnknownComponentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id)()
