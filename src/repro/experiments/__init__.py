"""Per-figure/table reproduction experiments.

Each module reproduces one data artifact from the paper and returns an
:class:`~repro.experiments.base.ExperimentResult` holding the data
table, paper-vs-measured comparisons and (when the artifact is a
figure) a rendered chart.  ``repro-experiments`` runs them all and
writes a markdown report plus SVGs.
"""

from .base import Comparison, ExperimentResult
from .registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "Comparison",
    "ExperimentResult",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
