"""Fig. 9: safe velocity vs payload weight (non-linear, Sec. IV).

Sweeps the S500 validation frame's payload from 200 g to 1600 g and
maps the four Table I configurations onto the curve.  Reproduces the
paper's qualitative structure: a steep non-linear decline while rated
thrust margin shrinks, then a long flat tail (the braking-pitch floor)
where extra weight barely moves the safe velocity — which is exactly
why A->C loses ~27 % but C->D loses only ~2 %.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..uav.presets import S500_PAYLOAD_G, S500_SENSING_RANGE_M, custom_s500
from ..validation.flight_tests import VALIDATION_LOOP_RATE_HZ
from ..viz.lineplot import LinePlot
from .base import Comparison, ExperimentResult

PAYLOAD_SWEEP_G = np.linspace(200.0, 1600.0, 141)


def _velocity_at_payload(payload_g: float) -> float:
    """Predicted safe velocity of the S500 at the validation loop rate."""
    uav = replace(custom_s500("A"), payload_override_g=payload_g)
    return uav.f1(VALIDATION_LOOP_RATE_HZ).velocity_at(
        VALIDATION_LOOP_RATE_HZ
    )


def run() -> ExperimentResult:
    """Reproduce the velocity-vs-payload curve with A-D mapped on."""
    velocities = [_velocity_at_payload(p) for p in PAYLOAD_SWEEP_G]

    figure = LinePlot(
        title="Fig. 9: safe velocity vs payload weight (S500 frame)",
        x_label="Payload Weight (g)",
        y_label="Safe Velocity (m/s)",
    )
    figure.add_series("v_safe @ 10 Hz", list(PAYLOAD_SWEEP_G), velocities)

    variant_points = {}
    for variant, payload in sorted(S500_PAYLOAD_G.items()):
        velocity = _velocity_at_payload(payload)
        variant_points[variant] = (payload, velocity)
        figure.add_marker(payload, velocity, label=f"UAV-{variant}")

    v_a = variant_points["A"][1]
    v_b = variant_points["B"][1]
    v_c = variant_points["C"][1]
    v_d = variant_points["D"][1]

    rows = [
        (f"UAV-{variant}", f"{payload:.0f}", f"{velocity:.2f}")
        for variant, (payload, velocity) in sorted(variant_points.items())
    ]

    comparisons = (
        Comparison(
            "A -> C velocity drop (+50 g)",
            "~35% (2.13 -> 1.58)",
            f"{(1 - v_c / v_a) * 100:.0f}% ({v_a:.2f} -> {v_c:.2f})",
        ),
        Comparison(
            "C -> D velocity drop (+50 g)",
            "<3% (1.58 -> 1.53)",
            f"{(1 - v_d / v_c) * 100:.1f}% ({v_c:.2f} -> {v_d:.2f})",
            "flat tail: braking-pitch floor region",
        ),
        Comparison(
            "A -> B velocity drop (+210 g)",
            "'~41%' (2.13 -> 1.51, i.e. 29%)",
            f"{(1 - v_b / v_a) * 100:.0f}% ({v_a:.2f} -> {v_b:.2f})",
            "the paper's 41% is inconsistent with its own endpoints",
        ),
    )

    notes = (
        "the paper's Fig. 9 curve axes (velocities up to 10 m/s) imply a "
        "larger sensing range than the d=3 m used for the mapped points; "
        f"we plot everything at d={S500_SENSING_RANGE_M} m for consistency",
    )

    return ExperimentResult(
        experiment_id="fig09",
        title="Safe velocity vs payload weight",
        table_headers=("config", "payload (g)", "v_safe (m/s)"),
        table_rows=rows,
        comparisons=comparisons,
        figure=figure,
        notes=notes,
    )
