"""Fig. 2b: UAV size class vs battery capacity vs endurance.

Derives hover endurance from first principles (momentum-theory power
against usable battery energy) for one representative vehicle per size
class and compares against the paper's anchor values (nano 240 mAh /
~7 min, micro 1300 mAh / ~15 min, mini 3830 mAh / ~30 min).
"""

from __future__ import annotations

from ..compute.platforms import get_platform
from ..missions.endurance import hover_endurance_min
from ..uav.classes import CLASS_ENVELOPES, classify_size
from ..uav.components import Battery, Frame, Motor, Sensor
from ..uav.configuration import UAVConfiguration
from ..uav.presets import asctec_pelican, nano_uav
from .base import Comparison, ExperimentResult


def _micro_uav() -> UAVConfiguration:
    """A representative 250 mm-class micro-UAV."""
    return UAVConfiguration(
        name="micro-250",
        frame=Frame(
            name="micro-250",
            base_mass_g=220.0,
            size_mm=250.0,
            rotor_radius_m=0.0635,
            cd_area_m2=0.01,
        ),
        motor=Motor(name="micro-1306", rated_pull_g=160.0),
        battery=Battery(
            name="micro-1300", capacity_mah=1300.0, voltage_v=7.4,
            mass_g=85.0,
        ),
        sensor=Sensor(name="micro-cam", framerate_hz=60.0, range_m=5.0),
        compute=get_platform("raspi4"),
    )


def run() -> ExperimentResult:
    """Reproduce the size/battery/endurance table."""
    vehicles = (
        ("nano", nano_uav()),
        ("micro", _micro_uav()),
        ("mini", asctec_pelican()),
    )
    rows = []
    comparisons = []
    anchors = {e.size_class.value: e for e in CLASS_ENVELOPES}
    for class_name, uav in vehicles:
        estimate = hover_endurance_min(uav)
        anchor = anchors[class_name]
        size_class = classify_size(uav.frame.size_mm)
        rows.append(
            (
                class_name,
                f"{uav.frame.size_mm:.0f}",
                f"{uav.battery.capacity_mah:.0f}",
                f"{estimate.hover_power_w:.1f}",
                f"{estimate.endurance_min:.1f}",
                f"{anchor.typical_endurance_min:.0f}",
            )
        )
        comparisons.append(
            Comparison(
                f"{class_name} endurance",
                f"~{anchor.typical_endurance_min:.0f} min "
                f"@ {anchor.typical_battery_mah:.0f} mAh",
                f"{estimate.endurance_min:.1f} min "
                f"@ {uav.battery.capacity_mah:.0f} mAh",
                "momentum-theory hover power",
            )
        )
        assert size_class.value == class_name

    return ExperimentResult(
        experiment_id="fig02b",
        title="Size, battery capacity and endurance by UAV class",
        table_headers=(
            "class", "size (mm)", "battery (mAh)", "hover power (W)",
            "endurance (min)", "paper (min)",
        ),
        table_rows=rows,
        comparisons=tuple(comparisons),
    )
