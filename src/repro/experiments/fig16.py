"""Fig. 16: pitfalls of isolated accelerator metrics (Sec. VII).

PULP-DroNet (6 Hz @ 64 mW) and Navion (172 FPS SLAM @ 2 mW) are both
impressive in isolation, yet on a nano-UAV both are *compute-bound*:
PULP needs 4.33x more end-to-end throughput to hit the 26 Hz knee, and
Navion's SPA pipeline — whose other stages it does not accelerate —
lands at 1.23 Hz, 21.1x short.
"""

from __future__ import annotations

from ..autonomy.spa import mavbench_package_delivery, mavbench_with_navion
from ..autonomy.workloads import get_algorithm
from ..compute.platforms import get_platform
from ..skyline.plotting import roofline_figure
from ..uav.presets import nano_uav
from .base import Comparison, ExperimentResult


def run() -> ExperimentResult:
    """Reproduce Fig. 16c and the Sec. VII speedup targets."""
    tx2 = get_platform("jetson-tx2")

    # PULP-DroNet: E2E DroNet on the GAP8 at 6 Hz.
    pulp = get_platform("pulp-gap8")
    uav_pulp = nano_uav(pulp)
    f_pulp = get_algorithm("dronet").throughput_on(pulp)
    model_pulp = uav_pulp.f1(f_pulp)

    # Navion: SPA pipeline with only the SLAM stage accelerated.  The
    # remaining stages run on a TX2-class host in the paper's estimate.
    spa_base = mavbench_package_delivery()
    spa_navion = mavbench_with_navion()
    f_navion = spa_navion.throughput_on(tx2)
    uav_navion = nano_uav(get_platform("navion"))
    model_navion = uav_navion.f1(f_navion)

    knee_hz = model_pulp.knee.throughput_hz

    figure = roofline_figure(
        (
            (f"PULP-DroNet ({f_pulp:.0f} Hz)", model_pulp),
            (f"Navion SPA ({f_navion:.2f} Hz)", model_navion),
        ),
        title="Fig. 16c: nano-UAV with PULP-DroNet and Navion",
        f_min_hz=0.5,
        f_max_hz=200.0,
    )

    rows = (
        (
            "pulp-dronet (E2E)",
            f"{f_pulp:.2f}",
            f"{model_pulp.knee.throughput_hz:.1f}",
            f"{model_pulp.safe_velocity:.2f}",
            model_pulp.bound.value,
            f"{model_pulp.optimality().required_speedup:.2f}x",
        ),
        (
            "navion SPA (SLAM accel)",
            f"{f_navion:.2f}",
            f"{model_navion.knee.throughput_hz:.1f}",
            f"{model_navion.safe_velocity:.2f}",
            model_navion.bound.value,
            f"{model_navion.optimality().required_speedup:.1f}x",
        ),
    )

    comparisons = (
        Comparison("nano-UAV knee", "26 Hz", f"{knee_hz:.1f} Hz"),
        Comparison(
            "PULP speedup needed",
            "4.33x",
            f"{model_pulp.optimality().required_speedup:.2f}x",
        ),
        Comparison(
            "SPA latency with Navion SLAM",
            "810 ms (1.23 Hz)",
            f"{spa_navion.latency_on(tx2) * 1000:.0f} ms "
            f"({f_navion:.2f} Hz)",
        ),
        Comparison(
            "Navion pipeline speedup needed",
            "21.1x",
            f"{model_navion.optimality().required_speedup:.1f}x",
        ),
        Comparison(
            "SPA latency without Navion",
            "909 ms (1.1 Hz)",
            f"{spa_base.latency_on(tx2) * 1000:.0f} ms "
            f"({spa_base.throughput_on(tx2):.2f} Hz)",
        ),
        Comparison(
            "both accelerators compute-bound",
            "yes",
            f"{model_pulp.bound.value} / {model_navion.bound.value}",
        ),
    )

    return ExperimentResult(
        experiment_id="fig16",
        title="Accelerator pitfalls on a nano-UAV (PULP, Navion)",
        table_headers=(
            "accelerator", "f_action (Hz)", "knee (Hz)", "v_safe (m/s)",
            "bound", "speedup needed",
        ),
        table_rows=rows,
        comparisons=comparisons,
        figure=figure,
    )
