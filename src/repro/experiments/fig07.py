"""Fig. 7: experimental validation — trajectories and model error
(Sec. IV).

Fig. 7a: UAV-A's position-vs-time trajectories for commanded
velocities around the predicted safe velocity, showing which stop
short of the obstacle.  Fig. 7b: the model-vs-flight error for all
four drones.  Real flights and Vicon capture are replaced by the
:mod:`repro.sim` co-simulation (see DESIGN.md Sec. 3).
"""

from __future__ import annotations

from typing import Dict

from ..sim.obstacle_stop import ObstacleStopConfig, run_obstacle_stop
from ..uav.presets import custom_s500
from ..validation.flight_tests import (
    PAPER_ERROR_PCT,
    PAPER_PREDICTED_V,
    VALIDATION_LOOP_RATE_HZ,
    run_validation_campaign,
)
from ..viz.lineplot import LinePlot
from .base import Comparison, ExperimentResult

#: Commanded velocities for the Fig. 7a trajectory sweep (fractions of
#: the predicted safe velocity, mirroring the paper's 1.5..2.5 m/s).
TRAJECTORY_FRACTIONS = (0.75, 0.9, 1.0, 1.1, 1.25)


def trajectory_sweep(trials_seed: int = 3) -> LinePlot:
    """The Fig. 7a trajectory chart for UAV-A."""
    uav = custom_s500("A")
    predicted = uav.f1(VALIDATION_LOOP_RATE_HZ).velocity_at(
        VALIDATION_LOOP_RATE_HZ
    )
    figure = LinePlot(
        title="Fig. 7a: UAV-A flight trajectories (simulated)",
        x_label="Time (s)",
        y_label="Position (m)",
    )
    obstacle_drawn = False
    for fraction in TRAJECTORY_FRACTIONS:
        config = ObstacleStopConfig(
            cruise_velocity=predicted * fraction,
            f_action_hz=VALIDATION_LOOP_RATE_HZ,
        )
        flight = run_obstacle_stop(uav, config, seed=trials_seed)
        stride = max(1, len(flight.times) // 200)
        label = (
            f"v={config.cruise_velocity:.2f} m/s"
            f"{' (infraction)' if flight.infraction else ''}"
        )
        figure.add_series(
            label,
            list(flight.times[::stride]),
            list(flight.positions[::stride]),
        )
        if not obstacle_drawn:
            figure.add_hline(
                flight.obstacle_position_m, label="obstacle", color="#aa0000"
            )
            obstacle_drawn = True
    return figure


def run(trials: int = 3, seed: int = 7) -> ExperimentResult:
    """Reproduce the Fig. 7 validation artifacts."""
    campaign = run_validation_campaign(trials=trials, seed=seed)
    figure = trajectory_sweep()

    rows = []
    comparisons = []
    for variant, row in sorted(campaign.items()):
        rows.append(
            (
                f"UAV-{variant}",
                f"{row.predicted_velocity:.2f}",
                f"{row.observed_velocity:.2f}",
                f"{row.error_pct:.1f}%",
                f"{PAPER_ERROR_PCT[variant]:.1f}%",
            )
        )
        comparisons.append(
            Comparison(
                f"UAV-{variant} predicted safe velocity",
                f"{PAPER_PREDICTED_V[variant]:.2f} m/s",
                f"{row.predicted_velocity:.2f} m/s",
            )
        )
    errors = [row.error_pct for row in campaign.values()]
    comparisons.append(
        Comparison(
            "model error band",
            "5.1% .. 9.5% (optimistic)",
            f"{min(errors):.1f}% .. {max(errors):.1f}% (optimistic)",
            "simulated flights stand in for the paper's real flights",
        )
    )

    return ExperimentResult(
        experiment_id="fig07",
        title="Experimental validation of the F-1 model",
        table_headers=(
            "drone", "predicted (m/s)", "observed (m/s)",
            "error (ours)", "error (paper)",
        ),
        table_rows=rows,
        comparisons=tuple(comparisons),
        figure=figure,
    )
