"""Shared result container for reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..io.tables import format_table
from ..viz.lineplot import LinePlot


@dataclass(frozen=True)
class Comparison:
    """One paper-reported quantity vs what this reproduction measures."""

    quantity: str
    paper: str
    measured: str
    note: str = ""

    def matches(self, tolerance_note: str = "") -> str:  # pragma: no cover
        return f"{self.quantity}: paper {self.paper} vs ours {self.measured}"


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    table_headers: Sequence[str]
    table_rows: Sequence[Sequence[object]]
    comparisons: Sequence[Comparison] = field(default_factory=tuple)
    figure: Optional[LinePlot] = None
    notes: Sequence[str] = field(default_factory=tuple)

    def data_table(self) -> str:
        """The experiment's main table as text."""
        return format_table(self.table_headers, self.table_rows)

    def comparison_table(self) -> str:
        """Paper-vs-measured table as text."""
        if not self.comparisons:
            return "(no paper-reported quantities for this artifact)"
        return format_table(
            ("quantity", "paper", "measured", "note"),
            [
                (c.quantity, c.paper, c.measured, c.note)
                for c in self.comparisons
            ],
        )

    def summary_text(self) -> str:
        """Full text report for this experiment."""
        lines: List[str] = [
            f"=== {self.experiment_id}: {self.title} ===",
            "",
            self.data_table(),
            "",
            "Paper vs measured:",
            self.comparison_table(),
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def save_figure(self, path: str) -> Optional[str]:
        """Write the figure SVG if this artifact has one."""
        if self.figure is None:
            return None
        return self.figure.save(path)
