"""Fig. 14: case study C — dual-modular redundancy on the Pelican
(Sec. VI-C).

Adding a second TX2 (module + heatsink) for DMR raises reliability but
adds payload, lowering the roofline by ~33 %.  The paper's remedy: a
computer with 1/5th of the TX2's DroNet throughput would still sit at
the knee, within half the power envelope.
"""

from __future__ import annotations

from ..autonomy.workloads import get_algorithm
from ..compute.platforms import get_platform
from ..redundancy.modular import RedundancyScheme, apply_redundancy
from ..redundancy.reliability import ReliabilityModel, safety_probability
from ..skyline.plotting import roofline_figure
from ..uav.presets import PELICAN_RGBD_RANGE_M, asctec_pelican
from .base import Comparison, ExperimentResult


def run() -> ExperimentResult:
    """Reproduce Fig. 14b and the Sec. VI-C quantities."""
    tx2 = get_platform("jetson-tx2")
    dronet = get_algorithm("dronet")
    f_compute = dronet.throughput_on(tx2)

    simplex_uav = asctec_pelican(tx2, sensor_range_m=PELICAN_RGBD_RANGE_M)
    dmr = apply_redundancy(simplex_uav, RedundancyScheme.DMR)

    simplex = simplex_uav.f1(f_compute)
    redundant = dmr.uav.f1(f_compute)

    drop_pct = (1.0 - redundant.roof_velocity / simplex.roof_velocity) * 100.0
    fifth_throughput = f_compute / 5.0

    # Reliability side of the trade-off (per 0.5 h mission, lambda=1e-4/h).
    reliability = ReliabilityModel(failure_rate_per_hour=1e-4)
    p_simplex = safety_probability(RedundancyScheme.SIMPLEX, reliability, 0.5)
    p_dmr = safety_probability(RedundancyScheme.DMR, reliability, 0.5)

    figure = roofline_figure(
        (
            (f"Roofline-TX2 ({f_compute:.0f} Hz)", simplex),
            (f"Roofline-2xTX2 ({f_compute:.0f} Hz)", redundant),
        ),
        title="Fig. 14b: Pelican + DroNet — single vs dual TX2",
        f_min_hz=1.0,
        f_max_hz=400.0,
    )

    rows = (
        (
            "simplex",
            f"{simplex_uav.compute_payload_g:.0f}",
            f"{simplex.knee.throughput_hz:.1f}",
            f"{simplex.roof_velocity:.2f}",
            f"{1 - p_simplex:.2e}",
        ),
        (
            "DMR (2x TX2)",
            f"{dmr.uav.compute_payload_g:.0f}",
            f"{redundant.knee.throughput_hz:.1f}",
            f"{redundant.roof_velocity:.2f}",
            f"{1 - p_dmr:.2e}",
        ),
    )

    comparisons = (
        Comparison(
            "safe-velocity drop from DMR",
            "33%",
            f"{drop_pct:.1f}%",
        ),
        Comparison(
            "DroNet throughput on TX2",
            "178 Hz",
            f"{f_compute:.0f} Hz",
        ),
        Comparison(
            "1/5th-throughput replacement still at/above knee",
            "yes (tip in Sec. VI-C)",
            f"{fifth_throughput:.1f} Hz vs "
            f"{simplex.knee.throughput_hz:.1f} Hz knee",
        ),
        Comparison(
            "both configs physics-bound at 178 Hz",
            "yes",
            f"{simplex.bound.value} / {redundant.bound.value}",
        ),
    )

    return ExperimentResult(
        experiment_id="fig14",
        title="Case study C: modular redundancy",
        table_headers=(
            "arrangement", "compute payload (g)", "knee (Hz)",
            "roof (m/s)", "P(unsafe, 30 min)",
        ),
        table_rows=rows,
        comparisons=comparisons,
        figure=figure,
    )
