"""Fig. 15: case study D — full UAV system characterization
(Sec. VI-D).

Crosses two UAVs (DJI Spark, AscTec Pelican) with onboard computers
(NCS, TX2, Ras-Pi) and algorithms (DroNet, TrailNet, CAD2RL, VGG16),
classifying every design point as compute- or physics-bound and
extracting the paper's headline speedup targets for the Ras-Pi.
"""

from __future__ import annotations

from ..dse.explorer import explore
from ..dse.space import DesignSpace
from ..skyline.plotting import roofline_figure
from ..uav.presets import PELICAN_SENSING_RANGE_M, asctec_pelican, dji_spark
from ..autonomy.workloads import get_algorithm
from ..compute.platforms import get_platform
from .base import Comparison, ExperimentResult

COMPUTES = ("intel-ncs", "jetson-tx2", "raspi4")
ALGORITHMS = ("dronet", "trailnet", "cad2rl", "vgg16")


def run() -> ExperimentResult:
    """Reproduce the Fig. 15b characterization."""
    space = DesignSpace(
        uav_names=("dji-spark", "asctec-pelican"),
        compute_names=COMPUTES,
        algorithm_names=ALGORITHMS,
    )
    results = explore(space)

    rows = [
        (
            r.candidate.uav_name,
            r.candidate.compute_name,
            r.candidate.algorithm_name,
            f"{r.candidate.f_compute_hz:.2f}",
            f"{r.knee_hz:.1f}",
            f"{r.safe_velocity:.2f}",
            r.bound.value,
        )
        for r in results
    ]

    # The paper's quoted targets: DroNet/TrailNet/CAD2RL on Pelican+RasPi.
    # Fig. 15 draws a single roofline per UAV type (payload fixed at the
    # TX2 build), so the speedup targets use that fixed knee; the
    # exploration table above recomputes weight-aware knees per design.
    tx2 = get_platform("jetson-tx2")
    raspi = get_platform("raspi4")
    pelican_knee_hz = (
        asctec_pelican(tx2, sensor_range_m=PELICAN_SENSING_RANGE_M)
        .f1(1.0)
        .knee.throughput_hz
    )
    speedups = {}
    for algo_name in ("dronet", "trailnet", "cad2rl"):
        f_c = get_algorithm(algo_name).throughput_on(raspi)
        speedups[algo_name] = pelican_knee_hz / f_c

    spark_tx2 = dji_spark(tx2)
    f_dronet_tx2 = get_algorithm("dronet").throughput_on(tx2)
    spark_model = spark_tx2.f1(f_dronet_tx2)

    # Rooflines for the two UAV types (with their default computers).
    figure = roofline_figure(
        (
            (
                "Roofline: DJI Spark (+TX2)",
                spark_model,
            ),
            (
                "Roofline: AscTec Pelican (+TX2)",
                asctec_pelican(
                    tx2, sensor_range_m=PELICAN_SENSING_RANGE_M
                ).f1(f_dronet_tx2),
            ),
        ),
        title="Fig. 15b: full-system characterization",
        f_min_hz=1.0,
        f_max_hz=1000.0,
    )

    comparisons = (
        Comparison(
            "Ras-Pi DroNet speedup needed (Pelican)",
            "3.3x",
            f"{speedups['dronet']:.1f}x",
        ),
        Comparison(
            "Ras-Pi TrailNet speedup needed (Pelican)",
            "110x",
            f"{speedups['trailnet']:.0f}x",
        ),
        Comparison(
            "Ras-Pi CAD2RL speedup needed (Pelican)",
            "660x",
            f"{speedups['cad2rl']:.0f}x",
        ),
        Comparison(
            "Spark + TX2 knee",
            "30 Hz",
            f"{spark_model.knee.throughput_hz:.1f} Hz",
        ),
        Comparison(
            "Spark + TX2 DroNet over-provisioning",
            "6x",
            f"{spark_model.compute_overprovision_factor:.1f}x",
        ),
    )

    notes = (
        "the stylized Fig. 1/15 sketch draws the Pelican roofline above "
        "the Spark's; the paper's quantitative anchors (43 Hz vs 30 Hz "
        "knees) pin the presets instead, which puts the short-sensor "
        "Pelican roof below the Spark roof",
    )

    return ExperimentResult(
        experiment_id="fig15",
        title="Case study D: full UAV system characterization",
        table_headers=(
            "uav", "compute", "algorithm", "f_c (Hz)", "knee (Hz)",
            "v_safe (m/s)", "bound",
        ),
        table_rows=rows,
        comparisons=comparisons,
        figure=figure,
    )
