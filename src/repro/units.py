"""Unit conventions, conversions and validation helpers.

The library uses plain floats with fixed unit conventions rather than a
quantity type.  The conventions are:

=============  ======================================
Quantity       Unit
=============  ======================================
mass           grams (``_g`` suffix) or kg (``_kg``)
force/thrust   gram-force (``_g``) — rotor "pull"
length         meters (``_m``)
time           seconds (``_s``)
rate           hertz (``_hz``)
velocity       m/s
acceleration   m/s^2
power          watts (``_w``)
energy         watt-hours (``_wh``) or joules (``_j``)
angle          degrees in public APIs, radians internally
=============  ======================================

These helpers convert between the conventions and validate arguments at
API boundaries, raising :class:`repro.errors.ConfigurationError` with a
message naming the offending parameter.
"""

from __future__ import annotations

import math

from .errors import ConfigurationError

#: Standard gravitational acceleration, m/s^2.
GRAVITY = 9.80665

#: Sea-level air density, kg/m^3 (ISA standard atmosphere).
AIR_DENSITY = 1.225

GRAMS_PER_KG = 1000.0
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
JOULES_PER_WH = 3600.0


def grams_to_kg(mass_g: float) -> float:
    """Convert grams to kilograms."""
    return mass_g / GRAMS_PER_KG


def kg_to_grams(mass_kg: float) -> float:
    """Convert kilograms to grams."""
    return mass_kg * GRAMS_PER_KG


def gram_force_to_newtons(force_g: float) -> float:
    """Convert gram-force (rotor "pull" as reported on spec sheets) to N."""
    return force_g / GRAMS_PER_KG * GRAVITY


def newtons_to_gram_force(force_n: float) -> float:
    """Convert newtons to gram-force."""
    return force_n * GRAMS_PER_KG / GRAVITY


def hz_to_period(rate_hz: float) -> float:
    """Convert a rate in Hz to its period in seconds."""
    require_positive("rate_hz", rate_hz)
    return 1.0 / rate_hz


def period_to_hz(period_s: float) -> float:
    """Convert a period in seconds to a rate in Hz."""
    require_positive("period_s", period_s)
    return 1.0 / period_s


def ms_to_s(latency_ms: float) -> float:
    """Convert milliseconds to seconds."""
    return latency_ms / 1000.0


def s_to_ms(latency_s: float) -> float:
    """Convert seconds to milliseconds."""
    return latency_s * 1000.0


def deg_to_rad(angle_deg: float) -> float:
    """Convert degrees to radians."""
    return math.radians(angle_deg)


def rad_to_deg(angle_rad: float) -> float:
    """Convert radians to degrees."""
    return math.degrees(angle_rad)


def mah_to_wh(capacity_mah: float, voltage_v: float) -> float:
    """Convert a battery capacity in mAh at a nominal voltage to Wh."""
    require_nonnegative("capacity_mah", capacity_mah)
    require_positive("voltage_v", voltage_v)
    return capacity_mah / 1000.0 * voltage_v


def wh_to_joules(energy_wh: float) -> float:
    """Convert watt-hours to joules."""
    return energy_wh * JOULES_PER_WH


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number > 0, returning it.

    Raises :class:`ConfigurationError` naming ``name`` otherwise.
    """
    _require_finite(name, value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_nonnegative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number >= 0, returning it."""
    _require_finite(name, value)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies strictly in (0, 1), returning it."""
    _require_finite(name, value)
    if not 0.0 < value < 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1), got {value!r}")
    return value


def require_in_range(
    name: str, value: float, low: float, high: float
) -> float:
    """Validate that ``low <= value <= high``, returning ``value``."""
    _require_finite(name, value)
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value


def _require_finite(name: str, value: float) -> None:
    try:
        ok = math.isfinite(value)
    except TypeError as exc:  # e.g. None or a string
        raise ConfigurationError(
            f"{name} must be a real number, got {value!r}"
        ) from exc
    if not ok:
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
