"""Along-track wind gusts for the flight simulator.

The paper motivates the 1 kHz flight-controller loop with disturbance
rejection against "sudden winds"; this module provides the disturbance
side: a first-order Gauss-Markov (Ornstein-Uhlenbeck) gust process, the
standard lightweight stand-in for a Dryden turbulence channel.  The
wind speed is along the flight track: positive values are tailwind
(they reduce aerodynamic drag and *lengthen* stopping distances —
the dangerous direction for the obstacle-stop experiment).
"""

from __future__ import annotations

import math

import numpy as np

from ..units import require_nonnegative, require_positive


class OrnsteinUhlenbeckGust:
    """First-order Gauss-Markov gust: ``dw = -w/tau dt + sigma dW``.

    ``sigma_ms`` is the stationary standard deviation of the wind
    speed (m/s), ``tau_s`` its correlation time.  The discrete update
    uses the exact conditional distribution, so statistics do not
    depend on the step size.
    """

    def __init__(
        self,
        sigma_ms: float,
        tau_s: float = 1.5,
        mean_ms: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        require_nonnegative("sigma_ms", sigma_ms)
        require_positive("tau_s", tau_s)
        self.sigma_ms = sigma_ms
        self.tau_s = tau_s
        self.mean_ms = mean_ms
        self._rng = rng or np.random.default_rng()
        self._wind = mean_ms

    @property
    def wind_ms(self) -> float:
        """Current along-track wind speed (+ = tailwind)."""
        return self._wind

    def step(self, dt: float) -> float:
        """Advance the process by ``dt`` and return the new wind."""
        require_positive("dt", dt)
        if self.sigma_ms == 0.0:
            self._wind = self.mean_ms
            return self._wind
        decay = math.exp(-dt / self.tau_s)
        noise_std = self.sigma_ms * math.sqrt(1.0 - decay * decay)
        self._wind = (
            self.mean_ms
            + (self._wind - self.mean_ms) * decay
            + noise_std * float(self._rng.normal())
        )
        return self._wind
