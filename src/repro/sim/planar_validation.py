"""Planar-quadrotor cross-validation of the obstacle-stop experiment.

The longitudinal simulator (:mod:`repro.sim.obstacle_stop`) abstracts
attitude dynamics into a first-order lag.  This module re-flies the
same maneuver on the full planar rigid body under the 1 kHz cascaded
flight controller, with the offboard layer rate-limiting the velocity
setpoint to the vehicle's Eq. 5 acceleration (the way PX4's
``MPC_ACC_HOR`` limits translation).  Agreement between the two
simulators bounds the error introduced by the 1-D abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..control.flight_controller import CascadedFlightController
from ..dynamics.quadrotor import PlanarQuadrotor, QuadrotorParams
from ..errors import SimulationError
from ..uav.configuration import UAVConfiguration
from ..units import require_positive


@dataclass(frozen=True)
class PlanarFlightResult:
    """Outcome of one planar-quadrotor obstacle-stop flight."""

    stop_position_m: float
    obstacle_position_m: float
    peak_velocity: float
    max_altitude_error_m: float
    infraction: bool

    @property
    def margin_m(self) -> float:
        return self.obstacle_position_m - self.stop_position_m


def run_planar_obstacle_stop(
    uav: UAVConfiguration,
    cruise_velocity: float,
    f_action_hz: float = 10.0,
    approach_distance_m: float = 12.0,
    detection_noise_m: float = 0.05,
    dt_s: float = 0.002,
    seed: int = 0,
    timeout_s: float = 120.0,
) -> PlanarFlightResult:
    """Fly accelerate-cruise-detect-brake on the planar rigid body."""
    require_positive("cruise_velocity", cruise_velocity)
    sensing_range = uav.sensor.range_m
    if approach_distance_m <= sensing_range:
        raise SimulationError(
            "the approach must start outside the sensing range"
        )

    rng = np.random.default_rng(seed)
    params = QuadrotorParams(
        total_mass_g=uav.total_mass_g,
        arm_length_m=uav.frame.size_mm / 2000.0,
        max_thrust_per_pair_g=uav.total_thrust_g / 2.0,
        cd_area_m2=uav.frame.cd_area_m2,
    )
    quad = PlanarQuadrotor(params)
    controller = CascadedFlightController(quad, loop_rate_hz=1.0 / dt_s)

    a_limit = uav.max_acceleration
    sensor_period = uav.sensor.sample_period_s
    action_period = 1.0 / f_action_hz
    next_sensor_t = float(rng.uniform(0.0, sensor_period))
    next_action_t = float(rng.uniform(0.0, action_period))

    obstacle_x = approach_distance_m
    detected = False
    braking = False
    setpoint = 0.0
    peak_v = 0.0
    max_alt_error = 0.0

    t = 0.0
    while t < timeout_s:
        if t >= next_sensor_t:
            next_sensor_t += sensor_period
            distance = obstacle_x - quad.state.x
            if distance + rng.normal(0.0, detection_noise_m) <= sensing_range:
                detected = True
        if t >= next_action_t:
            next_action_t += action_period
            if detected:
                braking = True

        # Offboard layer: ramp the setpoint at the Eq. 5 acceleration.
        target = 0.0 if braking else cruise_velocity
        step = a_limit * dt_s
        if setpoint < target:
            setpoint = min(setpoint + step, target)
        else:
            setpoint = max(setpoint - step, target)
        controller.set_velocity(setpoint)

        controller.update()
        quad.step(dt_s)
        t += dt_s

        peak_v = max(peak_v, quad.state.vx)
        max_alt_error = max(max_alt_error, abs(quad.state.z))

        if braking and setpoint == 0.0 and abs(quad.state.vx) < 0.02:
            break
    else:
        raise SimulationError(
            f"planar flight did not terminate within {timeout_s} s"
        )

    stop_x = quad.state.x
    return PlanarFlightResult(
        stop_position_m=stop_x,
        obstacle_position_m=obstacle_x,
        peak_velocity=peak_v,
        max_altitude_error_m=max_alt_error,
        infraction=stop_x > obstacle_x,
    )
