"""The obstacle-stop flight experiment (Sec. IV of the paper).

Replaces the paper's real flights + Vicon ground truth with a
multi-rate co-simulation.  The vehicle starts ``approach_distance_m``
before the obstacle, accelerates to the commanded cruise velocity, and
— once the (noisy, discretely sampled) sensor reports the obstacle
within range and the autonomy loop ticks — brakes at full authority.
An *infraction* is any crossing of the obstacle position, exactly the
paper's criterion.

Fidelity effects absent from the analytic F-1 model, and therefore the
sources of the paper's 5-10 % optimistic bias, are all present here:
pitch lag, in-flight thrust derating, sensor sampling + detection
noise, and asynchronous decision ticks (the analytic model assumes a
worst-case but *exact* one-period delay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.physics import QuadraticDrag
from ..dynamics.body import LongitudinalBody
from ..errors import SimulationError
from ..uav.configuration import UAVConfiguration
from ..units import require_positive
from .wind import OrnsteinUhlenbeckGust

#: Fraction of the Eq. 5 acceleration actually achieved in flight
#: (battery sag, prop efficiency in translation, controller authority).
DEFAULT_ACCEL_DERATE = 0.93

#: First-order pitch-response lag of an S500-class airframe (s).
DEFAULT_PITCH_LAG_S = 0.25


@dataclass(frozen=True)
class ObstacleStopConfig:
    """Parameters of one obstacle-stop flight."""

    cruise_velocity: float
    approach_distance_m: float = 12.0
    f_action_hz: float = 10.0
    detection_noise_m: float = 0.05
    accel_derate: float = DEFAULT_ACCEL_DERATE
    pitch_lag_s: float = DEFAULT_PITCH_LAG_S
    gust_sigma_ms: float = 0.0
    gust_tau_s: float = 1.5
    mean_wind_ms: float = 0.0
    dt_s: float = 0.001
    timeout_s: float = 120.0

    def __post_init__(self) -> None:
        require_positive("cruise_velocity", self.cruise_velocity)
        require_positive("approach_distance_m", self.approach_distance_m)
        require_positive("f_action_hz", self.f_action_hz)
        require_positive("dt_s", self.dt_s)
        if self.gust_sigma_ms < 0:
            raise SimulationError("gust_sigma_ms must be >= 0")


@dataclass(frozen=True)
class FlightResult:
    """Trajectory and verdict of one simulated flight."""

    config: ObstacleStopConfig
    times: np.ndarray = field(repr=False)
    positions: np.ndarray = field(repr=False)
    velocities: np.ndarray = field(repr=False)
    obstacle_position_m: float
    stop_position_m: float
    peak_velocity: float
    detect_time_s: float
    infraction: bool

    @property
    def margin_m(self) -> float:
        """Remaining distance to the obstacle at full stop (negative
        when the flight ended in an infraction)."""
        return self.obstacle_position_m - self.stop_position_m


def run_obstacle_stop(
    uav: UAVConfiguration,
    config: ObstacleStopConfig,
    seed: int = 0,
) -> FlightResult:
    """Fly one accelerate-cruise-detect-brake profile and judge it."""
    rng = np.random.default_rng(seed)

    # In-flight physics: the Eq. 5 acceleration, derated for effects
    # the spec-sheet model ignores (battery sag, translating props).
    a_limit = uav.max_acceleration * config.accel_derate
    body = LongitudinalBody(
        total_mass_g=uav.total_mass_g,
        a_limit=a_limit,
        drag=QuadraticDrag(cd_area_m2=uav.frame.cd_area_m2),
        pitch_lag_s=config.pitch_lag_s,
    )

    obstacle_x = config.approach_distance_m
    sensing_range = uav.sensor.range_m
    if config.approach_distance_m <= sensing_range:
        raise SimulationError(
            "the approach must start outside the sensing range "
            f"({sensing_range} m) so the vehicle can reach cruise speed "
            "before the obstacle becomes visible"
        )
    sensor_period = uav.sensor.sample_period_s
    action_period = 1.0 / config.f_action_hz

    # Stagger the asynchronous loops like real unsynchronized processes.
    next_sensor_t = float(rng.uniform(0.0, sensor_period))
    next_action_t = float(rng.uniform(0.0, action_period))

    gust = OrnsteinUhlenbeckGust(
        sigma_ms=config.gust_sigma_ms,
        tau_s=config.gust_tau_s,
        mean_ms=config.mean_wind_ms,
        rng=rng,
    )

    detected_by_sensor = False
    braking = False
    detect_time = float("nan")

    times: List[float] = []
    positions: List[float] = []
    velocities: List[float] = []
    peak_v = 0.0
    velocity_kp = 4.0

    t_end = config.timeout_s
    while body.t < t_end:
        # Sensor process: sample obstacle distance at the frame rate.
        if body.t >= next_sensor_t:
            next_sensor_t += sensor_period
            distance = obstacle_x - body.x
            noisy = distance + rng.normal(0.0, config.detection_noise_m)
            if noisy <= sensing_range:
                detected_by_sensor = True

        # Autonomy process: decide at the action rate.
        if body.t >= next_action_t:
            next_action_t += action_period
            if detected_by_sensor and not braking:
                braking = True
                detect_time = body.t

        # Flight controller (every physics step, ~1 kHz).
        if braking:
            body.command_acceleration(-body.a_limit)
        else:
            error = config.cruise_velocity - body.v
            body.command_acceleration(velocity_kp * error)

        body.step(config.dt_s, wind_ms=gust.step(config.dt_s))
        times.append(body.t)
        positions.append(body.x)
        velocities.append(body.v)
        peak_v = max(peak_v, body.v)

        if braking and body.stopped:
            break
    else:
        raise SimulationError(
            f"flight did not terminate within {config.timeout_s} s "
            f"(v_cmd={config.cruise_velocity}, a_limit={a_limit:.3f})"
        )

    stop_x = body.x
    return FlightResult(
        config=config,
        times=np.asarray(times),
        positions=np.asarray(positions),
        velocities=np.asarray(velocities),
        obstacle_position_m=obstacle_x,
        stop_position_m=stop_x,
        peak_velocity=peak_v,
        detect_time_s=detect_time,
        infraction=stop_x > obstacle_x,
    )
