"""Multi-rate flight co-simulation and the obstacle-stop experiment."""

from .corridor import CorridorWorld, NavigationResult, navigate_corridor
from .obstacle_stop import FlightResult, ObstacleStopConfig, run_obstacle_stop
from .planar_validation import PlanarFlightResult, run_planar_obstacle_stop
from .wind import OrnsteinUhlenbeckGust
from .trials import SafeVelocitySearch, TrialOutcome, find_observed_safe_velocity

__all__ = [
    "CorridorWorld",
    "NavigationResult",
    "navigate_corridor",
    "OrnsteinUhlenbeckGust",
    "FlightResult",
    "ObstacleStopConfig",
    "run_obstacle_stop",
    "PlanarFlightResult",
    "run_planar_obstacle_stop",
    "SafeVelocitySearch",
    "TrialOutcome",
    "find_observed_safe_velocity",
]
