"""Repeated-trial campaigns and observed-safe-velocity search.

Mirrors the paper's methodology (Sec. IV): for each candidate cruise
velocity, fly five trials with different noise realizations; a
velocity is *unsafe* if **any** trial ends in an infraction ("with
2 m/s, UAV-A had infractions twice out of five trials.  But we still
consider this velocity to be unsafe").  The observed safe velocity is
the fastest candidate below the first unsafe one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from ..uav.configuration import UAVConfiguration
from .obstacle_stop import FlightResult, ObstacleStopConfig, run_obstacle_stop


@dataclass(frozen=True)
class TrialOutcome:
    """All trials flown at one candidate velocity."""

    velocity: float
    flights: Sequence[FlightResult]

    @property
    def infractions(self) -> int:
        return sum(1 for flight in self.flights if flight.infraction)

    @property
    def safe(self) -> bool:
        """The paper's criterion: safe only with zero infractions."""
        return self.infractions == 0


@dataclass(frozen=True)
class SafeVelocitySearch:
    """Result of a velocity sweep: outcomes plus the located boundary."""

    outcomes: Sequence[TrialOutcome]
    observed_safe_velocity: float

    def outcome_at(self, velocity: float) -> TrialOutcome:
        for outcome in self.outcomes:
            if abs(outcome.velocity - velocity) < 1e-9:
                return outcome
        raise KeyError(velocity)


def run_trials(
    uav: UAVConfiguration,
    config: ObstacleStopConfig,
    trials: int = 5,
    seed: int = 0,
) -> TrialOutcome:
    """Fly ``trials`` independent noise realizations of one profile."""
    if trials < 1:
        raise SimulationError("need at least one trial")
    flights = [
        run_obstacle_stop(uav, config, seed=seed * 1000 + trial)
        for trial in range(trials)
    ]
    return TrialOutcome(velocity=config.cruise_velocity, flights=flights)


def find_observed_safe_velocity(
    uav: UAVConfiguration,
    f_action_hz: float = 10.0,
    velocities: Optional[Sequence[float]] = None,
    predicted_velocity: Optional[float] = None,
    trials: int = 5,
    seed: int = 0,
    base_config: Optional[ObstacleStopConfig] = None,
) -> SafeVelocitySearch:
    """Sweep candidate velocities and locate the observed safe velocity.

    When ``velocities`` is omitted, a grid of 5 % steps spanning 60 % to
    120 % of ``predicted_velocity`` (the F-1 prediction used as the
    seed value, exactly the paper's procedure) is used.
    """
    if velocities is None:
        if predicted_velocity is None:
            raise SimulationError(
                "provide either an explicit velocity grid or the "
                "F-1-predicted velocity to seed one"
            )
        velocities = [
            predicted_velocity * factor
            for factor in np.arange(0.60, 1.2001, 0.05)
        ]
    velocities = sorted(velocities)

    template = base_config or ObstacleStopConfig(
        cruise_velocity=velocities[0], f_action_hz=f_action_hz
    )

    outcomes: List[TrialOutcome] = []
    observed = 0.0
    for velocity in velocities:
        config = replace(
            template, cruise_velocity=velocity, f_action_hz=f_action_hz
        )
        outcome = run_trials(uav, config, trials=trials, seed=seed)
        outcomes.append(outcome)
        if outcome.safe:
            observed = velocity
        else:
            break  # paper stops at the first unsafe velocity
    if observed == 0.0:
        raise SimulationError(
            "even the slowest candidate velocity had infractions; "
            "widen the grid downward"
        )
    return SafeVelocitySearch(
        outcomes=outcomes, observed_safe_velocity=observed
    )
