"""Closed-loop SPA navigation through an obstacle corridor.

The end-to-end demonstration of the sense-plan-act substrate: a
kinematic vehicle crosses a corridor strewn with circular obstacles,
re-sensing (simulated lidar), re-mapping (occupancy grid) and
re-planning (A*) at the action rate, flying at a commanded velocity.
Slow decision rates and high velocities produce collisions — the same
coupling Eq. 4 captures analytically, observed behaviorally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autonomy.mapping import OccupancyGrid
from ..autonomy.planning import PlanningError, astar, simplify_path
from ..errors import SimulationError
from ..units import require_positive

Point = Tuple[float, float]


@dataclass(frozen=True)
class Obstacle:
    """A circular obstacle."""

    x: float
    y: float
    radius: float


class CorridorWorld:
    """A rectangular corridor with randomly placed circular obstacles."""

    def __init__(
        self,
        length_m: float = 30.0,
        width_m: float = 10.0,
        obstacle_count: int = 12,
        obstacle_radius_m: float = 0.5,
        seed: int = 0,
        keepout_m: float = 3.0,
    ) -> None:
        require_positive("length_m", length_m)
        require_positive("width_m", width_m)
        rng = np.random.default_rng(seed)
        self.length_m = length_m
        self.width_m = width_m
        self.obstacles: List[Obstacle] = []
        for _ in range(obstacle_count):
            # Keep the start and goal neighborhoods clear.
            x = float(rng.uniform(keepout_m, length_m - keepout_m))
            y = float(rng.uniform(obstacle_radius_m, width_m - obstacle_radius_m))
            self.obstacles.append(Obstacle(x=x, y=y, radius=obstacle_radius_m))

    def distance_to_nearest(self, point: Point) -> float:
        """Clearance from ``point`` to the nearest obstacle surface."""
        if not self.obstacles:
            return math.inf
        return min(
            math.hypot(point[0] - o.x, point[1] - o.y) - o.radius
            for o in self.obstacles
        )

    def ray_distance(
        self, origin: Point, angle_rad: float, max_range_m: float
    ) -> Optional[float]:
        """First obstacle hit along a ray, or None within range.

        Analytic ray-circle intersection per obstacle (walls are not
        sensed; the planner's world bounds handle them).
        """
        ox, oy = origin
        dx, dy = math.cos(angle_rad), math.sin(angle_rad)
        best: Optional[float] = None
        for obstacle in self.obstacles:
            fx, fy = ox - obstacle.x, oy - obstacle.y
            b = 2.0 * (fx * dx + fy * dy)
            c = fx * fx + fy * fy - obstacle.radius**2
            disc = b * b - 4.0 * c
            if disc < 0.0:
                continue
            sqrt_disc = math.sqrt(disc)
            for t in ((-b - sqrt_disc) / 2.0, (-b + sqrt_disc) / 2.0):
                if 0.0 < t <= max_range_m and (best is None or t < best):
                    best = t
        return best

    def scan(
        self,
        origin: Point,
        beams: int = 72,
        fov_rad: float = 2.0 * math.pi,
        max_range_m: float = 6.0,
    ) -> Tuple[Sequence[float], Sequence[Optional[float]]]:
        """A full range scan from ``origin``: (angles, ranges)."""
        angles = [
            -fov_rad / 2.0 + fov_rad * i / max(beams - 1, 1)
            for i in range(beams)
        ]
        ranges = [
            self.ray_distance(origin, angle, max_range_m)
            for angle in angles
        ]
        return angles, ranges


@dataclass(frozen=True)
class NavigationResult:
    """Outcome of one corridor crossing."""

    reached_goal: bool
    collided: bool
    time_s: float
    path_length_m: float
    replans: int
    min_clearance_m: float


def navigate_corridor(
    world: CorridorWorld,
    velocity: float,
    f_action_hz: float,
    sensor_range_m: float = 6.0,
    vehicle_radius_m: float = 0.25,
    planning_margin: float = 1.8,
    dt_s: float = 0.02,
    timeout_s: float = 300.0,
    grid_resolution_m: float = 0.25,
) -> NavigationResult:
    """Cross the corridor start-to-end under SPA control.

    The vehicle is kinematic (it tracks waypoints at ``velocity``);
    what is under test is the *decision loop*: scan -> map -> plan at
    ``f_action_hz``.  A collision is any moment the vehicle center
    comes within ``vehicle_radius_m`` of an obstacle surface; the
    planner keeps ``planning_margin * vehicle_radius_m`` of clearance
    so quantization and between-decision drift have headroom.
    """
    require_positive("velocity", velocity)
    require_positive("f_action_hz", f_action_hz)
    require_positive("planning_margin", planning_margin)

    grid = OccupancyGrid(
        world.length_m, world.width_m, resolution_m=grid_resolution_m
    )
    position = [1.0, world.width_m / 2.0]
    goal: Point = (world.length_m - 1.0, world.width_m / 2.0)

    action_period = 1.0 / f_action_hz
    next_action_t = 0.0
    waypoints: List[Point] = []
    replans = 0
    path_length = 0.0
    min_clearance = math.inf
    t = 0.0

    while t < timeout_s:
        # Decision tick: sense, map, plan.
        if t >= next_action_t:
            next_action_t += action_period
            angles, ranges = world.scan(
                tuple(position), max_range_m=sensor_range_m
            )
            grid.integrate_scan(
                tuple(position), angles, ranges, sensor_range_m
            )
            blocked = grid.blocked_mask(
                inflation_radius_m=vehicle_radius_m * planning_margin
            )
            try:
                start_cell = grid.world_to_cell(tuple(position))
                goal_cell = grid.world_to_cell(goal)
                blocked[start_cell[1], start_cell[0]] = False
                blocked[goal_cell[1], goal_cell[0]] = False
                cells = simplify_path(
                    blocked, astar(blocked, start_cell, goal_cell)
                )
                waypoints = [grid.cell_to_world(c) for c in cells[1:]]
                replans += 1
            except PlanningError:
                waypoints = []  # hold position until the map opens up

        # Motion: track the current waypoint at the commanded velocity.
        if waypoints:
            wx, wy = waypoints[0]
            dx, dy = wx - position[0], wy - position[1]
            distance = math.hypot(dx, dy)
            step = velocity * dt_s
            if distance <= step:
                position[0], position[1] = wx, wy
                waypoints.pop(0)
            else:
                position[0] += dx / distance * step
                position[1] += dy / distance * step
            path_length += min(step, distance)

        clearance = world.distance_to_nearest(tuple(position))
        min_clearance = min(min_clearance, clearance)
        if clearance < vehicle_radius_m:
            return NavigationResult(
                reached_goal=False,
                collided=True,
                time_s=t,
                path_length_m=path_length,
                replans=replans,
                min_clearance_m=min_clearance,
            )
        if math.hypot(position[0] - goal[0], position[1] - goal[1]) < 0.3:
            return NavigationResult(
                reached_goal=True,
                collided=False,
                time_s=t,
                path_length_m=path_length,
                replans=replans,
                min_clearance_m=min_clearance,
            )
        t += dt_s

    raise SimulationError(
        f"corridor crossing did not terminate within {timeout_s} s "
        f"(v={velocity}, f={f_action_hz})"
    )
