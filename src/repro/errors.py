"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch one base type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A UAV or model configuration is inconsistent or out of range."""


class InfeasibleDesignError(ReproError):
    """The requested design cannot fly (e.g. thrust below weight with
    no braking floor, or a commanded velocity above the physics roof)."""


class CalibrationError(ReproError):
    """Parameter fitting failed to converge or had insufficient data."""


class SimulationError(ReproError):
    """A simulation was configured or advanced incorrectly."""


class UnknownComponentError(ReproError, KeyError):
    """A named component (platform, algorithm, sensor) is not registered."""
