"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch one base type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A UAV or model configuration is inconsistent or out of range."""


class InfeasibleDesignError(ReproError):
    """The requested design cannot fly (e.g. thrust below weight with
    no braking floor, or a commanded velocity above the physics roof)."""


class CalibrationError(ReproError):
    """Parameter fitting failed to converge or had insufficient data."""


class SimulationError(ReproError):
    """A simulation was configured or advanced incorrectly."""


class UnknownComponentError(ReproError, KeyError):
    """A named component (platform, algorithm, sensor) is not registered."""


class ShardExecutionError(ReproError):
    """A sharded-executor worker failed while evaluating one shard.

    Raised in place of the worker's original exception (which is kept
    as ``__cause__``) so failures surface *with* their shard context —
    the shard index and the ``[start, stop)`` row range — instead of a
    bare traceback from deep inside a process-pool worker.
    """

    def __init__(
        self,
        message: str,
        shard_index: "int | None" = None,
        start: "int | None" = None,
        stop: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.start = start
        self.stop = stop

    def __reduce__(
        self,
    ) -> "tuple[type, tuple[object, ...]]":  # picklable across pools
        return (
            type(self),
            (self.args[0], self.shard_index, self.start, self.stop),
        )
