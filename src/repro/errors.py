"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch one base type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A UAV or model configuration is inconsistent or out of range."""


class InfeasibleDesignError(ReproError):
    """The requested design cannot fly (e.g. thrust below weight with
    no braking floor, or a commanded velocity above the physics roof)."""


class CalibrationError(ReproError):
    """Parameter fitting failed to converge or had insufficient data."""


class SimulationError(ReproError):
    """A simulation was configured or advanced incorrectly."""


class UnknownComponentError(ReproError, KeyError):
    """A named component (platform, algorithm, sensor) is not registered."""


class UnknownStudyError(ReproError, KeyError):
    """A study id names no study the serving layer knows about."""

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes its argument (useful for dict
        # keys, noise for error messages); restore plain text.
        return str(self.args[0]) if self.args else ""


class StudyQueueFullError(ReproError):
    """The serving layer's study queue is at its depth limit.

    Carries the scheduler's ``retry_after_s`` estimate so the HTTP
    layer can answer ``429 Too Many Requests`` with a concrete
    ``Retry-After`` header instead of a bare rejection.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceUnavailableError(ReproError):
    """The serving layer is not (or no longer) accepting requests."""


class LeaseConflictError(ReproError):
    """A distributed shard lease is already held by a live worker.

    Carries the competing ``owner`` id and the claimed ``shard_index``
    so operators can see *who* holds the shard when a claim is refused.
    """

    def __init__(
        self,
        message: str,
        shard_index: "int | None" = None,
        owner: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.owner = owner

    def __reduce__(
        self,
    ) -> "tuple[type, tuple[object, ...]]":  # picklable across pools
        return (type(self), (self.args[0], self.shard_index, self.owner))


class StaleLeaseError(ReproError):
    """A lease this worker believed it held was expired and taken over.

    Raised on heartbeat/release when the lease file has vanished or now
    names a different owner: another worker judged this one dead (no
    heartbeat within ``lease_ttl_s``) and re-claimed the shard.  The
    shard itself is still safe — records are deterministic and
    published atomically — so callers treat this as "stop working on
    that shard", not as data loss.
    """

    def __init__(
        self,
        message: str,
        shard_index: "int | None" = None,
        owner: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.owner = owner

    def __reduce__(
        self,
    ) -> "tuple[type, tuple[object, ...]]":  # picklable across pools
        return (type(self), (self.args[0], self.shard_index, self.owner))


class ShardExecutionError(ReproError):
    """A sharded-executor worker failed while evaluating one shard.

    Raised in place of the worker's original exception (which is kept
    as ``__cause__``) so failures surface *with* their shard context —
    the shard index and the ``[start, stop)`` row range — instead of a
    bare traceback from deep inside a process-pool worker.
    """

    def __init__(
        self,
        message: str,
        shard_index: "int | None" = None,
        start: "int | None" = None,
        stop: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.start = start
        self.stop = stop

    def __reduce__(
        self,
    ) -> "tuple[type, tuple[object, ...]]":  # picklable across pools
        return (
            type(self),
            (self.args[0], self.shard_index, self.start, self.stop),
        )
