"""Monte-Carlo mission robustness: velocity margin under uncertainty.

The F-1 model gives a deterministic safe velocity; real missions face
gusts, battery variance and compute-unit failures.  This study samples
those uncertainties jointly and estimates the probability a mission
completes (a) without an emergency velocity violation, (b) within the
battery, and (c) with the compute arrangement alive — combining the
wind, energy and redundancy substrates into one number an operator can
set a dispatch threshold on.

The velocity-margin sampling is columnar in the :mod:`repro.batch`
style: all gust draws, battery-capacity factors and reliability
uniforms are drawn as structure-of-arrays vectors up front and the
infeasible samples are masked out in one vectorized pass; only the
(inherently scalar) mission flight loop touches individual samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..redundancy.modular import RedundancyScheme
from ..redundancy.reliability import ReliabilityModel, mission_reliability
from ..errors import ConfigurationError
from ..uav.configuration import UAVConfiguration
from ..units import require_positive
from .mission import Mission, fly_mission

#: Usable velocities at or below this floor count as infeasible (m/s).
MIN_DISPATCH_VELOCITY = 0.05


@dataclass(frozen=True)
class MonteCarloConfig:
    """Uncertainty model for the mission study."""

    samples: int = 500
    gust_sigma_ms: float = 1.0
    battery_capacity_cv: float = 0.05  # coefficient of variation
    compute_failure_rate_per_hour: float = 1e-4
    velocity_margin_sigma: float = 2.0  # gusts held back, in sigmas
    seed: int = 0

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ConfigurationError(
                f"samples must be >= 1, got {self.samples!r}"
            )
        require_positive(
            "compute_failure_rate_per_hour",
            self.compute_failure_rate_per_hour,
        )


@dataclass(frozen=True)
class MonteCarloResult:
    """Estimated mission-outcome probabilities."""

    samples: int
    p_complete: float
    p_energy_shortfall: float
    p_velocity_infeasible: float
    p_compute_loss: float
    mean_time_s: float
    mean_energy_wh: float


def sample_usable_velocities(
    safe_velocity: float,
    config: MonteCarloConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized velocity-margin draw: one usable velocity per sample.

    The flyable velocity is the F-1 safe velocity minus a
    ``velocity_margin_sigma``-scaled draw of the gust level; entries at
    or below :data:`MIN_DISPATCH_VELOCITY` mark aborted dispatches.
    """
    gust_levels = np.abs(
        rng.normal(0.0, config.gust_sigma_ms, size=config.samples)
    )
    return safe_velocity - config.velocity_margin_sigma * gust_levels


def mission_success_probability(
    uav: UAVConfiguration,
    mission: Mission,
    safe_velocity: float,
    config: MonteCarloConfig | None = None,
    scheme: RedundancyScheme = RedundancyScheme.SIMPLEX,
) -> MonteCarloResult:
    """Sample the mission under gust/battery/compute uncertainty.

    Per sample: the flyable velocity comes from
    :func:`sample_usable_velocities` (a mission aborts if nothing
    positive remains); battery capacity is drawn log-normally around
    nameplate; the compute arrangement survives with the
    redundancy-scheme reliability over the sampled duration.
    """
    require_positive("safe_velocity", safe_velocity)
    config = config or MonteCarloConfig()
    rng = np.random.default_rng(config.seed)
    reliability = ReliabilityModel(
        failure_rate_per_hour=config.compute_failure_rate_per_hour
    )

    # Structure-of-arrays sampling: every random column drawn at once.
    usable_velocities = sample_usable_velocities(safe_velocity, config, rng)
    capacity_factors = rng.lognormal(
        mean=0.0, sigma=config.battery_capacity_cv, size=config.samples
    )
    survival_uniforms = rng.random(config.samples)

    feasible = usable_velocities > MIN_DISPATCH_VELOCITY
    velocity_infeasible = int(np.count_nonzero(~feasible))
    available_wh = uav.battery.usable_energy_wh * capacity_factors

    completed = 0
    energy_shortfalls = 0
    compute_losses = 0
    times = []
    energies = []

    for index in np.flatnonzero(feasible):
        outcome = fly_mission(
            uav,
            mission,
            safe_velocity=float(usable_velocities[index]),
            enforce_battery=False,
        )
        times.append(outcome.time_s)
        energies.append(outcome.energy_wh)

        if outcome.energy_wh > available_wh[index]:
            energy_shortfalls += 1
            continue

        mission_hours = outcome.time_s / 3600.0
        p_alive = mission_reliability(scheme, reliability, mission_hours)
        if survival_uniforms[index] > p_alive:
            compute_losses += 1
            continue

        completed += 1

    n = config.samples
    return MonteCarloResult(
        samples=n,
        p_complete=completed / n,
        p_energy_shortfall=energy_shortfalls / n,
        p_velocity_infeasible=velocity_infeasible / n,
        p_compute_loss=compute_losses / n,
        mean_time_s=float(np.mean(times)) if times else 0.0,
        mean_energy_wh=float(np.mean(energies)) if energies else 0.0,
    )
