"""Mission traversal: time and energy at the F-1 safe velocity.

A mission is a sequence of legs (waypoint-to-waypoint segments plus
hover dwells).  The UAV cruises each leg at ``min(v_cruise, v_safe)``
with trapezoidal accelerate/decelerate ramps at its ``a_max``; energy
integrates the forward-flight power model plus compute TDP.  This is
the quantitative backing for the paper's Sec. I claim (via MAVBench):
a faster-deciding UAV finishes sooner *and* spends less energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError, InfeasibleDesignError
from ..uav.configuration import UAVConfiguration
from ..units import require_nonnegative, require_positive
from .energy import forward_flight_power_w, system_power_w
from .planner import WaypointGraph


@dataclass(frozen=True)
class Waypoint:
    """One mission stop: fly to (x, y), optionally dwell (hover)."""

    x: float
    y: float
    dwell_s: float = 0.0

    def __post_init__(self) -> None:
        require_nonnegative("dwell_s", self.dwell_s)


@dataclass(frozen=True)
class Mission:
    """A named sequence of waypoints."""

    name: str
    waypoints: Sequence[Waypoint]

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ConfigurationError("a mission needs at least two waypoints")

    @property
    def length_m(self) -> float:
        """Total path length."""
        import math

        return sum(
            math.hypot(b.x - a.x, b.y - a.y)
            for a, b in zip(self.waypoints, self.waypoints[1:])
        )

    @classmethod
    def from_route(
        cls,
        graph: WaypointGraph,
        route: Sequence[str],
        name: str = "route",
        dwell_s: float = 0.0,
    ) -> "Mission":
        """Build a mission from a planned waypoint-graph route."""
        points = [
            Waypoint(x=pos[0], y=pos[1], dwell_s=dwell_s)
            for pos in (graph.position(n) for n in route)
        ]
        return cls(name=name, waypoints=points)


@dataclass(frozen=True)
class LegProfile:
    """Time/energy of one leg's trapezoidal velocity profile."""

    distance_m: float
    cruise_velocity: float
    time_s: float
    energy_wh: float


@dataclass(frozen=True)
class MissionResult:
    """Aggregate mission outcome."""

    mission: Mission
    uav_name: str
    velocity_cap: float
    legs: Sequence[LegProfile]
    hover_time_s: float
    hover_energy_wh: float

    @property
    def time_s(self) -> float:
        return sum(leg.time_s for leg in self.legs) + self.hover_time_s

    @property
    def energy_wh(self) -> float:
        return sum(leg.energy_wh for leg in self.legs) + self.hover_energy_wh

    @property
    def average_velocity(self) -> float:
        """Mission-average ground speed (m/s)."""
        if self.time_s == 0.0:
            return 0.0
        return self.mission.length_m / self.time_s


def _leg_profile(
    uav: UAVConfiguration, distance_m: float, v_cap: float
) -> LegProfile:
    """Trapezoidal (or triangular) profile over one leg."""
    a = uav.max_acceleration
    # Distance needed to reach v_cap and brake back to zero.
    ramp = v_cap**2 / a
    if ramp <= distance_m:
        cruise_d = distance_m - ramp
        time_s = 2.0 * v_cap / a + cruise_d / v_cap
        v_peak = v_cap
    else:
        v_peak = (distance_m * a) ** 0.5
        cruise_d = 0.0
        time_s = 2.0 * v_peak / a
    # Energy: cruise at v_peak for the cruise portion, ramps at ~v/2.
    cruise_power = forward_flight_power_w(
        uav.total_mass_g,
        uav.frame.disk_area_m2,
        v_peak,
        uav.frame.cd_area_m2,
    )
    ramp_power = forward_flight_power_w(
        uav.total_mass_g,
        uav.frame.disk_area_m2,
        v_peak / 2.0,
        uav.frame.cd_area_m2,
    )
    compute_w = uav.compute.tdp_w * uav.compute_redundancy + 1.5
    ramp_time = time_s - (cruise_d / v_peak if v_peak > 0 else 0.0)
    cruise_time = time_s - ramp_time
    energy_wh = (
        (cruise_power + compute_w) * cruise_time
        + (ramp_power + compute_w) * ramp_time
    ) / 3600.0
    return LegProfile(
        distance_m=distance_m,
        cruise_velocity=v_peak,
        time_s=time_s,
        energy_wh=energy_wh,
    )


def fly_mission(
    uav: UAVConfiguration,
    mission: Mission,
    safe_velocity: float,
    v_cruise_desired: Optional[float] = None,
    enforce_battery: bool = True,
) -> MissionResult:
    """Fly ``mission`` capped at the F-1 safe velocity.

    ``safe_velocity`` comes from the UAV's F-1 model (the caller picks
    the operating point); the vehicle never exceeds it.  Raises
    :class:`InfeasibleDesignError` when the battery cannot cover the
    mission and ``enforce_battery`` is set.
    """
    import math

    require_positive("safe_velocity", safe_velocity)
    v_cap = min(safe_velocity, v_cruise_desired or safe_velocity)

    legs: List[LegProfile] = []
    for a, b in zip(mission.waypoints, mission.waypoints[1:]):
        distance = math.hypot(b.x - a.x, b.y - a.y)
        if distance > 0:
            legs.append(_leg_profile(uav, distance, v_cap))

    hover_time = sum(w.dwell_s for w in mission.waypoints)
    hover_energy = system_power_w(uav, velocity=0.0) * hover_time / 3600.0

    result = MissionResult(
        mission=mission,
        uav_name=uav.name,
        velocity_cap=v_cap,
        legs=legs,
        hover_time_s=hover_time,
        hover_energy_wh=hover_energy,
    )
    if enforce_battery and result.energy_wh > uav.battery.usable_energy_wh:
        raise InfeasibleDesignError(
            f"mission '{mission.name}' needs {result.energy_wh:.1f} Wh but "
            f"battery '{uav.battery.name}' provides only "
            f"{uav.battery.usable_energy_wh:.1f} Wh usable"
        )
    return result
