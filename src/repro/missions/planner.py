"""Waypoint graphs and route planning for mission studies.

A :class:`WaypointGraph` is a networkx graph of named 2-D waypoints;
routes are shortest paths by Euclidean distance.  Mission studies use
it to build package-delivery-style routes whose traversal time and
energy depend on the UAV's safe velocity — connecting the F-1 model's
output to mission-level metrics (the MAVBench argument the paper
leans on).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..errors import ConfigurationError

Point = Tuple[float, float]


class WaypointGraph:
    """Named waypoints with distance-weighted edges."""

    def __init__(self) -> None:
        self._graph = nx.Graph()

    def add_waypoint(self, name: str, x: float, y: float) -> None:
        """Register a waypoint at (x, y) meters."""
        if name in self._graph:
            raise ConfigurationError(f"duplicate waypoint {name!r}")
        self._graph.add_node(name, pos=(float(x), float(y)))

    def connect(self, a: str, b: str) -> None:
        """Add a traversable corridor between two waypoints."""
        for node in (a, b):
            if node not in self._graph:
                raise ConfigurationError(f"unknown waypoint {node!r}")
        self._graph.add_edge(a, b, weight=self.distance(a, b))

    def position(self, name: str) -> Point:
        return self._graph.nodes[name]["pos"]

    def distance(self, a: str, b: str) -> float:
        """Euclidean distance between two waypoints (m)."""
        ax, ay = self.position(a)
        bx, by = self.position(b)
        return math.hypot(bx - ax, by - ay)

    def shortest_route(self, start: str, goal: str) -> List[str]:
        """Shortest waypoint sequence from ``start`` to ``goal``."""
        try:
            return nx.shortest_path(
                self._graph, start, goal, weight="weight"
            )
        except nx.NetworkXNoPath:
            raise ConfigurationError(
                f"no route between {start!r} and {goal!r}"
            ) from None

    def route_length_m(self, route: Sequence[str]) -> float:
        """Total length of a waypoint sequence."""
        return sum(
            self.distance(a, b) for a, b in zip(route, route[1:])
        )

    @property
    def waypoints(self) -> Dict[str, Point]:
        return {name: data["pos"] for name, data in self._graph.nodes(data=True)}

    @classmethod
    def grid(
        cls, columns: int, rows: int, spacing_m: float = 50.0
    ) -> "WaypointGraph":
        """A rectangular street-grid of waypoints (urban delivery map)."""
        if columns < 2 or rows < 2:
            raise ConfigurationError("grid needs at least 2x2 waypoints")
        graph = cls()
        for col in range(columns):
            for row in range(rows):
                graph.add_waypoint(
                    f"wp-{col}-{row}", col * spacing_m, row * spacing_m
                )
        for col in range(columns):
            for row in range(rows):
                if col + 1 < columns:
                    graph.connect(f"wp-{col}-{row}", f"wp-{col + 1}-{row}")
                if row + 1 < rows:
                    graph.connect(f"wp-{col}-{row}", f"wp-{col}-{row + 1}")
        return graph
