"""Hover endurance from battery energy and system power (Fig. 2b).

The paper's Fig. 2b relates UAV size class to battery capacity and
endurance (nano: 240 mAh / ~7 min ... mini: 3830 mAh / ~30 min).  The
estimate here derives endurance from first principles — momentum-theory
hover power against usable battery energy — and the experiment module
checks that the derived values land in the paper's bands.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uav.configuration import UAVConfiguration
from ..units import require_nonnegative
from .energy import DEFAULT_AVIONICS_W, system_power_w


@dataclass(frozen=True)
class EnduranceEstimate:
    """Endurance with the power breakdown that produced it."""

    uav_name: str
    battery_wh: float
    usable_wh: float
    hover_power_w: float
    endurance_min: float


def hover_endurance_min(
    uav: UAVConfiguration, avionics_w: float = DEFAULT_AVIONICS_W
) -> EnduranceEstimate:
    """Hovering endurance of a configuration, minutes."""
    require_nonnegative("avionics_w", avionics_w)
    power = system_power_w(uav, velocity=0.0, avionics_w=avionics_w)
    usable = uav.battery.usable_energy_wh
    return EnduranceEstimate(
        uav_name=uav.name,
        battery_wh=uav.battery.energy_wh,
        usable_wh=usable,
        hover_power_w=power,
        endurance_min=usable / power * 60.0,
    )
