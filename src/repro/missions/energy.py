"""Rotorcraft power models (actuator-disk momentum theory).

Hover power is the induced power of the actuator disks divided by a
figure of merit, plus avionics and compute.  Forward flight adds
parasitic drag power and slightly reduces induced power (modeled with
the standard high-speed approximation).  These feed the endurance
table (Fig. 2b) and the mission simulator, quantifying the paper's
claim that a higher safe velocity lowers mission time *and* energy.
"""

from __future__ import annotations

import math

from ..uav.configuration import UAVConfiguration
from ..units import AIR_DENSITY, GRAVITY, require_nonnegative, require_positive

#: Figure of merit: small rotors are aerodynamically poor.
DEFAULT_FIGURE_OF_MERIT = 0.55

#: Electrical efficiency of ESC + motor.
DEFAULT_DRIVE_EFFICIENCY = 0.75

#: Constant avionics draw (radio, FC, sensors), watts.
DEFAULT_AVIONICS_W = 1.5


def hover_power_w(
    total_mass_g: float,
    disk_area_m2: float,
    figure_of_merit: float = DEFAULT_FIGURE_OF_MERIT,
    drive_efficiency: float = DEFAULT_DRIVE_EFFICIENCY,
    air_density: float = AIR_DENSITY,
) -> float:
    """Electrical hover power via momentum theory.

    ``P = T^1.5 / sqrt(2 rho A) / FM / eta`` with ``T`` in newtons.
    """
    require_positive("total_mass_g", total_mass_g)
    require_positive("disk_area_m2", disk_area_m2)
    require_positive("figure_of_merit", figure_of_merit)
    require_positive("drive_efficiency", drive_efficiency)
    thrust_n = total_mass_g / 1000.0 * GRAVITY
    ideal = thrust_n**1.5 / math.sqrt(2.0 * air_density * disk_area_m2)
    return ideal / figure_of_merit / drive_efficiency


def forward_flight_power_w(
    total_mass_g: float,
    disk_area_m2: float,
    velocity: float,
    cd_area_m2: float,
    figure_of_merit: float = DEFAULT_FIGURE_OF_MERIT,
    drive_efficiency: float = DEFAULT_DRIVE_EFFICIENCY,
    air_density: float = AIR_DENSITY,
) -> float:
    """Electrical power in steady forward flight at ``velocity``.

    Induced power shrinks as ``v_h^2 / v`` once translation is fast
    (Glauert's high-speed approximation, blended smoothly), while
    parasitic power grows as ``1/2 rho CdA v^3``.
    """
    require_nonnegative("velocity", velocity)
    hover = hover_power_w(
        total_mass_g,
        disk_area_m2,
        figure_of_merit,
        drive_efficiency,
        air_density,
    )
    if velocity == 0.0:
        return hover
    thrust_n = total_mass_g / 1000.0 * GRAVITY
    # Hover induced velocity at the disk.
    v_h = math.sqrt(thrust_n / (2.0 * air_density * disk_area_m2))
    # Induced-velocity ratio from momentum theory (exact solution).
    mu = velocity / v_h
    vi_ratio = 1.0 / math.sqrt(0.5 * (mu**2 + math.sqrt(mu**4 + 4.0)))
    induced = hover * vi_ratio
    parasitic = (
        0.5 * air_density * cd_area_m2 * velocity**3 / drive_efficiency
    )
    return induced + parasitic


def system_power_w(
    uav: UAVConfiguration,
    velocity: float = 0.0,
    avionics_w: float = DEFAULT_AVIONICS_W,
) -> float:
    """Total electrical power: propulsion + compute TDP + avionics."""
    require_nonnegative("avionics_w", avionics_w)
    propulsion = forward_flight_power_w(
        total_mass_g=uav.total_mass_g,
        disk_area_m2=uav.frame.disk_area_m2,
        velocity=velocity,
        cd_area_m2=uav.frame.cd_area_m2,
    )
    compute = uav.compute.tdp_w * uav.compute_redundancy
    return propulsion + compute + avionics_w
