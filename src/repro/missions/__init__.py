"""Mission-level modeling: power, endurance, waypoint missions."""

from .endurance import EnduranceEstimate, hover_endurance_min
from .energy import (
    forward_flight_power_w,
    hover_power_w,
    system_power_w,
)
from .mission import Mission, MissionResult, Waypoint, fly_mission
from .monte_carlo import (
    MonteCarloConfig,
    MonteCarloResult,
    mission_success_probability,
)
from .planner import WaypointGraph

__all__ = [
    "EnduranceEstimate",
    "hover_endurance_min",
    "forward_flight_power_w",
    "hover_power_w",
    "system_power_w",
    "Mission",
    "MissionResult",
    "Waypoint",
    "fly_mission",
    "MonteCarloConfig",
    "MonteCarloResult",
    "mission_success_probability",
    "WaypointGraph",
]
