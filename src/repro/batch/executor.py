"""Sharded, parallel execution of batch evaluations.

:func:`~repro.batch.engine.evaluate_matrix` is a single vectorized
pass: one process, one allocation the size of the whole grid.  This
module scales that pass out without changing a single bit of the
result:

* :func:`iter_chunks` splits a :class:`~repro.batch.matrix.DesignMatrix`
  *or* a declarative :class:`~repro.study.spec.StudySpec` into
  row-range shards.  Spec shards are never materialized in the parent:
  each worker rebuilds only its ``[start, stop)`` rows by Cartesian
  index arithmetic (:func:`~repro.batch.grid.cartesian_slice` via
  :func:`~repro.study.planner.compile_chunk`), so a 10M-point grid
  needs ``O(chunk_rows)`` memory per worker, not ``O(N)``.
* :class:`ParallelExecutor` fans shards out over
  :mod:`concurrent.futures` workers — ``backend="process"`` (true
  parallelism, fresh per-worker caches), ``"thread"`` (shared cache,
  no pickling) or ``"serial"`` (chunked streaming in-process).
* :func:`evaluate_matrix_sharded` / :func:`evaluate_spec_sharded`
  merge per-shard results back into one
  :class:`~repro.batch.result.BatchResult` with stable global row
  indices (:func:`~repro.batch.result.concat_results`), and
  :func:`top_k_sharded` folds shards into a global top-k as they
  complete (:func:`~repro.batch.result.merge_top_k`), keeping ``O(k)``
  state so fleet-scale winners never require fleet-scale memory.
* :class:`CheckpointStore` persists each completed shard as one JSONL
  record next to a manifest
  (see :func:`repro.io.serialization.shard_manifest_to_dict` for the
  wire format), so an interrupted million-point study resumes from its
  completed shards instead of restarting.

Identical chunks (by content hash) are dispatched once and fanned back
out on join, and every worker process starts with a *fresh*
:data:`~repro.batch.engine.DEFAULT_CACHE` — a forked snapshot of the
parent's cache is cleared by the worker initializer, so cross-spec
state can never leak between runs.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.knee import DEFAULT_KNEE_FRACTION
from ..errors import ConfigurationError, ShardExecutionError
from ..io.serialization import (
    shard_manifest_to_dict,
    shard_record_from_dict,
    shard_record_to_dict,
)
from ..obs.progress import Progress, ProgressCallback
from ..obs.tracer import Tracer, maybe_span
from .engine import DEFAULT_CACHE, clear_default_cache, evaluate_matrix
from .matrix import DesignMatrix
from .result import BatchResult, concat_results, merge_top_k

#: Execution backends a :class:`ParallelExecutor` accepts.
BACKENDS = ("process", "thread", "serial")

#: Hard ceiling on rows per shard (bounds peak memory per worker).
DEFAULT_CHUNK_ROWS = 65536

#: Extra accounting columns study shards carry alongside the result.
EXTRA_COLUMNS = ("total_mass_g", "compute_tdp_w")

_MANIFEST_NAME = "manifest.json"


# ---------------------------------------------------------------------------
# Shards: the unit of work and its result
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One row-range unit of work.

    ``task`` is the picklable worker payload; ``key`` (when set) is a
    content hash used to dispatch identical chunks only once.
    """

    index: int
    start: int
    stop: int
    task: Dict[str, Any]
    key: Optional[str] = None

    def __len__(self) -> int:
        return self.stop - self.start


# eq=False: ndarray fields; identity semantics, like BatchResult.
@dataclass(frozen=True, eq=False)
class ShardResult:
    """One shard's evaluated rows.

    ``local_indices`` is ``None`` for a full shard (rows are exactly
    ``[start, stop)``) or the shard-local row indices of a reduced
    (top-k) shard; :attr:`global_indices` maps either onto the full
    grid.
    """

    index: int
    start: int
    stop: int
    batch: BatchResult
    local_indices: Optional[np.ndarray] = None
    extras: Optional[Dict[str, np.ndarray]] = None
    #: The worker's shipped observability payload (``{"events",
    #: "counters", "elapsed_s"}``) when a traced shard ran in a worker
    #: *process*; ``None`` otherwise — untraced runs, dedupe copies,
    #: and in-process (serial/thread) shards, whose spans land directly
    #: in the parent tracer.  Not part of the checkpoint wire format —
    #: timings of a past run are not needed to resume it.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def global_indices(self) -> np.ndarray:
        if self.local_indices is None:
            return np.arange(self.start, self.stop, dtype=np.intp)
        return self.start + np.asarray(self.local_indices, dtype=np.intp)


def shard_ranges(total_rows: int, chunk_rows: int) -> List[Tuple[int, int]]:
    """The ``[start, stop)`` row ranges ``chunk_rows`` splits a grid into."""
    if chunk_rows < 1:
        raise ConfigurationError(
            f"chunk_rows must be >= 1, got {chunk_rows}"
        )
    if total_rows < 0:
        raise ConfigurationError(
            f"total_rows must be >= 0, got {total_rows}"
        )
    return [
        (start, min(start + chunk_rows, total_rows))
        for start in range(0, max(total_rows, 1), chunk_rows)
    ]


def default_chunk_rows(total_rows: int, n_workers: int) -> int:
    """A chunk size giving each worker ~4 shards, capped for memory.

    The cap (:data:`DEFAULT_CHUNK_ROWS`) bounds per-worker peak memory
    on huge grids; the ~4-shards-per-worker target keeps the pool load
    balanced when shard costs vary.
    """
    target = math.ceil(max(total_rows, 1) / max(1, 4 * n_workers))
    return max(1, min(DEFAULT_CHUNK_ROWS, target))


def _matrix_digest(
    matrix: DesignMatrix, knee_fraction: float, tolerance: float
) -> str:
    """A cross-process-stable content digest of a matrix evaluation.

    Unlike :meth:`DesignMatrix.content_hash` (whose label component
    uses Python's per-process string hashing), labels are digested
    byte-wise here: checkpoint manifests must survive interpreter
    restarts.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(len(matrix).to_bytes(8, "little"))
    for column in matrix.columns():
        digest.update(column.tobytes())
    if matrix.labels is not None:
        for label in matrix.labels:
            digest.update(label.encode("utf-8"))
            digest.update(b"\x00")
    digest.update(repr((knee_fraction, tolerance)).encode("ascii"))
    return digest.hexdigest()


def _spec_digest(spec: Any) -> str:
    """A canonical-JSON digest of a study spec (restart-stable)."""
    return spec.content_digest()


def _reduce_clause(
    k: Optional[int], by: str, descending: bool
) -> Optional[Dict[str, Any]]:
    if k is None:
        return None
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    return {"k": int(k), "by": by, "descending": bool(descending)}


def iter_chunks(
    source: Union[DesignMatrix, "Any"],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    knee_fraction: Optional[float] = None,
    tolerance: float = 0.05,
    reduce: Optional[Dict[str, Any]] = None,
) -> Iterator[Shard]:
    """Stream the row-range shards of a matrix or a study spec.

    For a :class:`DesignMatrix`, each shard's task carries slices of
    the parent's columns (``O(chunk_rows)`` pickled bytes per shard)
    plus a content hash so identical chunks dispatch once.  For a
    :class:`~repro.study.spec.StudySpec`, the task carries only the
    spec and the ``[start, stop)`` range — the worker rebuilds its rows
    by index arithmetic, so the full grid never exists in the parent;
    the spec's own ``knee_fraction``/``tolerance`` apply.

    ``reduce`` (``{"k", "by", "descending"}``) asks each worker to
    return only its shard-local top-k rows, the streaming-reduction
    mode :func:`top_k_sharded` builds on.
    """
    from ..study.spec import StudySpec

    if isinstance(source, DesignMatrix):
        resolved = knee_fraction
        if resolved is None:
            resolved = (
                source.knee_fraction
                if source.knee_fraction is not None
                else DEFAULT_KNEE_FRACTION
            )
        for index, (start, stop) in enumerate(
            shard_ranges(len(source), chunk_rows)
        ):
            columns = {
                name: column[start:stop]
                for name, column in zip(source.column_names, source.columns())
            }
            labels = (
                source.labels[start:stop]
                if source.labels is not None
                else None
            )
            chunk = DesignMatrix.from_arrays(
                **columns, labels=labels, knee_fraction=source.knee_fraction
            )
            yield Shard(
                index=index,
                start=start,
                stop=stop,
                task={
                    "kind": "matrix",
                    "index": index,
                    "start": start,
                    "stop": stop,
                    "columns": {
                        name: getattr(chunk, name)
                        for name in chunk.column_names
                    },
                    "labels": chunk.labels,
                    "matrix_knee_fraction": chunk.knee_fraction,
                    "knee_fraction": resolved,
                    "tolerance": tolerance,
                    "reduce": reduce,
                },
                key=_matrix_digest(chunk, resolved, tolerance),
            )
        return
    if isinstance(source, StudySpec):
        from ..study.planner import study_size

        digest = _spec_digest(source)
        for index, (start, stop) in enumerate(
            shard_ranges(study_size(source), chunk_rows)
        ):
            yield Shard(
                index=index,
                start=start,
                stop=stop,
                task={
                    "kind": "study",
                    "index": index,
                    "spec": source,
                    "start": start,
                    "stop": stop,
                    "knee_fraction": source.knee_fraction,
                    "tolerance": source.tolerance,
                    "reduce": reduce,
                },
                key=f"{digest}:{start}:{stop}:{reduce!r}",
            )
        return
    raise ConfigurationError(
        "iter_chunks takes a DesignMatrix or a StudySpec, got "
        f"{type(source).__name__}"
    )


# ---------------------------------------------------------------------------
# The worker side
# ---------------------------------------------------------------------------
def _init_worker() -> None:
    """Worker-process initializer: start from a fresh default cache.

    A forked worker inherits a snapshot of the parent's
    :data:`~repro.batch.engine.DEFAULT_CACHE` — entries *and*
    hit/miss counters.  Content addressing makes inherited hits
    technically correct, but a snapshot pins the parent's memory in
    every worker and makes cache statistics meaningless, so workers
    always begin empty.
    """
    clear_default_cache()


def _evaluate_shard(task: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate one shard task (runs in a worker, or inline).

    Any failure re-raises as a
    :class:`~repro.errors.ShardExecutionError` carrying the shard
    index and ``[start, stop)`` row range (the original exception
    stays attached as ``__cause__``): a bare worker traceback from a
    process pool says nothing about *which* rows died, and re-running
    just that range is the first debugging step.
    """
    try:
        return _evaluate_shard_task(task)
    except ShardExecutionError:
        raise
    except Exception as exc:
        index = task.get("index")
        start, stop = task.get("start"), task.get("stop")
        where = (
            f" (rows [{start}, {stop}))"
            if start is not None and stop is not None
            else ""
        )
        raise ShardExecutionError(
            f"shard {index}{where} failed: "
            f"{type(exc).__name__}: {exc}",
            shard_index=index,
            start=start,
            stop=stop,
        ) from exc


def _evaluate_shard_task(task: Dict[str, Any]) -> Dict[str, Any]:
    # In-process workers (serial/thread) get a ``tracer`` view of the
    # parent's tracer and record directly — same process, same epoch.
    # Process workers only see ``trace``: they build their own tracer
    # and ship its spans home as wire dicts for the parent to absorb.
    tracer = task.get("tracer")
    local = None
    if tracer is None and task.get("trace"):
        tracer = local = Tracer()
    shard_started = perf_counter() if tracer is not None else 0.0
    with maybe_span(tracer, "shard.compile"):
        if task["kind"] == "matrix":
            matrix = DesignMatrix.from_arrays(
                **task["columns"],
                labels=task["labels"],
                knee_fraction=task["matrix_knee_fraction"],
            )
            extras: Dict[str, np.ndarray] = {}
        else:
            from ..study.planner import compile_chunk

            plan = compile_chunk(task["spec"], task["start"], task["stop"])
            matrix = plan.matrix
            extras = {
                "total_mass_g": plan.total_mass_g,
                "compute_tdp_w": plan.compute_tdp_w,
            }
    # In-process (serial) streaming exists to bound memory by the chunk
    # size; memoizing every chunk in the shared default cache would
    # quietly pin the whole grid again, so streaming shards opt out.
    # Worker processes keep the (fresh, bounded) per-worker cache.
    with maybe_span(tracer, "shard.evaluate", rows=len(matrix)):
        result = evaluate_matrix(
            matrix,
            knee_fraction=task["knee_fraction"],
            tolerance=task["tolerance"],
            cache=None if task.get("streaming") else DEFAULT_CACHE,
            tracer=tracer,
        )
    local_indices: Optional[np.ndarray] = None
    reduce = task.get("reduce")
    if reduce is not None:
        with maybe_span(tracer, "shard.reduce", k=reduce["k"]):
            local_indices = result.top_k_indices(
                reduce["k"], reduce["by"], reduce["descending"]
            )
            result = result.take(local_indices)
            extras = {
                name: column[local_indices]
                for name, column in extras.items()
            }
    outcome: Dict[str, Any] = {
        "batch": result,
        "local_indices": local_indices,
        "extras": extras,
    }
    if tracer is not None:
        elapsed = perf_counter() - shard_started
        if local is None:
            outcome["elapsed_s"] = elapsed
        else:
            outcome["telemetry"] = {
                "events": local.to_events(),
                "counters": local.counters_snapshot(),
                "elapsed_s": elapsed,
            }
    return outcome


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------
class ParallelExecutor:
    """Fan shards out over serial, thread, or process workers.

    The pool is created lazily on first use and reused across calls
    (warm pools amortize process start-up over many studies); call
    :meth:`close` — or use the instance as a context manager — to shut
    it down.  ``backend="serial"`` evaluates shards inline, one at a
    time, which is the chunked *streaming* mode: peak memory is one
    chunk, not one grid.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        backend: str = "process",
    ) -> None:
        if backend not in BACKENDS:
            known = ", ".join(BACKENDS)
            raise ConfigurationError(
                f"unknown executor backend {backend!r}; backends: {known}"
            )
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.n_workers = int(n_workers)
        self.backend = backend
        self._pool: Optional[Any] = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (the executor may be reused after)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> Any:
        if self._pool is None:
            if self.backend == "process":
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers, initializer=_init_worker
                )
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers
                )
        return self._pool

    def warm_up(self) -> None:
        """Spin the worker pool up eagerly (e.g. before benchmarking)."""
        if self.backend == "serial":
            return
        pool = self._ensure_pool()
        wait([pool.submit(os.getpid) for _ in range(self.n_workers)])

    def map_shards(
        self,
        shards: Iterable[Shard],
        tracer: Optional[Tracer] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> Iterator[ShardResult]:
        """Evaluate shards, yielding results as they complete.

        Identical shards (same content ``key``) are evaluated once and
        fanned back out to every duplicate.  Completion order is
        arbitrary for parallel backends; consumers that need global
        order collect by :attr:`ShardResult.index`.

        ``tracer`` opts workers into span recording: each unique shard
        contributes a parent-side ``shard.task`` span (dispatch →
        result receipt, with ``queue_wait_s``/``compute_s``
        attributes) and its worker-side spans
        (``shard.compile``/``shard.evaluate``/…) under
        ``tid = shard_index + 1``, plus ``shards.completed``/
        ``shards.dedupe_hits`` counters, worker cache counters, and a
        running ``rows_per_s`` gauge.  In-process workers (serial and
        thread backends) record those spans directly into ``tracer``
        via :meth:`~repro.obs.tracer.Tracer.track`; process workers
        ship them home as wire dicts (rebased on absorption, and also
        exposed as :attr:`ShardResult.telemetry`).
        ``progress`` is called with a
        :class:`~repro.obs.progress.Progress` snapshot after every
        yielded result (dedupe copies included) — the hook a progress
        bar or a serving layer's progress endpoint attaches to.
        """
        shard_list = list(shards)
        primaries: Dict[str, Shard] = {}
        followers: Dict[int, List[Shard]] = {}
        unique: List[Shard] = []
        for shard in shard_list:
            first = primaries.get(shard.key) if shard.key else None
            if first is None:
                if shard.key:
                    primaries[shard.key] = shard
                unique.append(shard)
                followers[shard.index] = []
            else:
                followers[first.index].append(shard)

        total = len(shard_list)
        rows_total = sum(len(s) for s in shard_list)
        completed = 0
        rows_done = 0
        started = perf_counter()
        overrides: Dict[str, Any] = (
            {"trace": True} if tracer is not None else {}
        )
        # Serial and thread backends share the parent's DEFAULT_CACHE:
        # memoizing every chunk there would pin (up to) the whole grid
        # in the process-wide cache against the caller's wishes.  Only
        # process workers — with their own fresh, bounded caches —
        # memoize chunks.
        in_process = self.backend in ("serial", "thread")
        if in_process:
            overrides["streaming"] = True

        def worker_task(shard: Shard) -> Dict[str, Any]:
            task = {**shard.task, **overrides}
            if tracer is not None and in_process:
                # Same process, same epoch: record spans directly onto
                # the shard's track instead of shipping wire dicts.
                task["tracer"] = tracer.track(shard.index + 1)
            return task

        # Metric handles are stable objects; resolve them once instead
        # of taking the tracer's registry lock on every shard.
        rate_gauge = (
            tracer.gauge("rows_per_s") if tracer is not None else None
        )
        completed_counter = (
            tracer.counter("shards.completed") if tracer is not None else None
        )

        def advance(result: ShardResult) -> ShardResult:
            nonlocal completed, rows_done
            completed += 1
            rows_done += result.stop - result.start
            elapsed = perf_counter() - started
            if rate_gauge is not None and elapsed > 0:
                rate_gauge.set(rows_done / elapsed)
            if progress is not None:
                progress(
                    Progress(
                        done=completed,
                        total=total,
                        rows_done=rows_done,
                        rows_total=rows_total,
                        elapsed_s=elapsed,
                    )
                )
            return result

        def note_unique(
            shard: Shard,
            outcome: Dict[str, Any],
            dispatch_clock: float,
            finish_clock: float,
        ) -> None:
            """Record the parent-side view of one evaluated shard."""
            if tracer is None:
                return
            telemetry = outcome.get("telemetry")
            worker_s = (
                outcome.get("elapsed_s")
                if telemetry is None
                else telemetry.get("elapsed_s")
            )
            attrs: Dict[str, Any] = {
                "shard": shard.index, "rows": len(shard)
            }
            if worker_s is not None:
                attrs["compute_s"] = round(worker_s, 6)
                attrs["queue_wait_s"] = round(
                    max(0.0, finish_clock - dispatch_clock - worker_s), 6
                )
            tracer.record_clock(
                "shard.task", dispatch_clock, finish_clock, **attrs
            )
            if telemetry:  # process workers: merge the wire payload
                if telemetry.get("events"):
                    tracer.absorb(
                        telemetry["events"],
                        tid=shard.index + 1,
                        end_clock=finish_clock,
                        shard=shard.index,
                    )
                if telemetry.get("counters"):
                    tracer.merge_counters(telemetry["counters"])
            completed_counter.add()

        def fan_out(
            shard: Shard, outcome: Dict[str, Any]
        ) -> Iterator[ShardResult]:
            for target in (shard, *followers[shard.index]):
                if target is not shard and tracer is not None:
                    tracer.counter("shards.dedupe_hits").add()
                yield advance(
                    ShardResult(
                        index=target.index,
                        start=target.start,
                        stop=target.stop,
                        batch=outcome["batch"],
                        local_indices=outcome["local_indices"],
                        extras=outcome["extras"],
                        telemetry=(
                            outcome.get("telemetry")
                            if target is shard
                            else None
                        ),
                    )
                )

        if self.backend == "serial":
            for shard in unique:
                dispatched = perf_counter()
                outcome = _evaluate_shard(worker_task(shard))
                note_unique(shard, outcome, dispatched, perf_counter())
                yield from fan_out(shard, outcome)
            return
        pool = self._ensure_pool()
        future_to_shard: Dict[Future, Shard] = {}
        dispatch_clock: Dict[Future, float] = {}
        for shard in unique:
            future = pool.submit(_evaluate_shard, worker_task(shard))
            future_to_shard[future] = shard
            dispatch_clock[future] = perf_counter()
        pending = set(future_to_shard)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                shard = future_to_shard[future]
                outcome = future.result()
                note_unique(
                    shard, outcome, dispatch_clock[future], perf_counter()
                )
                yield from fan_out(shard, outcome)


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardManifest:
    """The identity of one sharded run, pinned to its checkpoint dir.

    Resume only reuses shard files whose manifest matches the incoming
    run field-for-field — same source digest, chunking and evaluation
    contract — so a checkpoint directory can never silently feed rows
    from a different study.  Serialized by
    :func:`repro.io.serialization.shard_manifest_to_dict`.
    """

    kind: str  # "study" | "matrix"
    digest: str
    total_rows: int
    chunk_rows: int
    n_shards: int
    knee_fraction: Optional[float]
    tolerance: float
    reduce: Optional[Dict[str, Any]] = None


class CheckpointStore:
    """One JSONL record per completed shard, plus a pinning manifest.

    Layout: ``<dir>/manifest.json`` and ``<dir>/shard-<index>.jsonl``
    (each a single JSON line; a record is only visible after an atomic
    rename, so an interrupt mid-write never corrupts a visible shard).
    Unreadable shard files are skipped — their rows are simply
    recomputed — while a missing or mismatched manifest is a hard
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(
        self, directory: Union[str, Path], manifest: ShardManifest
    ) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.skipped: List[str] = []

    # -- construction --------------------------------------------------
    @staticmethod
    def peek_manifest(directory: Union[str, Path]) -> Optional[ShardManifest]:
        """The manifest already in ``directory``, if a readable one exists."""
        from ..io.serialization import shard_manifest_from_dict

        path = Path(directory) / _MANIFEST_NAME
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"checkpoint manifest {path} is unreadable: {exc}"
            ) from exc
        return shard_manifest_from_dict(data)

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        manifest: ShardManifest,
        must_exist: bool = False,
    ) -> "CheckpointStore":
        """Bind a checkpoint directory to this run's manifest.

        A fresh directory is created and stamped; an existing one must
        match the incoming manifest exactly.  ``must_exist=True`` (the
        ``--resume`` contract) additionally rejects a directory without
        a manifest instead of silently starting over.
        """
        directory = Path(directory)
        existing = cls.peek_manifest(directory)
        if existing is None:
            if must_exist:
                raise ConfigurationError(
                    f"cannot resume: no checkpoint manifest at "
                    f"{directory / _MANIFEST_NAME}"
                )
            directory.mkdir(parents=True, exist_ok=True)
            _atomic_write(
                directory / _MANIFEST_NAME,
                json.dumps(shard_manifest_to_dict(manifest)) + "\n",
            )
        elif existing != manifest:
            mismatched = [
                f"{name} (checkpoint has {getattr(existing, name)!r}, "
                f"this run has {getattr(manifest, name)!r})"
                for name in manifest.__dataclass_fields__
                if getattr(existing, name) != getattr(manifest, name)
            ]
            raise ConfigurationError(
                f"checkpoint directory {directory} was written by a "
                f"different run: manifest field(s) do not match: "
                f"{'; '.join(mismatched)} "
                "(pass a fresh directory, or re-run with the original "
                "spec and chunking)"
            )
        return cls(directory, manifest)

    # -- shard records -------------------------------------------------
    def shard_path(self, index: int) -> Path:
        return self.directory / f"shard-{index:06d}.jsonl"

    def write(self, result: ShardResult) -> None:
        """Persist one completed shard atomically (write + rename)."""
        record = json.dumps(shard_record_to_dict(result))
        _atomic_write(self.shard_path(result.index), record + "\n")

    def load_completed(self) -> Dict[int, ShardResult]:
        """Every reusable shard record, keyed by shard index.

        Records that fail to parse or validate (a partial write from a
        hard kill predating the atomic rename, manual edits) are noted
        in :attr:`skipped` and recomputed rather than trusted.
        """
        completed: Dict[int, ShardResult] = {}
        for path in sorted(self.directory.glob("shard-*.jsonl")):
            result = self._read_record(path)
            if result is not None:
                completed[result.index] = result
        return completed

    def load_shard(self, index: int) -> Optional[ShardResult]:
        """The record for one shard, if a valid one is on disk.

        Same validation contract as :meth:`load_completed`, scoped to a
        single index — the distributed executor polls with this to pick
        up shards finished by *other* workers without re-reading the
        whole directory.  An invalid or misfiled record reads as
        "absent" (and is noted in :attr:`skipped`), so a torn record is
        recomputed, never trusted.
        """
        path = self.shard_path(index)
        if not path.exists():
            return None
        result = self._read_record(path)
        if result is not None and result.index != index:
            self.skipped.append(
                f"{path.name}: record index {result.index} does not match "
                f"file name"
            )
            return None
        return result

    def _read_record(self, path: Path) -> Optional[ShardResult]:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            result = shard_record_from_dict(data)
            # The manifest's uniform chunking fully determines every
            # shard's row range, so a record whose range disagrees
            # with its index (a hand-edited or misfiled record)
            # would silently misplace rows if trusted.
            start = result.index * self.manifest.chunk_rows
            stop = min(
                start + self.manifest.chunk_rows,
                self.manifest.total_rows,
            )
            if not (
                0 <= result.index < self.manifest.n_shards
                and (result.start, result.stop) == (start, stop)
            ):
                raise ConfigurationError(
                    f"row range [{result.start}, {result.stop}) does "
                    f"not match shard {result.index} of the manifest "
                    f"chunking ([{start}, {stop}))"
                )
        except (OSError, json.JSONDecodeError, ConfigurationError) as exc:
            self.skipped.append(f"{path.name}: {exc}")
            return None
        return result


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Drivers: shard -> evaluate -> merge
# ---------------------------------------------------------------------------
def _stream_results(
    shards: Sequence[Shard],
    executor: Optional[ParallelExecutor],
    checkpoint: Optional[CheckpointStore],
    tracer: Optional[Tracer] = None,
    progress: Optional[ProgressCallback] = None,
) -> Iterator[ShardResult]:
    """Yield shard results (checkpointed first, then freshly computed).

    Progress accounting lives here, not in ``map_shards``, so shards
    restored from a checkpoint count toward the same done/total a
    resumed run reports; checkpoint persistence is timed as
    ``checkpoint.write`` spans.
    """
    completed: Dict[int, ShardResult] = (
        checkpoint.load_completed() if checkpoint is not None else {}
    )
    total = len(shards)
    rows_total = sum(len(s) for s in shards)
    done = 0
    rows_done = 0
    started = perf_counter()

    def advance(result: ShardResult) -> ShardResult:
        nonlocal done, rows_done
        done += 1
        rows_done += result.stop - result.start
        if progress is not None:
            progress(
                Progress(
                    done=done,
                    total=total,
                    rows_done=rows_done,
                    rows_total=rows_total,
                    elapsed_s=perf_counter() - started,
                )
            )
        return result

    for index in sorted(completed):
        if tracer is not None:
            tracer.counter("shards.resumed").add()
        yield advance(completed[index])
    remaining = [s for s in shards if s.index not in completed]
    if not remaining:
        return
    own = executor is None
    executor = executor or ParallelExecutor(backend="serial")
    try:
        for result in executor.map_shards(remaining, tracer=tracer):
            if checkpoint is not None:
                write_started = perf_counter()
                checkpoint.write(result)
                if tracer is not None:
                    tracer.record_clock(
                        "checkpoint.write",
                        write_started,
                        perf_counter(),
                        shard=result.index,
                    )
                    tracer.counter("checkpoint.writes").add()
            yield advance(result)
    finally:
        if own:
            executor.close()


def _collect_ordered(
    shards: Sequence[Shard],
    executor: Optional[ParallelExecutor],
    checkpoint: Optional[CheckpointStore],
    tracer: Optional[Tracer] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[ShardResult]:
    results = {
        r.index: r
        for r in _stream_results(
            shards, executor, checkpoint, tracer=tracer, progress=progress
        )
    }
    missing = [s.index for s in shards if s.index not in results]
    if missing:  # pragma: no cover - internal invariant
        raise ConfigurationError(
            f"shard(s) {missing} produced no result"
        )
    return [results[s.index] for s in shards]


def _open_checkpoint(
    checkpoint_dir: Optional[Union[str, Path]],
    resume: bool,
    kind: str,
    digest: str,
    total_rows: int,
    chunk_rows: Optional[int],
    n_workers: int,
    knee_fraction: Optional[float],
    tolerance: float,
    reduce: Optional[Dict[str, Any]],
) -> Tuple[Optional[CheckpointStore], int]:
    """Resolve the chunk size and bind the checkpoint dir, if any.

    On resume, an unspecified ``chunk_rows`` adopts the manifest's, so
    ``--resume <dir>`` picks up exactly where the original invocation
    left off even if the worker count changed.
    """
    if resume and checkpoint_dir is None:
        raise ConfigurationError("resume requires a checkpoint directory")
    if checkpoint_dir is not None and chunk_rows is None:
        existing = CheckpointStore.peek_manifest(checkpoint_dir)
        if existing is not None:
            chunk_rows = existing.chunk_rows
    if chunk_rows is None:
        chunk_rows = default_chunk_rows(total_rows, n_workers)
    elif chunk_rows < 1:
        raise ConfigurationError(
            f"chunk_rows must be >= 1, got {chunk_rows}"
        )
    if checkpoint_dir is None:
        return None, chunk_rows
    manifest = ShardManifest(
        kind=kind,
        digest=digest,
        total_rows=total_rows,
        chunk_rows=chunk_rows,
        n_shards=len(shard_ranges(total_rows, chunk_rows)),
        knee_fraction=knee_fraction,
        tolerance=tolerance,
        reduce=reduce,
    )
    store = CheckpointStore.open(
        checkpoint_dir, manifest, must_exist=resume
    )
    return store, chunk_rows


def evaluate_matrix_sharded(
    matrix: DesignMatrix,
    knee_fraction: Optional[float] = None,
    tolerance: float = 0.05,
    executor: Optional[ParallelExecutor] = None,
    chunk_rows: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    tracer: Optional[Tracer] = None,
    progress: Optional[ProgressCallback] = None,
) -> BatchResult:
    """Sharded :func:`~repro.batch.engine.evaluate_matrix`.

    Bitwise identical to the one-pass engine (every kernel is
    elementwise, so chunk boundaries cannot change a single double).
    Prefer calling ``evaluate_matrix(..., executor=...)``, which also
    consults the result cache.  ``tracer``/``progress`` opt into
    per-shard spans and completion callbacks (see
    :meth:`ParallelExecutor.map_shards`).
    """
    if knee_fraction is None:
        knee_fraction = (
            matrix.knee_fraction
            if matrix.knee_fraction is not None
            else DEFAULT_KNEE_FRACTION
        )
    n_workers = executor.n_workers if executor is not None else 1
    checkpoint, chunk_rows = _open_checkpoint(
        checkpoint_dir,
        resume,
        kind="matrix",
        digest=_matrix_digest(matrix, knee_fraction, tolerance),
        total_rows=len(matrix),
        chunk_rows=chunk_rows,
        n_workers=n_workers,
        knee_fraction=knee_fraction,
        tolerance=tolerance,
        reduce=None,
    )
    shards = list(
        iter_chunks(
            matrix,
            chunk_rows=chunk_rows,
            knee_fraction=knee_fraction,
            tolerance=tolerance,
        )
    )
    ordered = _collect_ordered(
        shards, executor, checkpoint, tracer=tracer, progress=progress
    )
    with maybe_span(tracer, "study.merge", shards=len(ordered)):
        # Reuse the caller's matrix rather than reassembling a second
        # full-size copy from the chunk matrices.
        return concat_results([r.batch for r in ordered], matrix=matrix)


def evaluate_spec_sharded(
    spec: Any,
    executor: Optional[ParallelExecutor] = None,
    chunk_rows: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    tracer: Optional[Tracer] = None,
    progress: Optional[ProgressCallback] = None,
) -> Tuple[BatchResult, Dict[str, np.ndarray]]:
    """Evaluate a :class:`~repro.study.spec.StudySpec` shard by shard.

    Workers rebuild only their own rows (Cartesian index arithmetic),
    evaluate them, and ship the result columns back; the merged batch
    plus the study's accounting columns (:data:`EXTRA_COLUMNS`) come
    back exactly as :func:`~repro.study.planner.compile_spec` +
    ``evaluate_matrix`` would produce them in one pass.
    """
    from ..study.planner import study_size
    from ..study.spec import StudySpec

    if not isinstance(spec, StudySpec):
        raise ConfigurationError(
            f"evaluate_spec_sharded takes a StudySpec, got "
            f"{type(spec).__name__}"
        )
    n_workers = executor.n_workers if executor is not None else 1
    with maybe_span(tracer, "study.compile") as compile_span:
        total_rows = study_size(spec)
        checkpoint, chunk_rows = _open_checkpoint(
            checkpoint_dir,
            resume,
            kind="study",
            digest=_spec_digest(spec),
            total_rows=total_rows,
            chunk_rows=chunk_rows,
            n_workers=n_workers,
            knee_fraction=spec.knee_fraction,
            tolerance=spec.tolerance,
            reduce=None,
        )
        shards = list(iter_chunks(spec, chunk_rows=chunk_rows))
        compile_span.set(rows=total_rows, shards=len(shards))
    ordered = _collect_ordered(
        shards, executor, checkpoint, tracer=tracer, progress=progress
    )
    with maybe_span(tracer, "study.merge", shards=len(ordered)):
        batch = concat_results([r.batch for r in ordered])
        extras = {
            name: np.concatenate([r.extras[name] for r in ordered])
            for name in EXTRA_COLUMNS
        }
    return batch, extras


def top_k_sharded(
    source: Union[DesignMatrix, Any],
    k: int,
    by: str = "safe_velocity",
    descending: bool = True,
    knee_fraction: Optional[float] = None,
    tolerance: float = 0.05,
    executor: Optional[ParallelExecutor] = None,
    chunk_rows: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    tracer: Optional[Tracer] = None,
    progress: Optional[ProgressCallback] = None,
) -> Tuple[np.ndarray, BatchResult]:
    """The global top-k of a grid, streamed shard by shard.

    Each worker returns only its shard-local winners, and completed
    shards fold into a running candidate set of at most ``k`` rows
    (:func:`~repro.batch.result.merge_top_k`), so peak memory is one
    chunk plus ``O(k)`` — never the full grid — and per-shard IPC is
    ``O(k)`` instead of ``O(chunk_rows)``.  Returns
    ``(global_row_indices, result)``, identical to evaluating the full
    grid and calling ``top_k(k, by, descending)``.
    """
    from ..study.spec import StudySpec

    reduce = _reduce_clause(k, by, descending)
    if isinstance(source, DesignMatrix):
        if knee_fraction is None:
            knee_fraction = (
                source.knee_fraction
                if source.knee_fraction is not None
                else DEFAULT_KNEE_FRACTION
            )
        kind, digest = "matrix", _matrix_digest(
            source, knee_fraction, tolerance
        )
        total = len(source)
    elif isinstance(source, StudySpec):
        from ..study.planner import study_size

        kind, digest = "study", _spec_digest(source)
        total = study_size(source)
        knee_fraction = source.knee_fraction
        tolerance = source.tolerance
    else:
        raise ConfigurationError(
            "top_k_sharded takes a DesignMatrix or a StudySpec, got "
            f"{type(source).__name__}"
        )
    n_workers = executor.n_workers if executor is not None else 1
    checkpoint, chunk_rows = _open_checkpoint(
        checkpoint_dir,
        resume,
        kind=kind,
        digest=digest,
        total_rows=total,
        chunk_rows=chunk_rows,
        n_workers=n_workers,
        knee_fraction=knee_fraction,
        tolerance=tolerance,
        reduce=reduce,
    )
    shards = iter_chunks(
        source,
        chunk_rows=chunk_rows,
        knee_fraction=knee_fraction,
        tolerance=tolerance,
        reduce=reduce,
    )
    running: Optional[Tuple[np.ndarray, BatchResult]] = None
    for result in _stream_results(
        list(shards), executor, checkpoint, tracer=tracer, progress=progress
    ):
        candidate = (result.global_indices, result.batch)
        parts = [candidate] if running is None else [running, candidate]
        with maybe_span(tracer, "study.merge", k=k, shard=result.index):
            running = merge_top_k(parts, k, by=by, descending=descending)
    assert running is not None  # shard_ranges yields >= 1 range
    return running
