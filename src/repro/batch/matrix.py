"""The structure-of-arrays design matrix feeding the batch kernels.

A :class:`DesignMatrix` holds N design points as five float64 columns —
sensing range, maximum acceleration and the three pipeline stage rates
— plus optional per-row labels.  Columns are validated once at
construction (finite, strictly positive, equal length) so the kernels
can skip per-element checks, and are frozen read-only so the
content hash that keys the result cache stays trustworthy.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.model import F1Model
from ..core.throughput import DEFAULT_CONTROL_RATE_HZ
from ..errors import ConfigurationError
from ..units import require_fraction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dse.space import Candidate

ArrayLike = Union[float, Sequence[float], np.ndarray]

_COLUMN_NAMES = (
    "sensing_range_m",
    "a_max",
    "f_sensor_hz",
    "f_compute_hz",
    "f_control_hz",
)


def _as_column(name: str, values: ArrayLike) -> np.ndarray:
    column = np.atleast_1d(np.ascontiguousarray(values, dtype=np.float64))
    if column.ndim != 1:
        raise ConfigurationError(
            f"{name} must be a scalar or 1-D sequence, got shape "
            f"{column.shape}"
        )
    return column


# eq=False: dataclass-generated __eq__/__hash__ choke on ndarray fields
# (ambiguous truth value / unhashable); identity semantics apply instead.
@dataclass(frozen=True, eq=False)
class DesignMatrix:
    """N design points, one NumPy column per F-1 parameter.

    Matrices compare by identity; use :meth:`content_hash` to test two
    matrices for equal content.

    Columns may be passed as scalars or 1-D sequences; scalars (and
    length-1 columns) broadcast against the longest column.  Every
    entry must be finite and strictly positive — the same contract the
    scalar :class:`~repro.core.model.F1Model` enforces per point.

    Zero-row matrices are legal: they arise naturally from empty
    :meth:`~repro.batch.result.BatchResult.where` /:meth:`take`
    selections and evaluate to empty results.  Only the named
    constructors (:meth:`from_models`, :meth:`from_candidates`) insist
    on at least one row, since an empty *input collection* there is
    almost certainly a caller bug.
    """

    sensing_range_m: np.ndarray
    a_max: np.ndarray
    f_sensor_hz: np.ndarray
    f_compute_hz: np.ndarray
    f_control_hz: np.ndarray
    labels: Optional[Tuple[str, ...]] = None
    #: Fraction-of-roof knee rule these rows were authored under, when
    #: known (e.g. :meth:`from_models`); the engine uses it unless the
    #: caller passes an explicit ``knee_fraction``.
    knee_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.knee_fraction is not None:
            require_fraction("knee_fraction", self.knee_fraction)
        columns = {
            name: _as_column(name, getattr(self, name))
            for name in _COLUMN_NAMES
        }
        try:
            broadcast = np.broadcast_arrays(*columns.values())
        except ValueError as exc:
            shapes = {n: c.shape for n, c in columns.items()}
            raise ConfigurationError(
                f"column lengths are incompatible: {shapes}"
            ) from exc
        for name, column in zip(_COLUMN_NAMES, broadcast):
            # Own a fresh contiguous copy: broadcast views may alias the
            # caller's arrays, which must not be frozen behind their back.
            column = np.array(column, dtype=np.float64, copy=True)
            if not np.all(np.isfinite(column)):
                raise ConfigurationError(f"{name} must be finite")
            if np.any(column <= 0.0):
                raise ConfigurationError(f"{name} must be > 0 everywhere")
            column.flags.writeable = False
            object.__setattr__(self, name, column)
        if self.labels is not None:
            labels = tuple(str(label) for label in self.labels)
            if len(labels) != len(self):
                raise ConfigurationError(
                    f"{len(labels)} labels for {len(self)} rows"
                )
            object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        sensing_range_m: ArrayLike,
        a_max: ArrayLike,
        f_sensor_hz: ArrayLike,
        f_compute_hz: ArrayLike,
        f_control_hz: ArrayLike = DEFAULT_CONTROL_RATE_HZ,
        labels: Optional[Sequence[str]] = None,
        knee_fraction: Optional[float] = None,
    ) -> "DesignMatrix":
        """Build a matrix from columns (scalars broadcast)."""
        return cls(
            sensing_range_m=sensing_range_m,  # type: ignore[arg-type]
            a_max=a_max,  # type: ignore[arg-type]
            f_sensor_hz=f_sensor_hz,  # type: ignore[arg-type]
            f_compute_hz=f_compute_hz,  # type: ignore[arg-type]
            f_control_hz=f_control_hz,  # type: ignore[arg-type]
            labels=tuple(labels) if labels is not None else None,
            knee_fraction=knee_fraction,
        )

    @classmethod
    def from_models(
        cls,
        models: Iterable[F1Model],
        labels: Optional[Sequence[str]] = None,
    ) -> "DesignMatrix":
        """Columnize an iterable of scalar F-1 models.

        The batch engine only implements the closed-form
        fraction-of-roof knee rule, so models using any other
        :class:`~repro.core.knee.KneeStrategy` — or mixing different
        fractions — are rejected rather than silently re-evaluated
        under a different knee.  The models' (uniform) fraction is
        recorded on the matrix and honored by ``evaluate_matrix``.
        """
        from ..core.knee import FractionOfRoofKnee

        rows = []
        fractions = set()
        for m in models:
            if not isinstance(m.knee_strategy, FractionOfRoofKnee):
                raise ConfigurationError(
                    "the batch engine only supports FractionOfRoofKnee; "
                    f"got {type(m.knee_strategy).__name__}"
                )
            fractions.add(m.knee_strategy.fraction)
            rows.append(
                (
                    m.sensing_range_m,
                    m.a_max,
                    m.pipeline.f_sensor_hz,
                    m.pipeline.f_compute_hz,
                    m.pipeline.f_control_hz,
                )
            )
        if not rows:
            raise ConfigurationError("a design matrix needs at least one row")
        if len(fractions) > 1:
            raise ConfigurationError(
                "models mix knee fractions "
                f"{sorted(fractions)}; one matrix takes one knee rule"
            )
        columns = np.asarray(rows, dtype=np.float64).T
        return cls.from_arrays(
            *columns, labels=labels, knee_fraction=fractions.pop()
        )

    @classmethod
    def from_candidates(
        cls, candidates: Iterable["Candidate"]
    ) -> "DesignMatrix":
        """Columnize DSE candidates, labelled ``uav+compute+algorithm``."""
        rows = []
        labels = []
        for c in candidates:
            rows.append(
                (
                    c.uav.sensor.range_m,
                    c.uav.max_acceleration,
                    c.uav.sensor.framerate_hz,
                    c.f_compute_hz,
                    c.uav.flight_controller.loop_rate_hz,
                )
            )
            labels.append(f"{c.uav_name}+{c.compute_name}+{c.algorithm_name}")
        if not rows:
            raise ConfigurationError("a design matrix needs at least one row")
        columns = np.asarray(rows, dtype=np.float64).T
        return cls.from_arrays(*columns, labels=labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.sensing_range_m.size)

    #: CPython's per-str object overhead (ASCII), used to estimate
    #: label memory without a Python-level loop over every string.
    _STR_OVERHEAD_BYTES = 49

    @cached_property
    def nbytes(self) -> int:
        """Memory pinned by the columns and any labels (bytes).

        Label memory is an estimate (byte length plus the CPython
        object overhead); computed once per (immutable) matrix.
        """
        total = sum(column.nbytes for column in self.columns())
        if self.labels is not None:
            total += sum(map(len, self.labels))
            total += len(self.labels) * self._STR_OVERHEAD_BYTES
        return total

    @property
    def column_names(self) -> Tuple[str, ...]:
        return _COLUMN_NAMES

    def columns(self) -> Tuple[np.ndarray, ...]:
        """The five parameter columns in canonical order."""
        return tuple(getattr(self, name) for name in _COLUMN_NAMES)

    def label_at(self, index: int) -> str:
        """The row's label, or a positional placeholder."""
        if self.labels is not None:
            return self.labels[index]
        return f"#{index}"

    def model_at(self, index: int) -> F1Model:
        """The scalar :class:`F1Model` of one row (for cross-checks)."""
        return F1Model.from_components(
            sensing_range_m=float(self.sensing_range_m[index]),
            a_max=float(self.a_max[index]),
            f_sensor_hz=float(self.f_sensor_hz[index]),
            f_compute_hz=float(self.f_compute_hz[index]),
            f_control_hz=float(self.f_control_hz[index]),
        )

    @cached_property
    def _content_hash(self) -> str:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(len(self).to_bytes(8, "little"))
        for column in self.columns():
            digest.update(column.tobytes())
        if self.labels is not None:
            # The label component uses the C-level tuple hash: byte-wise
            # digesting 100k label strings costs ~5x a full re-evaluation,
            # defeating the cache this digest exists to serve.
            digest.update(
                hash(self.labels).to_bytes(8, "little", signed=True)
            )
        return digest.hexdigest()

    def content_hash(self) -> str:
        """A digest of the full matrix content, keying the result cache.

        Computed once per (immutable) matrix.  Stable within a process;
        for labelled matrices it is *not* stable across processes (the
        label component uses Python's seeded string hashing), which the
        in-process :class:`~repro.batch.cache.BatchCache` never needs.
        """
        return self._content_hash

    def take(self, indices: Union[Sequence[int], np.ndarray]) -> "DesignMatrix":
        """A new matrix holding the selected rows, in the given order."""
        index_array = np.asarray(indices, dtype=np.intp)
        labels = None
        if self.labels is not None:
            labels = tuple(self.labels[i] for i in index_array)
        return DesignMatrix.from_arrays(
            *(column[index_array] for column in self.columns()),
            labels=labels,
            knee_fraction=self.knee_fraction,
        )

    @classmethod
    def concat(cls, matrices: Sequence["DesignMatrix"]) -> "DesignMatrix":
        """Stack matrices row-wise, in order (the shard-merge primitive).

        All parts must agree on the knee rule, and either all carry
        labels or none do — concatenating a labelled shard into an
        unlabelled matrix would silently misattribute rows.  A single
        part is returned as-is (no copy).
        """
        parts = list(matrices)
        if not parts:
            raise ConfigurationError("concat needs at least one matrix")
        if len(parts) == 1:
            return parts[0]
        fractions = {m.knee_fraction for m in parts}
        if len(fractions) > 1:
            raise ConfigurationError(
                f"matrices mix knee fractions {sorted(map(str, fractions))}; "
                "one matrix takes one knee rule"
            )
        labelled = [m.labels is not None for m in parts]
        if any(labelled) and not all(labelled):
            raise ConfigurationError(
                "cannot concat labelled and unlabelled matrices"
            )
        labels: Optional[Tuple[str, ...]] = None
        if all(labelled):
            labels = tuple(
                label for m in parts for label in m.labels  # type: ignore[union-attr]
            )
        columns = (
            np.concatenate([getattr(m, name) for m in parts])
            for name in _COLUMN_NAMES
        )
        return cls.from_arrays(
            *columns, labels=labels, knee_fraction=fractions.pop()
        )
