"""One-pass batch evaluation of a design matrix.

:func:`evaluate_matrix` runs every vectorized F-1 kernel over the
columns of a :class:`~repro.batch.matrix.DesignMatrix` and assembles a
:class:`~repro.batch.result.BatchResult`.  Results are memoized in a
content-addressed :class:`~repro.batch.cache.BatchCache` (pass
``cache=None`` to opt out, or your own instance to scope one).
"""

from __future__ import annotations

from typing import Optional

from ..core.knee import DEFAULT_KNEE_FRACTION
from ..units import require_fraction, require_nonnegative
from . import kernels
from .cache import BatchCache
from .matrix import DesignMatrix
from .result import BatchResult

#: Process-wide cache used when callers do not bring their own.
DEFAULT_CACHE = BatchCache(maxsize=64)


def evaluate_matrix(
    matrix: DesignMatrix,
    knee_fraction: Optional[float] = None,
    tolerance: float = 0.05,
    cache: Optional[BatchCache] = DEFAULT_CACHE,
) -> BatchResult:
    """Evaluate every design point of ``matrix`` in one vectorized pass.

    ``knee_fraction`` is the fraction-of-roof knee rule's ``rho`` (the
    scalar default strategy); when omitted, the fraction recorded on
    the matrix (e.g. by ``DesignMatrix.from_models``) applies, falling
    back to the calibrated default.  ``tolerance`` is the optimality
    band around the knee.  The result is numerically identical to
    building an :class:`~repro.core.model.F1Model` per row.
    """
    if knee_fraction is None:
        knee_fraction = (
            matrix.knee_fraction
            if matrix.knee_fraction is not None
            else DEFAULT_KNEE_FRACTION
        )
    require_fraction("knee_fraction", knee_fraction)
    require_nonnegative("tolerance", tolerance)

    if cache is not None:
        key = (matrix.content_hash(), knee_fraction, tolerance)
        cached = cache.get(key)
        if cached is not None:
            return cached

    d = matrix.sensing_range_m
    a = matrix.a_max
    f_action = kernels.action_throughput(
        matrix.f_sensor_hz, matrix.f_compute_hz, matrix.f_control_hz
    )
    knee_hz = kernels.knee_throughput(d, a, knee_fraction)
    result = BatchResult(
        matrix=matrix,
        roof_velocity=kernels.roof_velocity(d, a),
        knee_hz=knee_hz,
        knee_velocity=kernels.knee_velocity(d, a, knee_fraction),
        action_throughput_hz=f_action,
        safe_velocity=kernels.safe_velocity_at_rate(f_action, d, a),
        bound_codes=kernels.classify_bounds(
            matrix.f_sensor_hz,
            matrix.f_compute_hz,
            matrix.f_control_hz,
            f_action,
            knee_hz,
        ),
        status_codes=kernels.optimality_status(f_action, knee_hz, tolerance),
        knee_fraction=knee_fraction,
        tolerance=tolerance,
    )
    if cache is not None:
        cache.put(key, result)
    return result
