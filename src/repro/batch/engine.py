"""One-pass batch evaluation of a design matrix.

:func:`evaluate_matrix` runs every vectorized F-1 kernel over the
columns of a :class:`~repro.batch.matrix.DesignMatrix` and assembles a
:class:`~repro.batch.result.BatchResult`.  Results are memoized in a
content-addressed :class:`~repro.batch.cache.BatchCache` (pass
``cache=None`` to opt out, or your own instance to scope one).

Passing ``executor=`` or ``chunk_rows=`` routes the evaluation through
the sharded layer (:mod:`repro.batch.executor`): the matrix is split
into row-range chunks and evaluated serially, across threads, or
across worker processes, with a result bitwise identical to the
one-pass path.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Optional

from ..core.knee import DEFAULT_KNEE_FRACTION
from ..units import require_fraction, require_nonnegative
from . import kernels
from .cache import BatchCache, CacheStats
from .matrix import DesignMatrix
from .result import BatchResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.progress import ProgressCallback
    from ..obs.tracer import Tracer
    from .executor import ParallelExecutor

#: Process-wide cache used when callers do not bring their own.
#:
#: This is deliberately module-global *mutable* state, so two rules keep
#: it sound: results are immutable and content-addressed (a hit can
#: never be stale — equal key means equal input), and worker processes
#: must never trust a copy inherited across a fork (a forked child
#: starts with the parent's entries *and* the parent's hit/miss
#: counters).  :func:`clear_default_cache` is the reset hook; the
#: sharded executor installs it as every worker's initializer.
DEFAULT_CACHE = BatchCache(maxsize=64)


def clear_default_cache() -> None:
    """Drop every entry (and the counters) of :data:`DEFAULT_CACHE`.

    Called by worker-process initializers so forked workers start from
    a fresh cache instead of a snapshot of the parent's, and by tests
    that assert on cache statistics.
    """
    DEFAULT_CACHE.clear()


def evaluate_matrix(
    matrix: DesignMatrix,
    knee_fraction: Optional[float] = None,
    tolerance: float = 0.05,
    cache: Optional[BatchCache] = DEFAULT_CACHE,
    executor: Optional["ParallelExecutor"] = None,
    chunk_rows: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    tracer: Optional["Tracer"] = None,
    progress: Optional["ProgressCallback"] = None,
) -> BatchResult:
    """Evaluate every design point of ``matrix`` in one vectorized pass.

    ``knee_fraction`` is the fraction-of-roof knee rule's ``rho`` (the
    scalar default strategy); when omitted, the fraction recorded on
    the matrix (e.g. by ``DesignMatrix.from_models``) applies, falling
    back to the calibrated default.  ``tolerance`` is the optimality
    band around the knee.  The result is numerically identical to
    building an :class:`~repro.core.model.F1Model` per row.

    ``executor`` / ``chunk_rows`` / ``checkpoint_dir`` / ``resume``
    opt into sharded evaluation: the matrix is chunked into row ranges
    of at most ``chunk_rows`` and fanned out over the executor's
    workers (or evaluated serially, chunk by chunk, when only
    ``chunk_rows`` is given), with one JSONL checkpoint record per
    completed shard when ``checkpoint_dir`` is set.  The merged result
    is bitwise identical to the one-pass path, is served from
    ``cache`` when already known, and lands there under the same key.

    ``tracer`` opts into observability (see :mod:`repro.obs`): the
    evaluation records an ``engine.evaluate`` span (with a
    ``cache_hit`` attribute) plus ``cache.hits``/``cache.misses``
    counters attributed via :meth:`~repro.batch.cache.BatchCache.stats_snapshot`
    deltas and a ``rows.evaluated`` counter.  ``progress`` only fires
    on the sharded path (per completed shard).  Both default to
    ``None`` — uninstrumented calls pay a null-check, nothing more.
    """
    if knee_fraction is None:
        knee_fraction = (
            matrix.knee_fraction
            if matrix.knee_fraction is not None
            else DEFAULT_KNEE_FRACTION
        )
    require_fraction("knee_fraction", knee_fraction)
    require_nonnegative("tolerance", tolerance)

    started = perf_counter() if tracer is not None else 0.0
    cache_before = (
        cache.stats_snapshot()
        if cache is not None and tracer is not None
        else None
    )

    if cache is not None:
        key = (matrix.content_hash(), knee_fraction, tolerance)
        cached = cache.get(key)
        if cached is not None:
            if tracer is not None:
                _record_evaluation(
                    tracer, started, cache, cache_before, matrix,
                    cache_hit=True,
                )
            return cached

    if (
        executor is not None or chunk_rows is not None
        or checkpoint_dir is not None or resume
    ):
        from .executor import evaluate_matrix_sharded

        result = evaluate_matrix_sharded(
            matrix,
            knee_fraction=knee_fraction,
            tolerance=tolerance,
            executor=executor,
            chunk_rows=chunk_rows,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            tracer=tracer,
            progress=progress,
        )
    else:
        d = matrix.sensing_range_m
        a = matrix.a_max
        f_action = kernels.action_throughput(
            matrix.f_sensor_hz, matrix.f_compute_hz, matrix.f_control_hz
        )
        knee_hz = kernels.knee_throughput(d, a, knee_fraction)
        result = BatchResult(
            matrix=matrix,
            roof_velocity=kernels.roof_velocity(d, a),
            knee_hz=knee_hz,
            knee_velocity=kernels.knee_velocity(d, a, knee_fraction),
            action_throughput_hz=f_action,
            safe_velocity=kernels.safe_velocity_at_rate(f_action, d, a),
            bound_codes=kernels.classify_bounds(
                matrix.f_sensor_hz,
                matrix.f_compute_hz,
                matrix.f_control_hz,
                f_action,
                knee_hz,
            ),
            status_codes=kernels.optimality_status(
                f_action, knee_hz, tolerance
            ),
            knee_fraction=knee_fraction,
            tolerance=tolerance,
        )
    if cache is not None:
        cache.put(key, result)
    if tracer is not None:
        tracer.counter("rows.evaluated").add(len(matrix))
        _record_evaluation(
            tracer, started, cache, cache_before, matrix, cache_hit=False
        )
    return result


def _record_evaluation(
    tracer: "Tracer",
    started: float,
    cache: Optional[BatchCache],
    cache_before: Optional["CacheStats"],
    matrix: DesignMatrix,
    cache_hit: bool,
) -> None:
    """Close out one traced evaluation: span + windowed cache counters."""
    tracer.record_clock(
        "engine.evaluate",
        started,
        perf_counter(),
        rows=len(matrix),
        cache_hit=cache_hit,
    )
    if cache is not None and cache_before is not None:
        window = cache.stats_snapshot().delta(cache_before)
        if window.hits:
            tracer.counter("cache.hits").add(window.hits)
        if window.misses:
            tracer.counter("cache.misses").add(window.misses)
