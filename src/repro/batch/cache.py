"""Content-addressed cache for batch evaluation results.

Sweeps are frequently re-run with identical inputs (sliders wiggled
back, CI re-executions, Monte-Carlo studies sharing a grid), so
:func:`~repro.batch.engine.evaluate_matrix` keys each result by the
:meth:`~repro.batch.matrix.DesignMatrix.content_hash` of its input plus
the kernel parameters.  The cache is a bounded LRU and thread-safe;
results are immutable so sharing them between callers is sound.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Optional

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .result import BatchResult


#: Default ceiling on the arrays a cache may pin (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int
    misses: int
    entries: int
    maxsize: int
    total_bytes: int = 0
    max_bytes: int = DEFAULT_MAX_BYTES

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def delta(self, since: "CacheStats") -> "CacheStats":
        """The traffic between ``since`` and this snapshot.

        Counter fields subtract (hits/misses accrued in the window);
        state fields (entries, bounds, bytes) keep this snapshot's
        values.  This is how per-study cache attribution works against
        a long-lived cache whose raw counters only ever grow::

            before = cache.stats_snapshot()
            ...run the study...
            window = cache.stats_snapshot().delta(before)
            window.hit_rate   # this study's hit rate, nothing else's
        """
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            entries=self.entries,
            maxsize=self.maxsize,
            total_bytes=self.total_bytes,
            max_bytes=self.max_bytes,
        )


class BatchCache:
    """A bounded, thread-safe LRU of :class:`BatchResult` objects.

    Bounded twice over: by entry count (``maxsize``) and by the bytes
    the cached column arrays pin (``max_bytes``), since one
    fleet-scale result can weigh megabytes.  A result larger than
    ``max_bytes`` on its own is simply not cached.  Results that share
    a :class:`~repro.batch.matrix.DesignMatrix` (the same matrix
    evaluated under several tolerances or knee fractions) count its
    columns once each — a deliberate overestimate that errs toward
    evicting early rather than pinning more memory than budgeted.

    Lifecycle contract (load-bearing for the sharded executor): a
    cache is safe to share between *threads* (every operation takes
    the instance lock) but must never be shared between *processes* —
    a fork copies the entries and the counters, silently pinning the
    parent's memory in every child and making :attr:`stats`
    meaningless.  Anything that inherits a cache across a fork must
    call :meth:`clear` before first use (worker initializers do; see
    :func:`repro.batch.engine.clear_default_cache`).  :meth:`clear`,
    :meth:`reset_stats` and :attr:`stats`/:meth:`stats_snapshot` are
    the public reset/observability API — code attributing hits to one
    run should diff two :meth:`stats_snapshot` calls
    (:meth:`CacheStats.delta`) rather than reason about prior traffic.
    """

    def __init__(
        self, maxsize: int = 64, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        if maxsize < 1:
            raise ConfigurationError(
                f"maxsize must be >= 1, got {maxsize}"
            )
        if max_bytes < 1:
            raise ConfigurationError(
                f"max_bytes must be >= 1, got {max_bytes}"
            )
        self._maxsize = maxsize
        self._max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, BatchResult]" = OrderedDict()
        self._total_bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable) -> Optional["BatchResult"]:
        """The cached result for ``key``, refreshing its recency."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def put(self, key: Hashable, result: "BatchResult") -> None:
        """Store ``result``, evicting LRU entries past either bound.

        A result too large to ever fit under ``max_bytes`` is dropped
        rather than cached (caching it would evict everything else for
        a single entry).
        """
        size = result.nbytes
        if size > self._max_bytes:
            return
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._total_bytes -= previous.nbytes
            self._entries[key] = result
            self._total_bytes += size
            while self._entries and (
                len(self._entries) > self._maxsize
                or self._total_bytes > self._max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._total_bytes -= evicted.nbytes

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0
            self._hits = 0
            self._misses = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters *without* touching the entries.

        For run-scoped attribution on a warm cache when a
        :meth:`stats_snapshot` delta is inconvenient (e.g. tests that
        want absolute counts): the entries — and therefore future
        hits — survive, only the counters restart.
        """
        with self._lock:
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                maxsize=self._maxsize,
                total_bytes=self._total_bytes,
                max_bytes=self._max_bytes,
            )

    def stats_snapshot(self) -> CacheStats:
        """An atomic copy of the counters, for windowed deltas.

        The method spelling of :attr:`stats`, named for its role in
        the snapshot/:meth:`CacheStats.delta` attribution pattern the
        observability layer uses: both ends of the window come from
        one lock acquisition each, so concurrent traffic can never
        tear a snapshot.
        """
        return self.stats
