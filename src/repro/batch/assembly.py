"""Vectorized Knobs->UAV->F1 assembly: columnar Table II accounting.

The :mod:`repro.batch` engine evaluates F-1 design points by the
column, but consumers used to *assemble* each point one at a time —
``Knobs.build_uav().f1(...)`` per value — making the Python-side
mass/thrust/heatsink accounting the dominant cost of every sweep.
This module columnizes the whole assembly chain:

* :class:`KnobMatrix` — a structure-of-arrays set of Table II knobs
  (one NumPy column per knob, scalars broadcasting against swept
  columns) whose :meth:`~KnobMatrix.assemble` runs the payload /
  heatsink / thrust / acceleration accounting vectorized and returns a
  :class:`~repro.batch.matrix.DesignMatrix` numerically identical to
  looping ``Knobs.build_uav().f1(knobs.f_compute_hz)``.
* :func:`assemble_configurations` — the same columnar accounting for
  arbitrary :class:`~repro.uav.configuration.UAVConfiguration` fleets
  (heterogeneous components, payload overrides, redundancy), used by
  the design-space explorer.

Both paths share their arithmetic with the scalar properties through
the plain functions in :mod:`repro.uav.budget`,
:mod:`repro.core.heatsink` and :mod:`repro.core.physics`, so scalar
and columnar results are pinned together by construction (and by the
1e-9 equivalence suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.heatsink import heatsink_mass_g_array
from ..core.knee import DEFAULT_KNEE_FRACTION
from ..core.physics import (
    DEFAULT_BRAKING_PITCH_DEG,
    thrust_margin_acceleration,
)
from ..core.throughput import DEFAULT_CONTROL_RATE_HZ
from ..errors import ConfigurationError, InfeasibleDesignError
from ..uav import budget
from .matrix import DesignMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..skyline.knobs import Knobs
    from ..uav.configuration import UAVConfiguration

ArrayLike = Union[float, Sequence[float], np.ndarray]

#: The sweepable (float) Table II knobs, one KnobMatrix column each.
#: ``rotor_count`` stays a scalar: it is the one integer knob (airframe
#: topology), uniform across a matrix like a knee rule is.
KNOB_COLUMNS = (
    "sensor_framerate_hz",
    "compute_tdp_w",
    "compute_runtime_s",
    "sensor_range_m",
    "drone_weight_g",
    "rotor_pull_g",
    "payload_weight_g",
    "compute_mass_g",
)

#: Knob columns allowed to be zero (everything else must be > 0,
#: mirroring ``Knobs.__post_init__``).
_NONNEGATIVE_COLUMNS = frozenset({"payload_weight_g"})


def _as_column(name: str, values: ArrayLike) -> np.ndarray:
    column = np.atleast_1d(np.ascontiguousarray(values, dtype=np.float64))
    if column.ndim != 1:
        raise ConfigurationError(
            f"{name} must be a scalar or 1-D sequence, got shape "
            f"{column.shape}"
        )
    return column


# eq=False: dataclass-generated __eq__/__hash__ choke on ndarray fields
# (ambiguous truth value / unhashable); identity semantics apply instead.
@dataclass(frozen=True, eq=False)
class KnobMatrix:
    """N Table II knob sets, one NumPy column per knob.

    Columns may be passed as scalars or 1-D sequences; scalars (and
    length-1 columns) broadcast against the longest column.  Validation
    mirrors the scalar :class:`~repro.skyline.knobs.Knobs` contract —
    every knob finite and strictly positive, ``payload_weight_g``
    allowed to be zero — once per matrix instead of once per point.
    """

    sensor_framerate_hz: np.ndarray
    compute_tdp_w: np.ndarray
    compute_runtime_s: np.ndarray
    sensor_range_m: np.ndarray
    drone_weight_g: np.ndarray
    rotor_pull_g: np.ndarray
    payload_weight_g: np.ndarray
    compute_mass_g: np.ndarray
    rotor_count: int = 4
    labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if int(self.rotor_count) != self.rotor_count or self.rotor_count < 3:
            raise ConfigurationError(
                f"rotor_count must be an integer >= 3, got {self.rotor_count}"
            )
        object.__setattr__(self, "rotor_count", int(self.rotor_count))
        columns = {
            name: _as_column(name, getattr(self, name))
            for name in KNOB_COLUMNS
        }
        try:
            broadcast = np.broadcast_arrays(*columns.values())
        except ValueError as exc:
            shapes = {n: c.shape for n, c in columns.items()}
            raise ConfigurationError(
                f"knob column lengths are incompatible: {shapes}"
            ) from exc
        if broadcast[0].size == 0:
            raise ConfigurationError("a knob matrix needs at least one row")
        # Per-column, not per-row: bounded by the 8 Table II knobs.
        # reprolint: disable=RPL004
        for name, column in zip(KNOB_COLUMNS, broadcast):
            # Own a fresh contiguous copy: broadcast views may alias the
            # caller's arrays, which must not be frozen behind their back.
            column = np.array(column, dtype=np.float64, copy=True)
            if not np.all(np.isfinite(column)):
                raise ConfigurationError(f"{name} must be finite")
            if name in _NONNEGATIVE_COLUMNS:
                if np.any(column < 0.0):
                    raise ConfigurationError(
                        f"{name} must be >= 0 everywhere"
                    )
            elif np.any(column <= 0.0):
                raise ConfigurationError(f"{name} must be > 0 everywhere")
            column.flags.writeable = False
            object.__setattr__(self, name, column)
        if self.labels is not None:
            labels = tuple(str(label) for label in self.labels)
            if len(labels) != len(self):
                raise ConfigurationError(
                    f"{len(labels)} labels for {len(self)} rows"
                )
            object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_base(
        cls,
        base: "Knobs",
        labels: Optional[Sequence[str]] = None,
        **overrides: ArrayLike,
    ) -> "KnobMatrix":
        """Broadcast a base knob set against swept columns.

        ``overrides`` maps knob names from :data:`KNOB_COLUMNS` to a
        scalar or a 1-D axis of values; every knob not overridden takes
        its (scalar) value from ``base``.
        """
        unknown = sorted(set(overrides) - set(KNOB_COLUMNS))
        if unknown:
            known = ", ".join(KNOB_COLUMNS)
            raise ConfigurationError(
                f"unknown knob column(s) {', '.join(map(repr, unknown))}; "
                f"sweepable knobs: {known} (rotor_count is the airframe "
                "topology — build a new base Knobs to change it)"
            )
        values = {
            name: overrides.get(name, getattr(base, name))
            for name in KNOB_COLUMNS
        }
        return cls(
            rotor_count=base.rotor_count,
            labels=tuple(labels) if labels is not None else None,
            **values,  # type: ignore[arg-type]
        )

    @classmethod
    def from_knobs(
        cls,
        knobs: Iterable["Knobs"],
        labels: Optional[Sequence[str]] = None,
    ) -> "KnobMatrix":
        """Columnize an iterable of scalar knob sets.

        All knob sets must agree on ``rotor_count`` (one matrix holds
        one airframe topology, like one knee rule).
        """
        rows = list(knobs)
        if not rows:
            raise ConfigurationError("a knob matrix needs at least one row")
        rotor_counts = {k.rotor_count for k in rows}
        if len(rotor_counts) > 1:
            raise ConfigurationError(
                f"knob sets mix rotor counts {sorted(rotor_counts)}; "
                "one matrix takes one airframe topology"
            )
        columns = np.asarray(
            [[getattr(k, name) for name in KNOB_COLUMNS] for k in rows],
            dtype=np.float64,
        ).T
        return cls(
            rotor_count=rotor_counts.pop(),
            labels=tuple(labels) if labels is not None else None,
            **dict(zip(KNOB_COLUMNS, columns)),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.sensor_framerate_hz.size)

    def knobs_at(self, index: int) -> "Knobs":
        """The scalar :class:`Knobs` of one row (for cross-checks)."""
        from ..skyline.knobs import Knobs

        return Knobs(
            rotor_count=self.rotor_count,
            **{
                name: float(getattr(self, name)[index])
                for name in KNOB_COLUMNS
            },
        )

    def label_at(self, index: int) -> str:
        """The row's label, or a positional placeholder."""
        if self.labels is not None:
            return self.labels[index]
        return f"#{index}"

    # ------------------------------------------------------------------
    # The vectorized accounting chain (Knobs.build_uav, by the column)
    # ------------------------------------------------------------------
    @cached_property
    def heatsink_mass_g(self) -> np.ndarray:
        """TDP-derived heatsink mass per design (g), Fig. 12 law."""
        return heatsink_mass_g_array(self.compute_tdp_w)

    @cached_property
    def compute_payload_g(self) -> np.ndarray:
        """Onboard-computer flight mass per design (g).

        Knob-built UAVs carry one compute replica and fold the carrier
        board into the module mass, exactly as ``Knobs.build_uav``
        does.
        """
        return budget.compute_payload_mass_g(
            budget.compute_flight_mass_g(
                self.compute_mass_g, 0.0, self.heatsink_mass_g
            ),
            redundancy=1,
        )

    @cached_property
    def total_mass_g(self) -> np.ndarray:
        """All-up takeoff mass per design (g).

        Battery and sensor masses are folded into the payload knob and
        the flight controller is massless, mirroring the component set
        ``Knobs.build_uav`` assembles.
        """
        return budget.all_up_mass_g(
            self.drone_weight_g,
            0.0,
            budget.component_payload_mass_g(
                0.0, 0.0, self.compute_payload_g, self.payload_weight_g
            ),
        )

    @cached_property
    def total_thrust_g(self) -> np.ndarray:
        """Summed rated rotor pull per design (gram-force)."""
        return budget.rated_thrust_g(self.rotor_pull_g, self.rotor_count)

    @cached_property
    def max_acceleration(self) -> np.ndarray:
        """Eq. 5 maximum commandable acceleration per design (m/s^2)."""
        return thrust_margin_acceleration(
            self.total_thrust_g, self.total_mass_g, DEFAULT_BRAKING_PITCH_DEG
        )

    @cached_property
    def f_compute_hz(self) -> np.ndarray:
        """Compute throughput implied by the runtime knob (Hz)."""
        return 1.0 / self.compute_runtime_s

    def assemble(self) -> DesignMatrix:
        """Run the accounting chain and columnize the F-1 parameters.

        The result is numerically identical to building
        ``Knobs.build_uav().f1(knobs.f_compute_hz)`` per row, with the
        default fraction-of-roof knee rule recorded on the matrix.
        """
        return DesignMatrix.from_arrays(
            sensing_range_m=self.sensor_range_m,
            a_max=self.max_acceleration,
            f_sensor_hz=self.sensor_framerate_hz,
            f_compute_hz=self.f_compute_hz,
            f_control_hz=DEFAULT_CONTROL_RATE_HZ,
            labels=self.labels,
            knee_fraction=DEFAULT_KNEE_FRACTION,
        )


# ---------------------------------------------------------------------------
# Columnar assembly of heterogeneous UAVConfiguration fleets
# ---------------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class FleetAssembly:
    """A fleet's F-1 design matrix plus its mass/thrust accounting.

    The extra columns let consumers (e.g. the DSE explorer) report
    all-up mass and TDP without touching the per-vehicle scalar
    properties again.
    """

    matrix: DesignMatrix
    total_mass_g: np.ndarray
    total_thrust_g: np.ndarray
    compute_tdp_w: np.ndarray

    def __len__(self) -> int:
        return len(self.matrix)


def assemble_configurations(
    uavs: Sequence["UAVConfiguration"],
    f_compute_hz: ArrayLike,
    labels: Optional[Sequence[str]] = None,
) -> FleetAssembly:
    """Columnize whole UAV configurations into one design matrix.

    Gathers each configuration's raw component figures into columns and
    runs the heatsink / payload / mass / thrust / acceleration chain
    vectorized — the same plain functions the scalar properties call —
    honoring ``payload_override_g``, ``compute_redundancy``,
    ``needs_heatsink`` and per-vehicle braking pitch.  Numerically
    identical to reading ``uav.max_acceleration`` per vehicle.
    """
    uavs = list(uavs)
    if not uavs:
        raise ConfigurationError("a fleet needs at least one configuration")

    def column(getter: Callable[["UAVConfiguration"], float]) -> np.ndarray:
        return np.asarray([getter(u) for u in uavs], dtype=np.float64)

    tdp_w = column(lambda u: u.compute.tdp_w)
    needs_heatsink = np.asarray(
        [u.compute.needs_heatsink for u in uavs], dtype=bool
    )
    heatsink = np.where(needs_heatsink, heatsink_mass_g_array(tdp_w), 0.0)
    compute_payload = budget.compute_payload_mass_g(
        budget.compute_flight_mass_g(
            column(lambda u: u.compute.mass_g),
            column(lambda u: u.compute.carrier_mass_g),
            heatsink,
        ),
        redundancy=column(lambda u: u.compute_redundancy),
    )
    extra_payload = column(lambda u: u.extra_payload_g)
    override = column(
        lambda u: np.nan
        if u.payload_override_g is None
        else u.payload_override_g
    )
    payload = np.where(
        np.isnan(override),
        budget.component_payload_mass_g(
            column(lambda u: u.battery.mass_g),
            column(lambda u: u.sensor.mass_g),
            compute_payload,
            extra_payload,
        ),
        override + extra_payload,
    )
    total_mass = budget.all_up_mass_g(
        column(lambda u: u.frame.base_mass_g),
        column(lambda u: u.flight_controller.mass_g),
        payload,
    )
    total_thrust = budget.rated_thrust_g(
        column(lambda u: u.motor.rated_pull_g),
        column(lambda u: u.frame.rotor_count),
    )
    a_max = thrust_margin_acceleration(
        total_thrust,
        total_mass,
        column(lambda u: u.braking_pitch_deg),
    )
    if np.any(a_max <= 0.0):
        index = int(np.argmax(a_max <= 0.0))
        raise InfeasibleDesignError(
            f"total thrust {total_thrust[index]:.0f} g cannot move an "
            f"all-up mass of {total_mass[index]:.0f} g and no braking "
            f"floor is configured (configuration {uavs[index].name!r})"
        )
    matrix = DesignMatrix.from_arrays(
        sensing_range_m=column(lambda u: u.sensor.range_m),
        a_max=a_max,
        f_sensor_hz=column(lambda u: u.sensor.framerate_hz),
        f_compute_hz=f_compute_hz,
        f_control_hz=column(lambda u: u.flight_controller.loop_rate_hz),
        labels=labels,
        knee_fraction=DEFAULT_KNEE_FRACTION,
    )
    return FleetAssembly(
        matrix=matrix,
        total_mass_g=total_mass,
        total_thrust_g=total_thrust,
        compute_tdp_w=tdp_w,
    )
