"""repro.batch — vectorized fleet-scale F-1 evaluation.

Every consumer of the F-1 model used to walk design points one
:class:`~repro.core.model.F1Model` at a time; this subsystem evaluates
them by the column instead.  A :class:`DesignMatrix` holds the physics
and pipeline parameters of N design points as structure-of-arrays NumPy
columns, :func:`evaluate_matrix` runs the closed-form F-1 kernels over
all of them at once (numerically identical to the scalar path), and the
resulting :class:`BatchResult` supports selection, sorting, top-k and
table rendering.  A content-hash :class:`BatchCache` makes repeated
sweeps free, and :func:`scenario_grid` expands Cartesian parameter axes
(wind-derated accelerations, payloads, sensing ranges, DVFS points)
into one matrix.

The assembly layer (:mod:`repro.batch.assembly`) columnizes the
Knobs->UAV accounting chain itself: a :class:`KnobMatrix` holds Table
II knob columns and assembles payload mass, TDP-derived heatsinks,
thrust budgets and accelerations vectorized, so whole-knob sweeps
never touch per-point Python either.

Quickstart::

    import numpy as np
    from repro.batch import evaluate_matrix, scenario_grid

    grid = scenario_grid(
        sensing_range_m=np.linspace(2.0, 20.0, 50),
        a_max=np.linspace(5.0, 50.0, 40),
        f_sensor_hz=(30.0, 60.0),
        f_compute_hz=np.geomspace(1.0, 1000.0, 25),
    )
    result = evaluate_matrix(grid)           # 100 000 points, one pass
    print(result.top_k(10).table())
"""

from . import kernels
from .assembly import FleetAssembly, KnobMatrix, assemble_configurations
from .cache import BatchCache, CacheStats
from .engine import DEFAULT_CACHE, clear_default_cache, evaluate_matrix
from ..errors import ShardExecutionError
from .executor import (
    BACKENDS,
    CheckpointStore,
    ParallelExecutor,
    Shard,
    ShardManifest,
    ShardResult,
    default_chunk_rows,
    evaluate_matrix_sharded,
    evaluate_spec_sharded,
    iter_chunks,
    shard_ranges,
    top_k_sharded,
)
from .grid import (
    cartesian_product,
    cartesian_row_count,
    cartesian_slice,
    scenario_grid,
)
from .kernels import BOUND_KINDS, DESIGN_STATUSES
from .matrix import DesignMatrix
from .result import BatchResult, BatchRow, concat_results, merge_top_k

# The raw kernels stay namespaced (`repro.batch.kernels.*`): several
# share names with the *validated* scalar helpers in repro.core, and
# re-exporting unvalidated twins at package level invites silent misuse.

__all__ = [
    "kernels",
    "FleetAssembly",
    "KnobMatrix",
    "assemble_configurations",
    "BatchCache",
    "CacheStats",
    "DEFAULT_CACHE",
    "clear_default_cache",
    "evaluate_matrix",
    "BACKENDS",
    "CheckpointStore",
    "ParallelExecutor",
    "Shard",
    "ShardExecutionError",
    "ShardManifest",
    "ShardResult",
    "default_chunk_rows",
    "evaluate_matrix_sharded",
    "evaluate_spec_sharded",
    "iter_chunks",
    "shard_ranges",
    "top_k_sharded",
    "cartesian_product",
    "cartesian_row_count",
    "cartesian_slice",
    "scenario_grid",
    "BOUND_KINDS",
    "DESIGN_STATUSES",
    "DesignMatrix",
    "BatchResult",
    "BatchRow",
    "concat_results",
    "merge_top_k",
]
