"""Cartesian scenario grids: parameter axes -> one design matrix.

The paper's DSE use case (Sec. V) wants "what if" sweeps over several
knobs at once — wind-derated accelerations, payload-dependent
accelerations, sensing ranges, DVFS-scaled compute rates.
:func:`scenario_grid` takes each F-1 parameter as a scalar or an axis
of values and expands their Cartesian product into a single
:class:`~repro.batch.matrix.DesignMatrix` ready for
:func:`~repro.batch.engine.evaluate_matrix`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple, Union

import numpy as np

from ..core.throughput import DEFAULT_CONTROL_RATE_HZ
from ..errors import ConfigurationError
from .matrix import DesignMatrix

AxisLike = Union[float, Sequence[float], np.ndarray]

#: Axis order of the expansion (last axis varies fastest).
GRID_AXES = (
    "sensing_range_m",
    "a_max",
    "f_sensor_hz",
    "f_compute_hz",
    "f_control_hz",
)


def _axis(name: str, values: AxisLike) -> np.ndarray:
    axis = np.atleast_1d(np.asarray(values, dtype=np.float64))
    if axis.ndim != 1:
        raise ConfigurationError(
            f"{name} must be a scalar or 1-D axis, got shape {axis.shape}"
        )
    if axis.size == 0:
        raise ConfigurationError(f"{name} axis is empty")
    return axis


def cartesian_product(axes: Mapping[str, AxisLike]) -> Dict[str, np.ndarray]:
    """Expand named axes into flat row-major Cartesian-product columns.

    Each value is a scalar or 1-D axis; the returned columns all have
    ``prod(len(axis))`` entries, in row-major order over the mapping's
    insertion order (the *last* axis varies fastest).  This is the one
    expansion shared by :func:`scenario_grid` (F-1 parameter axes) and
    :func:`repro.skyline.sweep.sweep_grid` (Table II knob axes).
    """
    if not axes:
        raise ConfigurationError("a grid needs at least one axis")
    arrays = [_axis(name, values) for name, values in axes.items()]
    meshes = np.meshgrid(*arrays, indexing="ij")
    return {name: mesh.ravel() for name, mesh in zip(axes, meshes)}


def cartesian_row_count(axes: Mapping[str, AxisLike]) -> int:
    """How many rows :func:`cartesian_product` would expand, without
    expanding them."""
    if not axes:
        raise ConfigurationError("a grid needs at least one axis")
    count = 1
    for name, values in axes.items():
        count *= _axis(name, values).size
    return count


def cartesian_slice(
    axes: Mapping[str, AxisLike], start: int, stop: int
) -> Dict[str, np.ndarray]:
    """Rows ``[start, stop)`` of :func:`cartesian_product`, by index
    arithmetic.

    Bitwise identical to ``{k: v[start:stop] for k, v in
    cartesian_product(axes).items()}`` but needs ``O(stop - start)``
    memory instead of the full ``prod(len(axis))`` expansion: the flat
    row indices are unraveled onto the axes
    (:func:`numpy.unravel_index`) and each axis is fancy-indexed.  This
    is what lets the sharded executor stream a multi-million-point grid
    chunk by chunk.
    """
    if not axes:
        raise ConfigurationError("a grid needs at least one axis")
    arrays = {name: _axis(name, values) for name, values in axes.items()}
    total = 1
    for array in arrays.values():
        total *= array.size
    if not 0 <= start <= stop <= total:
        raise ConfigurationError(
            f"slice [{start}, {stop}) out of range for a {total}-row grid"
        )
    flat = np.arange(start, stop, dtype=np.int64)
    shape = tuple(array.size for array in arrays.values())
    unraveled = np.unravel_index(flat, shape)
    return {
        name: array[indices]
        for (name, array), indices in zip(arrays.items(), unraveled)
    }


def grid_shape(
    sensing_range_m: AxisLike,
    a_max: AxisLike,
    f_sensor_hz: AxisLike,
    f_compute_hz: AxisLike,
    f_control_hz: AxisLike = DEFAULT_CONTROL_RATE_HZ,
) -> Tuple[int, ...]:
    """The (len per axis) shape a :func:`scenario_grid` call would expand."""
    return tuple(
        _axis(name, values).size
        for name, values in zip(
            GRID_AXES,
            (sensing_range_m, a_max, f_sensor_hz, f_compute_hz, f_control_hz),
        )
    )


def scenario_grid(
    sensing_range_m: AxisLike,
    a_max: AxisLike,
    f_sensor_hz: AxisLike,
    f_compute_hz: AxisLike,
    f_control_hz: AxisLike = DEFAULT_CONTROL_RATE_HZ,
) -> DesignMatrix:
    """Expand the Cartesian product of parameter axes into one matrix.

    Each argument is a scalar (a fixed parameter) or a 1-D axis of
    values; the resulting matrix has ``prod(len(axis))`` rows in
    row-major order over :data:`GRID_AXES` (the control-rate axis
    varies fastest).  Validation of the values themselves happens in
    the :class:`DesignMatrix` constructor.
    """
    columns = cartesian_product(
        dict(
            zip(
                GRID_AXES,
                (
                    sensing_range_m,
                    a_max,
                    f_sensor_hz,
                    f_compute_hz,
                    f_control_hz,
                ),
            )
        )
    )
    return DesignMatrix.from_arrays(*columns.values())
