"""Vectorized F-1 kernels: the closed forms of the scalar model, by column.

Each kernel evaluates one quantity the scalar :class:`~repro.core.model.F1Model`
exposes as a property — the physics roof, the fraction-of-roof knee
(Eq. 4 inverted at ``rho`` of the roof), the Eq. 3 action throughput,
the Eq. 4 safe velocity, the Sec. III-B bound classification and the
Sec. III-C optimality verdict — over NumPy arrays of design points.

The expressions are kept term-for-term identical to the scalar path
(:mod:`repro.core.safety`, :mod:`repro.core.knee`,
:mod:`repro.core.bounds`, :mod:`repro.core.optimality`) so that both
produce bitwise-comparable doubles; the equivalence suite pins them
together at 1e-9.  Kernels do no argument validation — that is the
:class:`~repro.batch.matrix.DesignMatrix` constructor's job.
"""

from __future__ import annotations

import numpy as np

from ..core.bounds import BoundKind
from ..core.knee import DEFAULT_KNEE_FRACTION
from ..core.optimality import DesignStatus

#: Integer codes used for the bound-classification column.
PHYSICS_CODE = 0
SENSOR_CODE = 1
COMPUTE_CODE = 2
CONTROL_CODE = 3

#: ``BOUND_KINDS[code]`` decodes a bound column entry.
BOUND_KINDS = (
    BoundKind.PHYSICS,
    BoundKind.SENSOR,
    BoundKind.COMPUTE,
    BoundKind.CONTROL,
)

#: Integer codes used for the optimality-verdict column.
OPTIMAL_CODE = 0
OVER_PROVISIONED_CODE = 1
UNDER_PROVISIONED_CODE = 2

#: ``DESIGN_STATUSES[code]`` decodes a verdict column entry.
DESIGN_STATUSES = (
    DesignStatus.OPTIMAL,
    DesignStatus.OVER_PROVISIONED,
    DesignStatus.UNDER_PROVISIONED,
)


def roof_velocity(
    sensing_range_m: np.ndarray, a_max: np.ndarray
) -> np.ndarray:
    """The physics roof ``sqrt(2 * d * a_max)`` (m/s), per design."""
    return np.sqrt(2.0 * sensing_range_m * a_max)


def knee_throughput(
    sensing_range_m: np.ndarray,
    a_max: np.ndarray,
    fraction: float = DEFAULT_KNEE_FRACTION,
) -> np.ndarray:
    """Fraction-of-roof knee throughput (Hz), per design.

    The closed form matches :class:`~repro.core.knee.FractionOfRoofKnee`::

        f_k = (2*rho / (1 - rho^2)) * sqrt(a_max / (2*d))
    """
    coefficient = 2.0 * fraction / (1.0 - fraction * fraction)
    return coefficient * np.sqrt(a_max / (2.0 * sensing_range_m))


def knee_velocity(
    sensing_range_m: np.ndarray,
    a_max: np.ndarray,
    fraction: float = DEFAULT_KNEE_FRACTION,
) -> np.ndarray:
    """Velocity at the fraction-of-roof knee: ``rho * roof`` (m/s)."""
    return fraction * roof_velocity(sensing_range_m, a_max)


def action_throughput(
    f_sensor_hz: np.ndarray,
    f_compute_hz: np.ndarray,
    f_control_hz: np.ndarray,
) -> np.ndarray:
    """Eq. 3: pipeline throughput = elementwise min of stage rates (Hz)."""
    return np.minimum(np.minimum(f_sensor_hz, f_compute_hz), f_control_hz)


def safe_velocity_at_rate(
    f_action_hz: np.ndarray,
    sensing_range_m: np.ndarray,
    a_max: np.ndarray,
) -> np.ndarray:
    """Eq. 4 safe velocity at an action throughput, per design (m/s)."""
    t = 1.0 / f_action_hz
    return a_max * (np.sqrt(t * t + 2.0 * sensing_range_m / a_max) - t)


def classify_bounds(
    f_sensor_hz: np.ndarray,
    f_compute_hz: np.ndarray,
    f_control_hz: np.ndarray,
    f_action_hz: np.ndarray,
    knee_throughput_hz: np.ndarray,
) -> np.ndarray:
    """Sec. III-B bound classification as an int8 code column.

    At or beyond the knee a design is physics bound; otherwise the
    slowest stage names the bound, with stage-rate ties resolving in
    pipeline order sensor -> compute -> control exactly as the scalar
    :func:`~repro.core.bounds.classify_bound` does.
    """
    sensor_slowest = (f_sensor_hz <= f_compute_hz) & (
        f_sensor_hz <= f_control_hz
    )
    compute_slowest = f_compute_hz <= f_control_hz
    return np.select(
        [f_action_hz >= knee_throughput_hz, sensor_slowest, compute_slowest],
        [PHYSICS_CODE, SENSOR_CODE, COMPUTE_CODE],
        default=CONTROL_CODE,
    ).astype(np.int8)


def optimality_status(
    f_action_hz: np.ndarray,
    knee_throughput_hz: np.ndarray,
    tolerance: float = 0.05,
) -> np.ndarray:
    """Sec. III-C verdict as an int8 code column.

    ``tolerance`` is the relative band around the knee throughput still
    considered optimal, matching :func:`~repro.core.optimality.assess_design`.
    """
    ratio = f_action_hz / knee_throughput_hz
    optimal = (1.0 - tolerance <= ratio) & (ratio <= 1.0 + tolerance)
    return np.select(
        [optimal, ratio > 1.0],
        [OPTIMAL_CODE, OVER_PROVISIONED_CODE],
        default=UNDER_PROVISIONED_CODE,
    ).astype(np.int8)
