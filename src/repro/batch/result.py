"""The columnar result of one batch evaluation.

A :class:`BatchResult` mirrors the derived quantities of the scalar
:class:`~repro.core.model.F1Model` — roof, knee, action throughput,
safe velocity, bound and verdict — as read-only NumPy columns aligned
with the input :class:`~repro.batch.matrix.DesignMatrix`, plus the
selection/sorting/rendering conveniences fleet-scale consumers need.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.bounds import BoundKind
from ..core.optimality import DesignStatus
from ..errors import ConfigurationError
from ..io.tables import format_table
from .kernels import BOUND_KINDS, DESIGN_STATUSES
from .matrix import DesignMatrix

#: Result columns that may be used as sort keys.
SORTABLE_COLUMNS = (
    "safe_velocity",
    "roof_velocity",
    "knee_hz",
    "knee_velocity",
    "action_throughput_hz",
    "provisioning_factor",
)


@dataclass(frozen=True)
class BatchRow:
    """One design point materialized back into Python scalars."""

    index: int
    label: str
    sensing_range_m: float
    a_max: float
    f_sensor_hz: float
    f_compute_hz: float
    f_control_hz: float
    roof_velocity: float
    knee_hz: float
    knee_velocity: float
    action_throughput_hz: float
    safe_velocity: float
    bound: BoundKind
    status: DesignStatus

    @property
    def provisioning_factor(self) -> float:
        """``f_action / f_knee``: > 1 excess throughput, < 1 shortfall."""
        return self.action_throughput_hz / self.knee_hz


# eq=False: dataclass-generated __eq__/__hash__ choke on ndarray fields
# (ambiguous truth value / unhashable); identity semantics apply instead.
@dataclass(frozen=True, eq=False)
class BatchResult:
    """All derived F-1 columns for one evaluated design matrix.

    Results compare by identity (the cache hands back the same object
    for equal inputs).
    """

    matrix: DesignMatrix
    roof_velocity: np.ndarray
    knee_hz: np.ndarray
    knee_velocity: np.ndarray
    action_throughput_hz: np.ndarray
    safe_velocity: np.ndarray
    bound_codes: np.ndarray
    status_codes: np.ndarray
    knee_fraction: float
    tolerance: float

    def __post_init__(self) -> None:
        n = len(self.matrix)
        for name in (
            "roof_velocity",
            "knee_hz",
            "knee_velocity",
            "action_throughput_hz",
            "safe_velocity",
            "bound_codes",
            "status_codes",
        ):
            # Own a fresh copy before freezing: ascontiguousarray can
            # return the caller's array, which must stay writable.
            column = np.array(getattr(self, name), copy=True)
            if column.shape != (n,):
                raise ConfigurationError(
                    f"{name} has shape {column.shape}, expected ({n},)"
                )
            column.flags.writeable = False
            object.__setattr__(self, name, column)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.matrix)

    @cached_property
    def nbytes(self) -> int:
        """Memory pinned by this result's columns (incl. its matrix)."""
        own = sum(
            getattr(self, name).nbytes
            for name in (
                "roof_velocity",
                "knee_hz",
                "knee_velocity",
                "action_throughput_hz",
                "safe_velocity",
                "bound_codes",
                "status_codes",
            )
        )
        return own + self.matrix.nbytes

    @property
    def provisioning_factor(self) -> np.ndarray:
        """``f_action / f_knee`` per design."""
        return self.action_throughput_hz / self.knee_hz

    def bounds(self) -> List[BoundKind]:
        """The bound classification column, decoded."""
        return [BOUND_KINDS[code] for code in self.bound_codes]

    def statuses(self) -> List[DesignStatus]:
        """The optimality verdict column, decoded."""
        return [DESIGN_STATUSES[code] for code in self.status_codes]

    def bound_at(self, index: int) -> BoundKind:
        return BOUND_KINDS[int(self.bound_codes[index])]

    def status_at(self, index: int) -> DesignStatus:
        return DESIGN_STATUSES[int(self.status_codes[index])]

    def bound_counts(self) -> Dict[BoundKind, int]:
        """How many designs fall under each bound (zero counts included)."""
        counts = np.bincount(self.bound_codes, minlength=len(BOUND_KINDS))
        return {kind: int(counts[i]) for i, kind in enumerate(BOUND_KINDS)}

    def row(self, index: int) -> BatchRow:
        """Materialize one design point as Python scalars."""
        m = self.matrix
        return BatchRow(
            index=index,
            label=m.label_at(index),
            sensing_range_m=float(m.sensing_range_m[index]),
            a_max=float(m.a_max[index]),
            f_sensor_hz=float(m.f_sensor_hz[index]),
            f_compute_hz=float(m.f_compute_hz[index]),
            f_control_hz=float(m.f_control_hz[index]),
            roof_velocity=float(self.roof_velocity[index]),
            knee_hz=float(self.knee_hz[index]),
            knee_velocity=float(self.knee_velocity[index]),
            action_throughput_hz=float(self.action_throughput_hz[index]),
            safe_velocity=float(self.safe_velocity[index]),
            bound=self.bound_at(index),
            status=self.status_at(index),
        )

    def rows(self) -> List[BatchRow]:
        """All design points, materialized (prefer columns at scale)."""
        return [self.row(i) for i in range(len(self))]

    # ------------------------------------------------------------------
    # Selection and ordering
    # ------------------------------------------------------------------
    def _column(self, by: str) -> np.ndarray:
        if by not in SORTABLE_COLUMNS:
            known = ", ".join(SORTABLE_COLUMNS)
            raise ConfigurationError(
                f"cannot order by {by!r}; sortable columns: {known}"
            )
        return getattr(self, by)

    def argsort(
        self, by: str = "safe_velocity", descending: bool = True
    ) -> np.ndarray:
        """Stable row ordering by one result column.

        Stable in both directions: tied rows keep their original
        relative order, matching a Python ``sort(..., reverse=True)``.
        """
        column = self._column(by)
        keys = -column if descending else column
        return np.argsort(keys, kind="stable")

    def take(self, indices: Union[Sequence[int], np.ndarray]) -> "BatchResult":
        """A new result holding the selected rows, in the given order."""
        index_array = np.asarray(indices, dtype=np.intp)
        return BatchResult(
            matrix=self.matrix.take(index_array),
            roof_velocity=self.roof_velocity[index_array],
            knee_hz=self.knee_hz[index_array],
            knee_velocity=self.knee_velocity[index_array],
            action_throughput_hz=self.action_throughput_hz[index_array],
            safe_velocity=self.safe_velocity[index_array],
            bound_codes=self.bound_codes[index_array],
            status_codes=self.status_codes[index_array],
            knee_fraction=self.knee_fraction,
            tolerance=self.tolerance,
        )

    def where(self, mask: np.ndarray) -> "BatchResult":
        """The subset of rows where ``mask`` is true."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (len(self),):
            raise ConfigurationError(
                f"mask must be a boolean array of shape ({len(self)},)"
            )
        return self.take(np.flatnonzero(mask))

    def sort_by(
        self, by: str = "safe_velocity", descending: bool = True
    ) -> "BatchResult":
        """A new result sorted by one column."""
        return self.take(self.argsort(by, descending))

    def top_k_indices(
        self, k: int, by: str = "safe_velocity", descending: bool = True
    ) -> np.ndarray:
        """Row indices of the ``k`` best rows by one column, best first.

        Uses an O(n) partition before the O(k log k) sort, so taking a
        handful of winners from a million-point grid stays cheap.  The
        indices are what shard merges need: offset by a shard's global
        start row, they stay meaningful after
        :func:`merge_top_k` combines shards.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        n = len(self)
        k = min(k, n)
        keys = -self._column(by) if descending else self._column(by)
        if k < n:
            # argpartition alone would pick an *arbitrary* subset of the
            # rows tied at the k boundary; resolve membership the way the
            # stable full sort does — strictly-better rows, then boundary
            # ties in original order — so top_k(k) == sort_by()[:k].
            boundary = np.partition(keys, k - 1)[k - 1]
            definite = np.flatnonzero(keys < boundary)
            tied = np.flatnonzero(keys == boundary)
            shortlist = np.concatenate(
                [definite, tied[: k - definite.size]]
            )
        else:
            shortlist = np.arange(n)
        order = np.argsort(keys[shortlist], kind="stable")
        return shortlist[order]

    def top_k(
        self, k: int, by: str = "safe_velocity", descending: bool = True
    ) -> "BatchResult":
        """The ``k`` best rows by one column, best first."""
        return self.take(self.top_k_indices(k, by, descending))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def table(self, limit: Optional[int] = 20) -> str:
        """An aligned text table of (up to ``limit``) rows."""
        shown = len(self) if limit is None else min(limit, len(self))
        rows = []
        for i in range(shown):
            r = self.row(i)
            rows.append(
                (
                    r.label,
                    f"{r.sensing_range_m:g}",
                    f"{r.a_max:.3f}",
                    f"{r.f_compute_hz:.2f}",
                    f"{r.knee_hz:.1f}",
                    f"{r.safe_velocity:.2f}",
                    r.bound.value,
                    r.status.value,
                )
            )
        text = format_table(
            (
                "design", "d (m)", "a_max", "f_c (Hz)", "knee (Hz)",
                "v_safe (m/s)", "bound", "verdict",
            ),
            rows,
        )
        if shown < len(self):
            text += f"\n... {len(self) - shown} more rows"
        return text

    def describe(self) -> str:
        """A one-paragraph fleet summary of the evaluated matrix."""
        if len(self) == 0:
            return "0 designs"
        counts = self.bound_counts()
        by_bound = ", ".join(
            f"{kind.value}: {count}"
            for kind, count in counts.items()
            if count
        )
        return (
            f"{len(self)} designs | v_safe "
            f"[{float(self.safe_velocity.min()):.2f}, "
            f"{float(self.safe_velocity.max()):.2f}] m/s | "
            f"bounds {{{by_bound}}}"
        )


# ---------------------------------------------------------------------------
# Shard merging (the reduce side of repro.batch.executor)
# ---------------------------------------------------------------------------
_RESULT_COLUMN_NAMES = (
    "roof_velocity",
    "knee_hz",
    "knee_velocity",
    "action_throughput_hz",
    "safe_velocity",
    "bound_codes",
    "status_codes",
)


def concat_results(
    results: Sequence[BatchResult],
    matrix: Optional[DesignMatrix] = None,
) -> BatchResult:
    """Stack per-shard results row-wise into one result, in order.

    Because every kernel is elementwise, concatenating the results of
    row-range shards is *bitwise* identical to evaluating the
    concatenated matrix in one pass — the property the sharded
    executor's equivalence suite pins down.  All parts must share one
    ``knee_fraction`` and ``tolerance`` (one evaluation contract per
    merged result).  A single part is returned as-is (no copy).

    When the caller still holds the matrix the shards were cut from,
    passing it as ``matrix`` reuses it instead of reassembling a
    second full-size copy from the chunk matrices (the parts' row
    count must match it).
    """
    parts = list(results)
    if not parts:
        raise ConfigurationError("concat needs at least one result")
    if len(parts) == 1 and matrix is None:
        return parts[0]
    contracts = {(r.knee_fraction, r.tolerance) for r in parts}
    if len(contracts) > 1:
        raise ConfigurationError(
            "results mix evaluation contracts (knee_fraction, tolerance): "
            f"{sorted(contracts)}"
        )
    knee_fraction, tolerance = contracts.pop()
    if matrix is None:
        matrix = DesignMatrix.concat([r.matrix for r in parts])
    else:
        total = sum(len(r) for r in parts)
        if total != len(matrix):
            raise ConfigurationError(
                f"{total} shard rows for a {len(matrix)}-row matrix"
            )
    columns = {
        name: np.concatenate([getattr(r, name) for r in parts])
        for name in _RESULT_COLUMN_NAMES
    }
    return BatchResult(
        matrix=matrix,
        knee_fraction=knee_fraction,
        tolerance=tolerance,
        **columns,
    )


def merge_top_k(
    candidates: Sequence[Tuple[np.ndarray, BatchResult]],
    k: int,
    by: str = "safe_velocity",
    descending: bool = True,
) -> Tuple[np.ndarray, BatchResult]:
    """Merge per-shard top-k candidate sets into the global top-k.

    ``candidates`` pairs each shard's candidate rows with their *global*
    row indices (shard-local ``top_k_indices`` plus the shard's start
    row).  Returns ``(global_indices, result)`` with at most ``k``
    rows, best first.  Provided every shard contributes its own top-k
    (any global winner is necessarily among its shard's local winners,
    since both orders tie-break on original row position), the merge is
    exactly ``full_result.top_k(k)`` with global indices attached —
    ties at the boundary resolve to the lowest global index, matching
    the stable full sort.  The merge is associative, so a streaming
    reduce may fold shards in as they complete, keeping ``O(k)`` state.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    parts = list(candidates)
    if not parts:
        raise ConfigurationError("merge needs at least one candidate set")
    indices = np.concatenate(
        [np.asarray(idx, dtype=np.intp) for idx, _ in parts]
    )
    merged = concat_results([result for _, result in parts])
    if indices.shape != (len(merged),):
        raise ConfigurationError(
            f"{indices.size} global indices for {len(merged)} candidate rows"
        )
    keys = merged._column(by)
    if descending:
        keys = -keys
    # Primary key: the ranked column; secondary: global row index, so
    # boundary ties resolve exactly as the stable full-grid sort does.
    order = np.lexsort((indices, keys))[: min(k, len(merged))]
    return indices[order], merged.take(order)
