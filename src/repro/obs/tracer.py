"""Span tracing and lightweight metrics for the batch/study stack.

A :class:`Tracer` records **spans** — named, timed regions with
attributes — plus :class:`Counter`/:class:`Gauge` metrics.  All clocks
are :func:`time.perf_counter` (monotonic; wall clocks drift and jump),
expressed relative to the tracer's construction epoch so recorded
timelines are portable across processes and serializable.

The layer is strictly opt-in: every instrumented call site takes
``tracer=None`` and guards with a single ``is not None`` check, so an
uninstrumented run pays one null-check per phase and nothing else.
:func:`maybe_span` packages that idiom for ``with``-statement sites.

Spans nest naturally through the context-manager API; rendering (the
Chrome trace exporter in :mod:`repro.obs.export`) recovers nesting
from time containment per ``tid`` track, so no parent pointers are
stored.  Worker processes run their own tracer and ship their finished
spans back as wire dicts (see
:func:`repro.io.serialization.trace_event_to_dict`); :meth:`Tracer.absorb`
rebases those onto the parent's timeline.  In-process workers (serial
and thread backends) skip the wire round-trip entirely: they record
straight into the parent tracer through a :meth:`Tracer.track` view,
which pins their spans to the shard's timeline track.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "SpanRecord",
    "Tracer",
    "maybe_span",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named, timed region of the run.

    ``start_s`` is seconds since the recording tracer's epoch (a
    :func:`~time.perf_counter` origin, not a wall-clock date);
    ``tid`` is the logical track the span lives on (0 = the driver,
    ``shard_index + 1`` = that shard's worker timeline).
    """

    name: str
    start_s: float
    duration_s: float
    tid: int = 0
    attributes: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class Counter:
    """A monotonically increasing metric (events, rows, cache hits)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time metric (rows/sec, queue depth, bytes pinned)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class _Span:
    """An open span; finishes (records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "tid", "attributes", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, tid: int, attributes: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.tid = tid
        self.attributes = attributes
        self._start = 0.0

    def set(self, **attributes: Any) -> "_Span":
        """Attach attributes discovered mid-span (e.g. result counts)."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end = perf_counter()
        tracer = self._tracer
        # The span owns its attribute dict (``span()`` copied the
        # kwargs), so it is handed over without another copy — span
        # exits sit on instrumented hot paths.
        tracer._append(
            SpanRecord(
                name=self.name,
                start_s=max(0.0, self._start - tracer._epoch),
                duration_s=max(0.0, end - self._start),
                tid=self.tid,
                attributes=self.attributes,
            )
        )


class _NullSpan:
    """The shared do-nothing span :func:`maybe_span` hands out."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _TrackView:
    """A recording view of a :class:`Tracer` pinned to one ``tid`` track.

    Handed to in-process shard workers (serial/thread backends) by the
    executor: the worker shares the parent's process and therefore its
    ``perf_counter`` epoch, so spans can land directly in the parent
    tracer — exact times, no wire round-trip, no rebasing — just on
    the shard's own timeline track.  Exposes the recording surface the
    instrumented call sites use (``span``/``record_clock``/``counter``/
    ``gauge``); explicit ``tid`` arguments are overridden by the view's.
    """

    __slots__ = ("_tracer", "tid")

    def __init__(self, tracer: "Tracer", tid: int) -> None:
        self._tracer = tracer
        self.tid = tid

    def span(self, name: str, tid: int = 0, **attributes: Any) -> _Span:
        return _Span(self._tracer, name, self.tid, attributes)

    def record_clock(
        self,
        name: str,
        start_clock: float,
        end_clock: float,
        tid: int = 0,
        **attributes: Any,
    ) -> SpanRecord:
        return self._tracer.record_clock(
            name, start_clock, end_clock, tid=self.tid, **attributes
        )

    def counter(self, name: str) -> Counter:
        return self._tracer.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self._tracer.gauge(name)


def maybe_span(
    tracer: Optional["Tracer"], name: str, **attributes: Any
) -> "_Span | _NullSpan":
    """``tracer.span(...)`` when tracing, a shared no-op otherwise.

    The hot-path idiom: ``with maybe_span(tracer, "phase"): ...`` costs
    exactly one ``is None`` check (plus a no-op context manager) when
    tracing is off.
    """
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


class Tracer:
    """Collects spans and metrics for one run.  Thread-safe.

    Spans are appended under a lock (worker threads of a
    :class:`~repro.batch.executor.ParallelExecutor` may finish spans
    concurrently); counters and gauges carry their own locks.  A tracer
    is *not* shared across processes — workers build their own and the
    parent merges the serialized spans back via :meth:`absorb`.
    """

    def __init__(self) -> None:
        self._epoch = perf_counter()
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    # -- clocks ---------------------------------------------------------
    @property
    def epoch(self) -> float:
        """The :func:`~time.perf_counter` origin of this tracer's times."""
        return self._epoch

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return perf_counter() - self._epoch

    # -- spans ----------------------------------------------------------
    def span(self, name: str, tid: int = 0, **attributes: Any) -> _Span:
        """An open span as a context manager; records on exit."""
        # ``attributes`` is a fresh dict per call (keyword unpacking),
        # so the span takes ownership without copying.
        return _Span(self, name, tid, attributes)

    def track(self, tid: int) -> _TrackView:
        """A recording view that pins every span to the ``tid`` track.

        The in-process worker idiom: a serial or thread shard records
        through ``tracer.track(shard_index + 1)`` so its spans land on
        the shard's timeline directly (same process, same epoch) with
        no serialize/absorb round-trip.
        """
        return _TrackView(self, tid)

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    def record_clock(
        self,
        name: str,
        start_clock: float,
        end_clock: float,
        tid: int = 0,
        **attributes: Any,
    ) -> SpanRecord:
        """Record a finished span from raw ``perf_counter`` readings."""
        record = SpanRecord(
            name=name,
            start_s=max(0.0, start_clock - self._epoch),
            duration_s=max(0.0, end_clock - start_clock),
            tid=tid,
            attributes=attributes,
        )
        self._append(record)
        return record

    def absorb(
        self,
        events: List[Dict[str, Any]],
        tid: int,
        end_clock: Optional[float] = None,
        **attributes: Any,
    ) -> None:
        """Merge another tracer's serialized spans onto this timeline.

        ``events`` are wire dicts
        (:func:`repro.io.serialization.trace_event_to_dict`) from a
        tracer with an unrelated epoch — ``perf_counter`` origins are
        per-process — so they are rebased: shifted so the latest event
        ends at ``end_clock`` (default: now), which anchors a shard's
        worker spans at the moment its result reached the parent while
        preserving their relative structure.  ``attributes`` (e.g. the
        shard index) are stamped onto every absorbed span.
        """
        if not events:
            return
        try:
            # Events come from our own ``to_events`` on the worker
            # side, so they are unpacked directly; full wire validation
            # here would tax every traced shard result.
            parsed = [
                (
                    event["name"],
                    event["start_us"] * 1e-6,
                    event["dur_us"] * 1e-6,
                    {**event["args"], **attributes},
                )
                for event in events
            ]
        except (TypeError, KeyError):
            # Structurally malformed input: re-run the validating
            # parser so the error names the offending field.
            from ..io.serialization import trace_event_from_dict

            for event in events:
                trace_event_from_dict(event)
            raise
        anchor = (
            self.now()
            if end_clock is None
            else max(0.0, end_clock - self._epoch)
        )
        shift = anchor - max(start + dur for _, start, dur, _ in parsed)
        rebased = [
            SpanRecord(
                name=name,
                start_s=max(0.0, start + shift),
                duration_s=dur,
                tid=tid,
                attributes=attrs,
            )
            for name, start, dur, attrs in parsed
        ]
        with self._lock:
            self._spans.extend(rebased)

    @property
    def spans(self) -> Tuple[SpanRecord, ...]:
        """Every finished span, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def span_names(self) -> Tuple[str, ...]:
        """The distinct span names recorded so far (sorted)."""
        return tuple(sorted({span.name for span in self.spans}))

    # -- metrics --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            return gauge

    def merge_counters(self, counters: Mapping[str, int]) -> None:
        """Fold a worker's counter snapshot into this tracer's."""
        for name, value in counters.items():
            self.counter(name).add(int(value))

    def counters_snapshot(self) -> Dict[str, int]:
        with self._lock:
            counters = list(self._counters.values())
        return {c.name: c.value for c in counters}

    def gauges_snapshot(self) -> Dict[str, float]:
        with self._lock:
            gauges = list(self._gauges.values())
        return {g.name: g.value for g in gauges}

    # -- serialization --------------------------------------------------
    def to_events(self) -> List[Dict[str, Any]]:
        """Every span in the versioned trace-event wire format."""
        from ..io.serialization import trace_event_to_dict

        return [trace_event_to_dict(span) for span in self.spans]

    def to_telemetry(self) -> Dict[str, Any]:
        """The run's full telemetry as one JSON-compatible document.

        The format :attr:`repro.study.result.StudyResult.telemetry`
        round-trips (see :data:`repro.io.serialization.TELEMETRY_VERSION`).
        """
        from ..io.serialization import TELEMETRY_VERSION

        return {
            "version": TELEMETRY_VERSION,
            "events": self.to_events(),
            "counters": self.counters_snapshot(),
            "gauges": self.gauges_snapshot(),
        }
