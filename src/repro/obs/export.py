"""Exporters: JSONL event logs, Chrome traces, metrics summaries.

Three views of one :class:`~repro.obs.tracer.Tracer`:

* :func:`write_trace_jsonl` / :func:`read_trace_jsonl` — the versioned
  JSONL event log (one trace event per line behind a header line; see
  :func:`repro.io.serialization.trace_event_to_dict` for the event
  wire format).  The machine-first format: greppable, appendable,
  streamable.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON consumed by ``chrome://tracing`` / Perfetto.  Every
  span becomes a complete ("ph": "X") event; worker spans sit on their
  shard's ``tid`` track so a sharded study renders as one lane per
  shard under the driver lane.
* :func:`metrics_report` — the human summary: per-span-name timing
  aggregates plus every counter and gauge, rendered with
  :func:`repro.io.tables.format_table`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from ..errors import ConfigurationError
from ..io.tables import format_table
from .tracer import SpanRecord, Tracer

__all__ = [
    "chrome_trace",
    "metrics_report",
    "read_trace_jsonl",
    "write_chrome_trace",
    "write_trace_jsonl",
]


# ---------------------------------------------------------------------------
# JSONL event log
# ---------------------------------------------------------------------------
def write_trace_jsonl(path: Union[str, Path], tracer: Tracer) -> None:
    """Write the tracer's spans and metrics as a JSONL event log.

    Line 1 is a header ``{"version", "kind": "trace", "counters",
    "gauges"}``; every following line is one trace event
    (:func:`repro.io.serialization.trace_event_to_dict`).
    """
    from ..io.serialization import TRACE_EVENT_VERSION

    header = {
        "version": TRACE_EVENT_VERSION,
        "kind": "trace",
        "counters": tracer.counters_snapshot(),
        "gauges": tracer.gauges_snapshot(),
    }
    lines = [json.dumps(header)]
    lines.extend(json.dumps(event) for event in tracer.to_events())
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_trace_jsonl(
    path: Union[str, Path],
) -> Tuple[List[SpanRecord], Dict[str, Any]]:
    """Read a :func:`write_trace_jsonl` log back.

    Returns ``(spans, metrics)`` where ``metrics`` is the header's
    ``{"counters", "gauges"}`` mapping.  Version mismatches and
    malformed lines are :class:`~repro.errors.ConfigurationError`\\ s.
    """
    from ..io.serialization import TRACE_EVENT_VERSION, trace_event_from_dict

    text = Path(path).read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ConfigurationError(f"trace log {path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"trace log {path} has an unreadable header: {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("kind") != "trace":
        raise ConfigurationError(
            f"trace log {path} does not start with a trace header line"
        )
    version = header.get("version")
    if version != TRACE_EVENT_VERSION:
        raise ConfigurationError(
            f"trace log {path} is version {version!r}; this build reads "
            f"version {TRACE_EVENT_VERSION}"
        )
    spans = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            spans.append(trace_event_from_dict(json.loads(line)))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace log {path} line {number} is not valid JSON: {exc}"
            ) from exc
    metrics = {
        "counters": header.get("counters", {}),
        "gauges": header.get("gauges", {}),
    }
    return spans, metrics


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------
def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's spans as a Chrome trace-event document.

    The JSON-object flavour of the trace-event format: spans become
    complete events (``"ph": "X"``, microsecond ``ts``/``dur``), the
    counters/gauges ride along under ``otherData``, and ``tid`` tracks
    are labelled via ``thread_name`` metadata so shard lanes read as
    ``shard 3`` rather than bare ints.  Load the written file in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events: List[Dict[str, Any]] = []
    tids = sorted({span.tid for span in tracer.spans})
    for tid in tids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {
                    "name": "driver" if tid == 0 else f"shard {tid - 1}"
                },
            }
        )
    for span in tracer.spans:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(span.start_s * 1e6),
                "dur": round(span.duration_s * 1e6),
                "pid": 0,
                "tid": span.tid,
                "args": dict(span.attributes),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": tracer.counters_snapshot(),
            "gauges": tracer.gauges_snapshot(),
        },
    }


def write_chrome_trace(path: Union[str, Path], tracer: Tracer) -> None:
    """Write :func:`chrome_trace` output to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(chrome_trace(tracer), indent=2) + "\n", encoding="utf-8"
    )


# ---------------------------------------------------------------------------
# Human summary
# ---------------------------------------------------------------------------
def metrics_report(tracer: Tracer) -> str:
    """An aligned text summary of the tracer's spans and metrics.

    One row per span *name* (count, total/mean/max milliseconds), then
    one per counter and gauge — the ``--metrics`` pane of the CLI.
    """
    by_name: Dict[str, List[SpanRecord]] = {}
    for span in tracer.spans:
        by_name.setdefault(span.name, []).append(span)
    span_rows = []
    for name in sorted(by_name):
        durations = [span.duration_s for span in by_name[name]]
        span_rows.append(
            (
                name,
                len(durations),
                sum(durations) * 1e3,
                sum(durations) / len(durations) * 1e3,
                max(durations) * 1e3,
            )
        )
    sections = []
    if span_rows:
        sections.append(
            format_table(
                ("span", "count", "total_ms", "mean_ms", "max_ms"),
                span_rows,
            )
        )
    counters = tracer.counters_snapshot()
    gauges = tracer.gauges_snapshot()
    metric_rows = [
        (name, "counter", float(value)) for name, value in sorted(counters.items())
    ] + [
        (name, "gauge", value) for name, value in sorted(gauges.items())
    ]
    if metric_rows:
        sections.append(
            format_table(("metric", "kind", "value"), metric_rows)
        )
    if not sections:
        return "(no spans or metrics recorded)"
    return "\n\n".join(sections)
