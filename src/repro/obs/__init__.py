"""repro.obs — opt-in tracing, metrics, and progress instrumentation.

The paper's whole argument is about *measuring* where pipelines
bottleneck; this package applies the same discipline to the repo's own
evaluation machinery.  A :class:`Tracer` records nestable,
attribute-carrying spans on monotonic :func:`~time.perf_counter`
clocks plus :class:`Counter`/:class:`Gauge` metrics; the batch engine,
the sharded executor, and the study runner all take an optional
``tracer=`` (and the executor layer a ``progress=`` callback) and pay
only a null-check when neither is given.

Exporters turn one traced run into a JSONL event log
(:func:`write_trace_jsonl`), a ``chrome://tracing`` /-Perfetto-ready
trace (:func:`write_chrome_trace`), or a human metrics table
(:func:`metrics_report`); the wire formats are version-pinned in
:mod:`repro.io.serialization`.

Quickstart::

    from repro.obs import Tracer, metrics_report, write_chrome_trace
    from repro.study import run_study

    tracer = Tracer()
    result = run_study(spec, chunk_rows=4096, tracer=tracer)
    write_chrome_trace("study-trace.json", tracer)   # open in Perfetto
    print(metrics_report(tracer))
    result.telemetry  # the same spans/metrics, inside the result JSON
"""

from .export import (
    chrome_trace,
    metrics_report,
    read_trace_jsonl,
    write_chrome_trace,
    write_trace_jsonl,
)
from .progress import Progress, ProgressCallback, ProgressPrinter
from .tracer import Counter, Gauge, SpanRecord, Tracer, maybe_span

__all__ = [
    "Counter",
    "Gauge",
    "Progress",
    "ProgressCallback",
    "ProgressPrinter",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "maybe_span",
    "metrics_report",
    "read_trace_jsonl",
    "write_chrome_trace",
    "write_trace_jsonl",
]
