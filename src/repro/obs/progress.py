"""Progress reporting for sharded studies.

:class:`Progress` is the immutable snapshot a
:class:`~repro.batch.executor.ParallelExecutor` (and everything built
on it) hands to a :data:`ProgressCallback` each time a shard
completes: shards done/total, rows done/total, elapsed seconds, and
the derived rows/sec throughput and ETA.  :class:`ProgressPrinter` is
the stock callback behind the CLI's ``--progress`` flag — one human
line per update on stderr, never stdout, so piped JSON stays pure.

Anything can hook the callback: :mod:`repro.serve` wires it to
per-study progress endpoints by storing the latest snapshot instead of
printing it.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TextIO

__all__ = [
    "Progress",
    "ProgressCallback",
    "ProgressPrinter",
]


@dataclass(frozen=True)
class Progress:
    """One point-in-time snapshot of a sharded run's completion."""

    done: int
    total: int
    rows_done: int
    rows_total: int
    elapsed_s: float

    @property
    def fraction(self) -> float:
        """Rows completed as a fraction of the grid (0 when empty)."""
        return self.rows_done / self.rows_total if self.rows_total else 0.0

    @property
    def rows_per_s(self) -> float:
        """Mean evaluated-rows throughput since the run started."""
        return self.rows_done / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion; ``None`` before any signal."""
        rate = self.rows_per_s
        if rate <= 0:
            return None
        return (self.rows_total - self.rows_done) / rate

    def describe(self) -> str:
        """One human line: shards, rows, throughput, ETA."""
        eta = self.eta_s
        eta_text = "--" if eta is None else f"{eta:.1f}s"
        return (
            f"shards {self.done}/{self.total} | "
            f"rows {self.rows_done}/{self.rows_total} "
            f"({self.fraction:.1%}) | "
            f"{self.rows_per_s:,.0f} rows/s | eta {eta_text}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible snapshot (what a progress endpoint serves)."""
        return {
            "done": self.done,
            "total": self.total,
            "rows_done": self.rows_done,
            "rows_total": self.rows_total,
            "elapsed_s": self.elapsed_s,
            "rows_per_s": self.rows_per_s,
            "eta_s": self.eta_s,
        }


#: The hook signature every executor-level entry point accepts.
ProgressCallback = Callable[[Progress], None]


class ProgressPrinter:
    """Print :class:`Progress` snapshots as lines on a text stream.

    Defaults to ``sys.stderr`` (resolved at call time so pytest's
    capture sees it) and throttles to at most one line per
    ``min_interval_s`` — except the final snapshot, which always
    prints so runs end on an accurate line.

    Thread-safe: parallel executors (and the serving layer) may fire
    the callback from several worker threads at once, so the throttle
    check, the monotonicity check, and the write are one atomic
    operation under a lock, and each update lands on the stream as a
    *single* ``write`` call — lines can never interleave mid-text.
    Out-of-order snapshots (fewer rows done than already printed) are
    dropped so the printed sequence is monotone.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.0,
        label: str = "study",
    ) -> None:
        self._stream = stream
        self.min_interval_s = min_interval_s
        self.label = label
        self._lock = threading.Lock()
        self._last_at: Optional[float] = None
        self._max_rows_done = -1

    def __call__(self, progress: Progress) -> None:
        final = progress.done >= progress.total
        line = f"{self.label}: {progress.describe()}\n"
        with self._lock:
            if not final:
                if (
                    self._last_at is not None
                    and progress.elapsed_s - self._last_at
                    < self.min_interval_s
                ):
                    return
                if progress.rows_done < self._max_rows_done:
                    return  # stale snapshot delivered late
            self._last_at = progress.elapsed_s
            self._max_rows_done = max(
                self._max_rows_done, progress.rows_done
            )
            stream = (
                self._stream if self._stream is not None else sys.stderr
            )
            stream.write(line)
