#!/usr/bin/env python3
"""Mission-level consequences of compute choice (the Sec. I motivation).

Plans a package-delivery route over a street grid, then flies it with
two Spark configurations (Intel NCS vs Nvidia AGX).  The heavier
computer's lower safe velocity shows up directly as mission time and
energy — the paper's "high safe velocity lowers mission time and
overall mission energy" made quantitative.

Run:  python examples/mission_planning.py
"""

from repro.autonomy import get_algorithm
from repro.compute import get_platform
from repro.io import format_table
from repro.missions import Mission, WaypointGraph, fly_mission, hover_endurance_min
from repro.uav import dji_spark


def main() -> None:
    # A 6x6 street grid, 80 m blocks; deliver across the diagonal.
    grid = WaypointGraph.grid(columns=6, rows=6, spacing_m=80.0)
    route = grid.shortest_route("wp-0-0", "wp-5-5")
    mission = Mission.from_route(
        grid, route, name="package-delivery", dwell_s=5.0
    )
    print(
        f"route: {len(route)} waypoints, {mission.length_m:.0f} m total\n"
    )

    dronet = get_algorithm("dronet")
    rows = []
    for platform_name in ("intel-ncs", "jetson-agx-30w", "jetson-agx-15w"):
        platform = get_platform(platform_name)
        uav = dji_spark(platform)
        model = uav.f1(dronet.throughput_on(platform))
        outcome = fly_mission(
            uav, mission, safe_velocity=model.safe_velocity,
            enforce_battery=False,
        )
        endurance = hover_endurance_min(uav)
        rows.append(
            (
                platform_name,
                f"{model.safe_velocity:.2f}",
                f"{outcome.time_s:.0f}",
                f"{outcome.energy_wh:.1f}",
                f"{endurance.endurance_min:.1f}",
            )
        )
    print(
        format_table(
            (
                "compute", "v_safe (m/s)", "mission time (s)",
                "energy (Wh)", "hover endurance (min)",
            ),
            rows,
        )
    )

    # Dispatch decision under uncertainty: Monte-Carlo the mission with
    # gusts, battery variance and compute-failure risk folded in.
    from repro.missions import MonteCarloConfig, mission_success_probability

    uav = dji_spark(get_platform("intel-ncs"))
    model = uav.f1(dronet.throughput_on(uav.compute))
    outcome = mission_success_probability(
        uav,
        mission,
        safe_velocity=model.safe_velocity,
        config=MonteCarloConfig(samples=300, gust_sigma_ms=1.0, seed=7),
    )
    print(
        f"\nMonte-Carlo dispatch check (NCS build, gusty day): "
        f"P(complete) = {outcome.p_complete:.2f}  "
        f"[energy shortfall {outcome.p_energy_shortfall:.2f}, "
        f"velocity infeasible {outcome.p_velocity_infeasible:.2f}]"
    )
    print(
        "\nTakeaway: the compute choice propagates through safe velocity "
        "into mission\ntime and energy — exactly why onboard computers "
        "must be characterized at the\nsystem level, not in isolation."
    )


if __name__ == "__main__":
    main()
