#!/usr/bin/env python3
"""Case study C (Sec. VI-C): modular redundancy, three ways.

1. The F-1 view: dual TX2 adds 380 g of compute payload and lowers the
   Pelican's roofline by ~33 %.
2. The reliability view: DMR/TMR vs simplex — probability of an unsafe
   outcome over a 30-minute mission.
3. The behavioral view: fault-injection through a majority voter,
   counting detected / masked / silent faults.

Run:  python examples/redundancy_analysis.py
"""

from repro.autonomy import get_algorithm
from repro.compute import get_platform
from repro.io import format_table
from repro.redundancy import (
    MajorityVoter,  # noqa: F401  (re-exported for interactive use)
    RedundancyScheme,
    ReliabilityModel,
    apply_redundancy,
    mission_reliability,
)
from repro.redundancy.reliability import safety_probability
from repro.redundancy.voter import fault_injection_campaign
from repro.uav import asctec_pelican


def main() -> None:
    tx2 = get_platform("jetson-tx2")
    f_dronet = get_algorithm("dronet").throughput_on(tx2)
    base = asctec_pelican(tx2, sensor_range_m=4.5)

    # --- 1. Performance cost -------------------------------------------
    rows = []
    for scheme in RedundancyScheme:
        design = apply_redundancy(base, scheme)
        model = design.uav.f1(f_dronet)
        rows.append(
            (
                scheme.name,
                f"{design.uav.compute_payload_g:.0f}",
                f"{model.roof_velocity:.2f}",
                f"{model.knee.throughput_hz:.1f}",
            )
        )
    print("F-1 cost of redundancy (Pelican + TX2 + DroNet):\n")
    print(
        format_table(
            ("scheme", "compute payload (g)", "roof (m/s)", "knee (Hz)"),
            rows,
        )
    )

    # --- 2. Reliability benefit ----------------------------------------
    model = ReliabilityModel(failure_rate_per_hour=1e-4)
    mission_h = 0.5
    print("\nReliability over a 30-minute mission (lambda = 1e-4/h):\n")
    rows = [
        (
            scheme.name,
            f"{mission_reliability(scheme, model, mission_h):.6f}",
            f"{1.0 - safety_probability(scheme, model, mission_h):.2e}",
        )
        for scheme in RedundancyScheme
    ]
    print(
        format_table(
            ("scheme", "P(mission completes)", "P(unsafe outcome)"), rows
        )
    )

    # --- 3. Voter behaviour under fault injection -----------------------
    print("\nFault injection (p_fault = 1% per decision, 10k decisions):\n")
    rows = []
    for scheme in RedundancyScheme:
        tally = fault_injection_campaign(
            replicas=scheme.replicas, fault_probability=0.01, seed=42
        )
        rows.append(
            (
                scheme.name,
                tally[list(tally)[0]],  # unanimous
                *(tally[k] for k in list(tally)[1:]),
            )
        )
    headers = ("scheme", "unanimous", "masked", "detected", "silent")
    print(format_table(headers, rows))
    print(
        "\nTakeaway: redundancy buys safety, but every replica's module "
        "+ heatsink\nweight comes straight out of the roofline — "
        "size the replacement computer\nat the knee, not at the maximum."
    )


if __name__ == "__main__":
    main()
