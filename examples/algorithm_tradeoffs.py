#!/usr/bin/env python3
"""Case study B + Sec. VII: autonomy algorithms and accelerator pitfalls.

Part 1 — AscTec Pelican + TX2, swapping algorithms: the SPA
package-delivery pipeline (1.1 Hz) is compute-bound at 2.3 m/s while
E2E networks overshoot the 43 Hz knee.

Part 2 — why a fast SLAM accelerator does not fix SPA: replacing the
SLAM stage with Navion (172 FPS) still leaves a 1.24 Hz pipeline,
because the unaccelerated mapping/planning stages dominate (Amdahl).

Run:  python examples/algorithm_tradeoffs.py
"""

from repro.autonomy import (
    get_algorithm,
    mavbench_package_delivery,
)
from repro.autonomy.spa import mavbench_with_navion
from repro.compute import get_platform
from repro.io import format_table
from repro.uav import asctec_pelican


def part1_algorithm_comparison() -> None:
    tx2 = get_platform("jetson-tx2")
    uav = asctec_pelican(tx2, sensor_range_m=3.0)
    rows = []
    for name in ("spa-package-delivery", "trailnet", "dronet"):
        algorithm = get_algorithm(name)
        f_compute = algorithm.throughput_on(tx2)
        model = uav.f1(f_compute)
        verdict = model.optimality()
        rows.append(
            (
                name,
                f"{f_compute:.1f}",
                f"{model.safe_velocity:.2f}",
                model.bound.value,
                verdict.status.value,
                f"{verdict.required_speedup:.1f}x"
                if verdict.required_speedup > 1
                else f"{model.compute_overprovision_factor:.1f}x over",
            )
        )
    print("Pelican + TX2, three autonomy algorithms:\n")
    print(
        format_table(
            (
                "algorithm", "f_c (Hz)", "v_safe (m/s)", "bound",
                "verdict", "gap",
            ),
            rows,
        )
    )


def part2_amdahl_on_spa() -> None:
    tx2 = get_platform("jetson-tx2")
    base = mavbench_package_delivery()
    accelerated = mavbench_with_navion()
    print("\nSPA stage breakdown on TX2 (ms):\n")
    rows = []
    for stage_name in ("slam", "octomap", "planning", "control"):
        before = base.stage(stage_name).latency_on(tx2) * 1000
        after = accelerated.stage(stage_name).latency_on(tx2) * 1000
        rows.append((stage_name, f"{before:.1f}", f"{after:.1f}"))
    rows.append(
        (
            "TOTAL",
            f"{base.latency_on(tx2) * 1000:.1f}",
            f"{accelerated.latency_on(tx2) * 1000:.1f}",
        )
    )
    print(format_table(("stage", "baseline", "with Navion"), rows))
    print(
        f"\nNavion accelerates SLAM 172x, yet the pipeline only goes "
        f"{base.throughput_on(tx2):.2f} -> "
        f"{accelerated.throughput_on(tx2):.2f} Hz: the other stages "
        "dominate.\nBuild accelerators for mapping and planning next "
        "(the paper's Sec. VII takeaway)."
    )


if __name__ == "__main__":
    part1_algorithm_comparison()
    part2_amdahl_on_spa()
