#!/usr/bin/env python3
"""Quickstart: analyze one UAV design point with the F-1 model.

Builds a DJI Spark carrying an Intel Neural Compute Stick running
DroNet, prints the Skyline analysis (knee, bound, optimization tips),
renders the roofline to SVG and to the terminal.

Run:  python examples/quickstart.py
"""

from repro import Skyline

def main() -> None:
    # 1. Start a Skyline session from a preset UAV + onboard computer.
    session = Skyline.from_preset("dji-spark", compute_name="intel-ncs")

    # 2. Characterize an autonomy algorithm on that computer.
    report = session.evaluate_algorithm("dronet")

    # 3. The analysis pane: configuration, results, optimization tips.
    print(report.text())

    # 4. Key quantities are also available programmatically.
    model = report.model
    print()
    print(f"physics roof      : {model.roof_velocity:.2f} m/s")
    print(f"knee point        : {model.knee.throughput_hz:.1f} Hz")
    print(f"safe velocity     : {model.safe_velocity:.2f} m/s")
    print(f"bound             : {model.bound.value}")

    # 5. Visualize: terminal chart + standalone SVG.
    print()
    print(session.ascii())
    path = session.figure().save("quickstart_roofline.svg")
    print(f"\nSVG written to {path}")


if __name__ == "__main__":
    main()
