#!/usr/bin/env python3
"""Gust robustness: how wind erodes the safe-velocity margin.

The F-1 model assumes still air.  This study re-runs the UAV-A
obstacle-stop campaign under increasingly energetic gust fields
(Ornstein-Uhlenbeck along-track wind) and a steady tailwind, showing
how much commanded-velocity margin an operator must hold back — a
robustness dimension the paper leaves to the flight controller.

Run:  python examples/wind_robustness.py   (takes ~20 s)
"""

from repro.errors import SimulationError
from repro.io import format_table
from repro.sim.obstacle_stop import ObstacleStopConfig
from repro.sim.trials import find_observed_safe_velocity
from repro.uav import custom_s500


def main() -> None:
    uav = custom_s500("A")
    predicted = uav.f1(10.0).velocity_at(10.0)
    print(f"UAV-A predicted safe velocity (still air): {predicted:.2f} m/s\n")

    conditions = (
        ("calm", dict()),
        ("light gusts (sigma 1 m/s)", dict(gust_sigma_ms=1.0)),
        ("strong gusts (sigma 2 m/s)", dict(gust_sigma_ms=2.0)),
        ("steady 2 m/s tailwind", dict(mean_wind_ms=2.0)),
    )
    rows = []
    for label, wind_kwargs in conditions:
        config = ObstacleStopConfig(
            cruise_velocity=predicted, f_action_hz=10.0, **wind_kwargs
        )
        try:
            search = find_observed_safe_velocity(
                uav,
                f_action_hz=10.0,
                predicted_velocity=predicted,
                trials=3,
                seed=11,
                base_config=config,
            )
        except SimulationError:
            # A 2-sigma tailwind gust (~4 m/s) can overwhelm UAV-A's
            # 0.68 m/s^2 brake entirely: no grid velocity is safe under
            # the paper's any-infraction criterion.
            rows.append((label, "< 0.60x prediction", ">40%"))
            continue
        observed = search.observed_safe_velocity
        rows.append(
            (
                label,
                f"{observed:.2f}",
                f"{(predicted - observed) / predicted * 100:.0f}%",
            )
        )
    print(
        format_table(
            ("condition", "observed safe v (m/s)", "margin vs model"), rows
        )
    )
    print(
        "\nTakeaway: the analytic model's optimism grows with disturbance "
        "energy;\ngust-rated operation needs the commanded velocity backed "
        "off accordingly."
    )


if __name__ == "__main__":
    main()
