#!/usr/bin/env python3
"""Case study A (Sec. VI-A): choosing an onboard computer.

Compares Intel NCS against Nvidia AGX Xavier on a DJI Spark running
DroNet.  The AGX has 1.5x the compute throughput but its module +
heatsink mass crushes the Spark's acceleration: the *slower* computer
yields the faster UAV.  Also quantifies the paper's TDP-reduction
scenario (AGX re-binned at 15 W -> +75 % safe velocity).

Run:  python examples/compute_selection.py
"""

from repro import Skyline
from repro.autonomy import get_algorithm
from repro.compute import get_platform
from repro.io import format_table
from repro.uav import dji_spark


def main() -> None:
    dronet = get_algorithm("dronet")
    rows = []
    for name in ("intel-ncs", "jetson-agx-30w", "jetson-agx-15w"):
        platform = get_platform(name)
        uav = dji_spark(platform)
        f_compute = dronet.throughput_on(platform)
        model = uav.f1(f_compute)
        rows.append(
            (
                name,
                f"{f_compute:.0f}",
                f"{platform.flight_mass_g:.0f}",
                f"{uav.max_acceleration:.2f}",
                f"{model.roof_velocity:.2f}",
                model.bound.value,
                f"{model.compute_overprovision_factor:.1f}x",
            )
        )
    print("DJI Spark running DroNet, three compute choices:\n")
    print(
        format_table(
            (
                "platform", "f_c (Hz)", "payload (g)", "a_max (m/s^2)",
                "roof (m/s)", "bound", "over-prov",
            ),
            rows,
        )
    )

    print(
        "\nTakeaway: high compute throughput does not translate into a "
        "fast UAV —\nthe NCS (150 Hz, 47 g) beats the AGX (230 Hz, 442 g) "
        "on safe velocity.\n"
    )

    # The Skyline analysis pane spells out the optimization path.
    session = Skyline.from_preset("dji-spark", compute_name="jetson-agx-30w")
    report = session.evaluate_algorithm("dronet")
    for tip in report.analysis.tips:
        print(f"tip: {tip}")


if __name__ == "__main__":
    main()
