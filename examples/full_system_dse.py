#!/usr/bin/env python3
"""Case study D (Sec. VI-D) as automated design-space exploration.

Sweeps (UAV x compute x algorithm), prints the weight-aware F-1
characterization of every design point, extracts the Pareto frontier
(velocity vs TDP) and answers a constrained selection question — the
paper's concluding "automated DSE" vision.

Run:  python examples/full_system_dse.py
"""

from repro.dse import DesignSpace, SelectionCriteria, explore, pareto_front, select_best
from repro.dse.explorer import results_table


def main() -> None:
    space = DesignSpace(
        uav_names=("dji-spark", "asctec-pelican", "nano-uav"),
        compute_names=("intel-ncs", "jetson-tx2", "raspi4", "pulp-gap8"),
        algorithm_names=("dronet", "trailnet", "cad2rl", "vgg16"),
    )
    print(f"exploring {len(space)} design points...\n")
    results = explore(space)
    print(results_table(results[:20]))
    print(f"... ({len(results)} total)\n")

    front = pareto_front(results)
    print("Pareto frontier (maximize velocity, minimize TDP):")
    for result in front:
        print(
            f"  {result.label:<44s} v={result.safe_velocity:5.2f} m/s  "
            f"TDP={result.compute_tdp_w:6.2f} W"
        )

    criteria = SelectionCriteria(
        max_total_mass_g=600.0, max_compute_tdp_w=10.0
    )
    best = select_best(results, criteria)
    print(
        f"\nBest design under (mass <= 600 g, TDP <= 10 W): {best.label} "
        f"at {best.safe_velocity:.2f} m/s ({best.bound.value}-bound)"
    )


if __name__ == "__main__":
    main()
